// Differential equivalence harness for the netlist optimizer.
//
// The proof checker (proof.h) validates the optimizer statically; this
// harness validates it dynamically: the original and optimized modules are
// driven with the same stimulus on BOTH simulator engines (interpreted
// reference and compiled phase-scheduled), and the runs must agree on
//
//   * every output stream, bit-exact, across all four runs;
//   * base tick counts;
//   * per-node activity for every mapped node: update counts equal, and
//     toggle counts equal for width-preserved nodes / no greater for
//     width-shrunk nodes (shrinking can only drop masked high bits).
//
// An unsound rewrite that slips past the static checker (or a checker bug)
// surfaces here as a concrete counterexample; tests feed the harness the
// nine stimulus classes plus fuzz seeds used by the engine cross-check.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/analyze/opt/opt.h"
#include "src/rtl/ir.h"

namespace dsadc::analyze::opt {

struct EquivResult {
  bool ok = true;
  /// Human-readable mismatch descriptions (capped; first mismatches win).
  std::vector<std::string> errors;
};

/// Run `original` and `opt.module` on both engines with `inputs` (keyed by
/// ORIGINAL input node ids; the harness remaps through opt.node_map) and
/// check the full output + activity contract.
EquivResult check_optimized_equivalence(
    const rtl::Module& original, const OptResult& opt,
    const std::map<rtl::NodeId, std::span<const std::int64_t>>& inputs);

}  // namespace dsadc::analyze::opt
