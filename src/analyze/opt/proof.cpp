#include "src/analyze/opt/proof.h"

#include <cstddef>
#include <sstream>
#include <utility>

#include "src/analyze/dataflow/domains.h"
#include "src/analyze/dataflow/engine.h"
#include "src/analyze/dataflow/index.h"

namespace dsadc::analyze::opt {
namespace {

using rtl::kInvalidNode;
using rtl::NodeId;
using rtl::OpKind;

/// Redirect rewrites splice the node out and rewire its users to `target`;
/// the node itself disappears from the optimized module.
bool is_redirect(RewriteKind k) {
  return k == RewriteKind::kMuxConstSel || k == RewriteKind::kIdentityFwd;
}

bool removes_node(RewriteKind k) {
  return k == RewriteKind::kDeadNode || is_redirect(k);
}

bool is_port(OpKind k) { return k == OpKind::kInput || k == OpKind::kOutput; }

/// Kinds whose declared width may shrink to the proven interval width.
/// kShl/kShr are excluded (their value ignores the declared width entirely,
/// so a "shrink" would be vacuous), kConst stays canonical, ports other
/// than kOutput preserve the interface, kRequant's width is its semantics.
bool shrinkable(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kNeg:
    case OpKind::kMux:
    case OpKind::kReg:
    case OpKind::kDecimate:
    case OpKind::kOutput:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* rewrite_kind_name(RewriteKind k) {
  switch (k) {
    case RewriteKind::kDeadNode: return "dead_node";
    case RewriteKind::kConstFold: return "const_fold";
    case RewriteKind::kNegAddToSub: return "neg_add_to_sub";
    case RewriteKind::kMuxConstSel: return "mux_const_sel";
    case RewriteKind::kIdentityFwd: return "identity_fwd";
    case RewriteKind::kWidthShrink: return "width_shrink";
  }
  return "unknown";
}

ProofCheck check_proofs(const rtl::Module& original,
                        const std::vector<RewriteProof>& proofs,
                        const std::map<rtl::NodeId, Interval>& input_ranges) {
  ProofCheck res;
  const std::size_t n = original.size();
  const auto fail = [&res](std::string msg) {
    res.ok = false;
    res.errors.push_back(std::move(msg));
  };
  const auto in_range = [n](NodeId id) {
    return id >= 0 && static_cast<std::size_t>(id) < n;
  };
  const auto describe = [&](const RewriteProof& p) {
    std::ostringstream os;
    os << rewrite_kind_name(p.kind) << "(node " << p.node << ")";
    return os.str();
  };

  // One rewrite per node; duplicates would make the bundle ambiguous.
  std::vector<const RewriteProof*> by_node(n, nullptr);
  for (const RewriteProof& p : proofs) {
    if (!in_range(p.node)) {
      fail(describe(p) + ": node id out of range");
      continue;
    }
    auto& slot = by_node[static_cast<std::size_t>(p.node)];
    if (slot != nullptr) {
      fail(describe(p) + ": second rewrite for the same node");
      continue;
    }
    slot = &p;
  }
  if (!res.ok) return res;  // ids unusable below

  // Re-derive every fact from the ORIGINAL module; nothing the optimizer
  // recorded beyond the claims themselves is trusted.
  const NetlistIndex idx(original);
  ConstDomain cdom;
  cdom.input_ranges = &input_ranges;
  const std::vector<ConstValue> consts = solve(original, idx, cdom).value;
  const IntervalResult ivs = analyze_intervals(original, input_ranges, idx);

  // Follow redirect chains to the surviving definition a user ends up
  // reading. Bounded by n steps: a longer chain must revisit a node.
  const auto resolve = [&](NodeId id) {
    std::size_t guard = 0;
    while (in_range(id)) {
      const RewriteProof* p = by_node[static_cast<std::size_t>(id)];
      if (p == nullptr || !is_redirect(p->kind)) return id;
      id = p->target;
      if (++guard > n) return kInvalidNode;  // redirect cycle
    }
    return kInvalidNode;
  };

  // --- Per-record side conditions -----------------------------------------
  for (const RewriteProof& p : proofs) {
    const rtl::Node& node = original.node(p.node);
    const auto iv_at = [&](NodeId id) {
      return ivs.value[static_cast<std::size_t>(id)];
    };
    const auto const_at = [&](NodeId id) {
      return consts[static_cast<std::size_t>(id)];
    };
    const auto is_const_zero = [&](NodeId id) {
      return in_range(id) && const_at(id).is_const() && const_at(id).v == 0;
    };
    switch (p.kind) {
      case RewriteKind::kDeadNode:
        // Validity (unreachable from outputs) is the global reachability
        // check below; here only interface preservation.
        if (is_port(node.kind)) {
          fail(describe(p) + ": ports cannot be removed");
        }
        break;
      case RewriteKind::kConstFold:
        if (is_port(node.kind) || node.kind == OpKind::kConst) {
          fail(describe(p) + ": only derived nodes fold to constants");
          break;
        }
        if (!const_at(p.node).is_const()) {
          fail(describe(p) + ": const domain does not prove a constant");
        } else if (const_at(p.node).v != p.value) {
          fail(describe(p) + ": claimed value differs from proven constant");
        }
        break;
      case RewriteKind::kNegAddToSub: {
        // add(x, neg(y)) == sub(x, y) mod 2^w requires the neg's wrap to be
        // a no-op modulo the add width: neg.width >= add.width.
        if (node.kind != OpKind::kAdd) {
          fail(describe(p) + ": node is not an adder");
          break;
        }
        if (p.target != node.a && p.target != node.b) {
          fail(describe(p) + ": target is not an operand of the adder");
          break;
        }
        const rtl::Node& neg = original.node(p.target);
        if (neg.kind != OpKind::kNeg) {
          fail(describe(p) + ": target operand is not a negation");
        } else if (neg.width < node.width) {
          fail(describe(p) + ": negation narrower than the adder (wrap "
                             "is observable)");
        }
        break;
      }
      case RewriteKind::kMuxConstSel: {
        if (node.kind != OpKind::kMux) {
          fail(describe(p) + ": node is not a mux");
          break;
        }
        const ConstValue sel = const_at(node.c);
        if (!sel.is_const()) {
          fail(describe(p) + ": select is not a proven constant");
          break;
        }
        if (sel.v != p.value) {
          fail(describe(p) + ": claimed select value differs from proof");
          break;
        }
        const NodeId arm = sel.v != 0 ? node.a : node.b;
        if (p.target != arm) {
          fail(describe(p) + ": target is not the selected arm");
          break;
        }
        if (original.node(arm).width > node.width) {
          fail(describe(p) + ": arm wider than the mux (wrap is observable)");
        }
        break;
      }
      case RewriteKind::kIdentityFwd: {
        const auto forward_ok = [&](NodeId target) {
          return p.target == target &&
                 original.node(target).width <= node.width;
        };
        bool ok = false;
        switch (node.kind) {
          case OpKind::kShl:
          case OpKind::kShr:
            ok = node.amount == 0 && forward_ok(node.a);
            break;
          case OpKind::kAdd:
            ok = (forward_ok(node.a) && is_const_zero(node.b)) ||
                 (forward_ok(node.b) && is_const_zero(node.a));
            break;
          case OpKind::kSub:
            ok = forward_ok(node.a) && is_const_zero(node.b);
            break;
          case OpKind::kMux:
            ok = node.a == node.b && forward_ok(node.a);
            break;
          case OpKind::kRequant:
            // No shift, and the destination format holds every source
            // value: requantize is the identity regardless of rounding and
            // overflow mode.
            ok = node.src_frac == node.fmt.frac &&
                 node.fmt.width >= original.node(node.a).width &&
                 forward_ok(node.a);
            break;
          default:
            break;
        }
        if (!ok) fail(describe(p) + ": identity side condition fails");
        break;
      }
      case RewriteKind::kWidthShrink: {
        if (!shrinkable(node.kind)) {
          fail(describe(p) + ": node kind does not admit width shrinking");
          break;
        }
        if (p.old_width != node.width) {
          fail(describe(p) + ": recorded old width differs from the node");
          break;
        }
        if (p.new_width < 1 || p.new_width >= p.old_width) {
          fail(describe(p) + ": new width not a strict in-range shrink");
          break;
        }
        const Interval derived = iv_at(p.node);
        if (derived.lo < p.interval.lo || derived.hi > p.interval.hi) {
          fail(describe(p) + ": claimed interval does not cover the "
                             "derived interval");
          break;
        }
        if (bits_needed(p.interval.lo, p.interval.hi) > p.new_width) {
          fail(describe(p) + ": proven interval does not fit the new width");
        }
        break;
      }
    }
  }

  // --- Global closure ------------------------------------------------------
  // Effective operand edges: what each KEPT node reads after every redirect
  // and fold in the bundle is applied.
  std::vector<char> removed(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    removed[i] = by_node[i] != nullptr && removes_node(by_node[i]->kind) ? 1 : 0;
  }
  const auto effective_operands = [&](NodeId id) {
    std::array<NodeId, 3> ops{kInvalidNode, kInvalidNode, kInvalidNode};
    const RewriteProof* p = by_node[static_cast<std::size_t>(id)];
    const rtl::Node& node = original.node(id);
    if (p != nullptr && p->kind == RewriteKind::kConstFold) return ops;
    if (p != nullptr && p->kind == RewriteKind::kNegAddToSub) {
      const NodeId other = p->target == node.a ? node.b : node.a;
      ops[0] = resolve(other);
      ops[1] = resolve(original.node(p->target).a);
      return ops;
    }
    int k = 0;
    for (const NodeId op : rtl::operands(node)) {
      if (op != kInvalidNode) ops[static_cast<std::size_t>(k++)] = resolve(op);
    }
    return ops;
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (removed[i] != 0) continue;
    const auto id = static_cast<NodeId>(i);
    for (const NodeId op : effective_operands(id)) {
      if (op == kInvalidNode) continue;
      if (!in_range(op)) {
        fail("closure: kept node " + std::to_string(i) +
             " resolves an operand out of range");
      } else if (removed[static_cast<std::size_t>(op)] != 0) {
        fail("closure: kept node " + std::to_string(i) + " reads removed node " +
             std::to_string(op));
      }
    }
  }

  // Direct re-derivation of every dead-node claim: nothing reachable from
  // an output over effective edges may be removed. (Closure above already
  // implies this; the traversal gives an independent check and a pointed
  // error message for injected-bug bundles.)
  std::vector<char> reached(n, 0);
  std::vector<NodeId> stack;
  for (const NodeId out : idx.of_kind(OpKind::kOutput)) {
    reached[static_cast<std::size_t>(out)] = 1;
    stack.push_back(out);
  }
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    if (removed[static_cast<std::size_t>(cur)] != 0) continue;  // reported below
    for (const NodeId op : effective_operands(cur)) {
      if (op == kInvalidNode || !in_range(op)) continue;
      if (reached[static_cast<std::size_t>(op)] == 0) {
        reached[static_cast<std::size_t>(op)] = 1;
        stack.push_back(op);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (removed[i] != 0 && reached[i] != 0) {
      fail("reachability: removed node " + std::to_string(i) +
           " still feeds an output");
    }
  }
  return res;
}

std::string proofs_to_json(const std::vector<RewriteProof>& proofs) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < proofs.size(); ++i) {
    const RewriteProof& p = proofs[i];
    if (i != 0) os << ",";
    os << "\n  {\"kind\": \"" << rewrite_kind_name(p.kind) << "\""
       << ", \"node\": " << p.node << ", \"target\": " << p.target
       << ", \"value\": " << p.value << ", \"old_width\": " << p.old_width
       << ", \"new_width\": " << p.new_width << ", \"interval\": ["
       << p.interval.lo << ", " << p.interval.hi << "], \"domain\": \""
       << p.domain << "\"}";
  }
  os << "\n]\n";
  return os.str();
}

}  // namespace dsadc::analyze::opt
