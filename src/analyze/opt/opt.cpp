#include "src/analyze/opt/opt.h"

#include <array>
#include <cstddef>
#include <utility>

#include "src/analyze/dataflow/domains.h"
#include "src/analyze/dataflow/engine.h"
#include "src/analyze/dataflow/index.h"

namespace dsadc::analyze::opt {
namespace {

using rtl::kInvalidNode;
using rtl::NodeId;
using rtl::OpKind;

bool is_port(OpKind k) { return k == OpKind::kInput || k == OpKind::kOutput; }

bool is_redirect(RewriteKind k) {
  return k == RewriteKind::kMuxConstSel || k == RewriteKind::kIdentityFwd;
}

bool removes_node(RewriteKind k) {
  return k == RewriteKind::kDeadNode || is_redirect(k);
}

bool shrinkable(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kNeg:
    case OpKind::kMux:
    case OpKind::kReg:
    case OpKind::kDecimate:
    case OpKind::kOutput:
      return true;
    default:
      return false;
  }
}

}  // namespace

OptResult optimize(const rtl::Module& m, const OptOptions& options) {
  const std::size_t n = m.size();
  const NetlistIndex idx(m);

  ConstDomain cdom;
  cdom.input_ranges = &options.input_ranges;
  const std::vector<ConstValue> consts = solve(m, idx, cdom).value;
  const IntervalResult ivs = analyze_intervals(m, options.input_ranges, idx);

  // Rewrite decision per node: at most one proof, mirroring the checker's
  // one-rewrite-per-node rule. Decisions only ever *read* original-module
  // facts, so pass order below is a priority order, not a dependency.
  std::vector<RewriteProof> chosen(n);
  std::vector<char> has_proof(n, 0);
  const auto propose = [&](RewriteProof p) {
    const auto i = static_cast<std::size_t>(p.node);
    if (has_proof[i] != 0) return;
    has_proof[i] = 1;
    chosen[i] = std::move(p);
  };
  const auto proof_of = [&](NodeId id) -> const RewriteProof* {
    const auto i = static_cast<std::size_t>(id);
    return has_proof[i] != 0 ? &chosen[i] : nullptr;
  };
  const auto is_const_zero = [&](NodeId id) {
    const ConstValue c = consts[static_cast<std::size_t>(id)];
    return c.is_const() && c.v == 0;
  };

  // Pass 1: constant folding.
  if (options.fold_constants) {
    for (std::size_t i = 0; i < n; ++i) {
      const rtl::Node& node = m.node(static_cast<NodeId>(i));
      if (is_port(node.kind) || node.kind == OpKind::kConst) continue;
      const ConstValue c = consts[i];
      if (!c.is_const()) continue;
      RewriteProof p;
      p.kind = RewriteKind::kConstFold;
      p.node = static_cast<NodeId>(i);
      p.value = c.v;
      p.domain = "const";
      propose(std::move(p));
    }
  }

  // Pass 2: simplification redirects + strength reduction.
  if (options.simplify) {
    for (std::size_t i = 0; i < n; ++i) {
      if (has_proof[i] != 0) continue;
      const auto id = static_cast<NodeId>(i);
      const rtl::Node& node = m.node(id);
      RewriteProof p;
      p.node = id;
      switch (node.kind) {
        case OpKind::kAdd:
          if (is_const_zero(node.b) && m.node(node.a).width <= node.width) {
            p.kind = RewriteKind::kIdentityFwd;
            p.target = node.a;
            p.domain = "const";
          } else if (is_const_zero(node.a) &&
                     m.node(node.b).width <= node.width) {
            p.kind = RewriteKind::kIdentityFwd;
            p.target = node.b;
            p.domain = "const";
          } else if (m.node(node.b).kind == OpKind::kNeg &&
                     m.node(node.b).width >= node.width) {
            p.kind = RewriteKind::kNegAddToSub;
            p.target = node.b;
            p.domain = "structural";
          } else if (m.node(node.a).kind == OpKind::kNeg &&
                     m.node(node.a).width >= node.width) {
            p.kind = RewriteKind::kNegAddToSub;
            p.target = node.a;
            p.domain = "structural";
          } else {
            continue;
          }
          break;
        case OpKind::kSub:
          if (is_const_zero(node.b) && m.node(node.a).width <= node.width) {
            p.kind = RewriteKind::kIdentityFwd;
            p.target = node.a;
            p.domain = "const";
          } else {
            continue;
          }
          break;
        case OpKind::kShl:
        case OpKind::kShr:
          if (node.amount == 0 && m.node(node.a).width <= node.width) {
            p.kind = RewriteKind::kIdentityFwd;
            p.target = node.a;
            p.domain = "structural";
          } else {
            continue;
          }
          break;
        case OpKind::kMux: {
          const ConstValue sel = consts[static_cast<std::size_t>(node.c)];
          if (sel.is_const()) {
            const NodeId arm = sel.v != 0 ? node.a : node.b;
            if (m.node(arm).width > node.width) continue;
            p.kind = RewriteKind::kMuxConstSel;
            p.target = arm;
            p.value = sel.v;
            p.domain = "const";
          } else if (node.a == node.b && m.node(node.a).width <= node.width) {
            p.kind = RewriteKind::kIdentityFwd;
            p.target = node.a;
            p.domain = "structural";
          } else {
            continue;
          }
          break;
        }
        case OpKind::kRequant:
          if (node.src_frac == node.fmt.frac &&
              node.fmt.width >= m.node(node.a).width) {
            p.kind = RewriteKind::kIdentityFwd;
            p.target = node.a;
            p.domain = "structural";
          } else {
            continue;
          }
          break;
        default:
          continue;
      }
      propose(std::move(p));
    }
  }

  // Redirect chains end at a node without a redirect proof; chains cannot
  // cycle because every redirect target is an operand, hence created
  // earlier than its user.
  const auto resolve = [&](NodeId id) {
    while (true) {
      const RewriteProof* p = proof_of(id);
      if (p == nullptr || !is_redirect(p->kind)) return id;
      id = p->target;
    }
  };

  // Pass 3: dead-node elimination over the effective (post-rewrite) edges.
  // A redirected node's users read its target instead, so a node kept
  // alive only by redirected readers becomes collectable here.
  const auto effective_operands = [&](NodeId id) {
    std::array<NodeId, 3> ops{kInvalidNode, kInvalidNode, kInvalidNode};
    const RewriteProof* p = proof_of(id);
    const rtl::Node& node = m.node(id);
    if (p != nullptr && p->kind == RewriteKind::kConstFold) return ops;
    if (p != nullptr && p->kind == RewriteKind::kNegAddToSub) {
      ops[0] = resolve(p->target == node.a ? node.b : node.a);
      ops[1] = resolve(m.node(p->target).a);
      return ops;
    }
    int k = 0;
    for (const NodeId op : rtl::operands(node)) {
      if (op != kInvalidNode) ops[static_cast<std::size_t>(k++)] = resolve(op);
    }
    return ops;
  };
  std::vector<char> live(n, 0);
  {
    std::vector<NodeId> stack;
    for (const NodeId out : idx.of_kind(OpKind::kOutput)) {
      live[static_cast<std::size_t>(out)] = 1;
      stack.push_back(out);
    }
    while (!stack.empty()) {
      const NodeId cur = stack.back();
      stack.pop_back();
      for (const NodeId op : effective_operands(cur)) {
        if (op == kInvalidNode) continue;
        if (live[static_cast<std::size_t>(op)] == 0) {
          live[static_cast<std::size_t>(op)] = 1;
          stack.push_back(op);
        }
      }
    }
  }
  if (options.eliminate_dead) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<NodeId>(i);
      if (live[i] != 0 || is_port(m.node(id).kind)) continue;
      const RewriteProof* p = proof_of(id);
      if (p != nullptr && is_redirect(p->kind)) continue;  // removed already
      RewriteProof dead;
      dead.kind = RewriteKind::kDeadNode;
      dead.node = id;
      dead.domain = "liveness";
      // Dead-node removal supersedes an in-place rewrite of the same node.
      has_proof[i] = 1;
      chosen[i] = std::move(dead);
    }
  }

  // Pass 4: width shrinking on surviving, otherwise-untouched nodes.
  if (options.shrink_widths) {
    for (std::size_t i = 0; i < n; ++i) {
      if (has_proof[i] != 0) continue;
      const auto id = static_cast<NodeId>(i);
      const rtl::Node& node = m.node(id);
      if (!shrinkable(node.kind)) continue;
      const Interval iv = ivs.value[i];
      const int needed = bits_needed(iv.lo, iv.hi);
      if (needed >= node.width) continue;
      RewriteProof p;
      p.kind = RewriteKind::kWidthShrink;
      p.node = id;
      p.old_width = node.width;
      p.new_width = needed;
      p.interval = iv;
      p.domain = "interval";
      propose(std::move(p));
    }
  }

  // Rebuild. Creation order is preserved, so every combinational operand
  // stays behind its users and only state back-edges map to forward ids.
  OptResult res(m.name(), options.arena);
  res.stats.nodes_before = n;
  res.node_map.assign(n, kInvalidNode);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const RewriteProof* p = proof_of(static_cast<NodeId>(i));
    if (p != nullptr && removes_node(p->kind)) continue;
    res.node_map[i] = static_cast<NodeId>(kept++);
  }
  const auto mapped = [&](NodeId id) {
    return id == kInvalidNode
               ? kInvalidNode
               : res.node_map[static_cast<std::size_t>(resolve(id))];
  };
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<NodeId>(i);
    if (res.node_map[i] == kInvalidNode) continue;
    const rtl::Node& node = m.node(id);
    const RewriteProof* p = proof_of(id);
    rtl::Node out = node;
    if (p != nullptr && p->kind == RewriteKind::kConstFold) {
      out = rtl::Node{};
      out.kind = OpKind::kConst;
      out.value = p->value;
      out.width = node.width;
      out.clock_div = node.clock_div;
      out.name = node.name;
      ++res.stats.folded;
    } else if (p != nullptr && p->kind == RewriteKind::kNegAddToSub) {
      out.kind = OpKind::kSub;
      out.a = mapped(p->target == node.a ? node.b : node.a);
      out.b = mapped(m.node(p->target).a);
      ++res.stats.redirected;
    } else {
      out.a = mapped(node.a);
      out.b = mapped(node.b);
      out.c = mapped(node.c);
      if (p != nullptr && p->kind == RewriteKind::kWidthShrink) {
        out.width = p->new_width;
        ++res.stats.widths_shrunk;
        res.stats.bits_saved +=
            static_cast<std::size_t>(p->old_width - p->new_width);
      }
    }
    res.module.append(std::move(out));
  }
  res.stats.nodes_after = res.module.size();

  res.proofs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (has_proof[i] == 0) continue;
    if (is_redirect(chosen[i].kind)) ++res.stats.redirected;
    if (chosen[i].kind == RewriteKind::kDeadNode) ++res.stats.dead_removed;
    res.proofs.push_back(std::move(chosen[i]));
  }
  return res;
}

}  // namespace dsadc::analyze::opt
