// Linear transfer analysis: exact reachable-value bounds per netlist node.
//
// Between its nonlinear points (kRequant, kShr) the IR datapath is linear
// and periodically time-varying (decimators). For every *source* -- module
// input, constant, or the output of a nonlinear node -- this pass extracts
// the exact impulse response seen at every downstream node by simulating
// the source's forward cone in unbounded integer arithmetic, one simulation
// per source phase class (the response is periodic in the injection time
// with period P = lcm of the clock dividers). Folding the positive/negative
// response mass per output-time residue against each source's value range
// gives, by superposition, the *tight* reachable interval of every node
// whose impulse response settles ("bounded" nodes).
//
// Nodes whose response never settles -- the Hogenauer CIC integrator loop --
// are "divergent": they rely on two's-complement wraparound. For them the
// pass derives the modular-arithmetic safety condition instead: a divergent
// node is safe iff its width covers the `required_width` of every bounded
// node computed through it (Hogenauer's theorem). The dual quantity,
// `effective_width`, is the modulus (in bits) a bounded node's stored value
// is actually congruent to its exact value under: the minimum declared
// width along any wrapping path from the sources. A bounded node with
// required_width > effective_width provably misrepresents its exact value
// for some input -- the proven-overflow finding of lint.h.
//
// Bounds are tight ("exact") when only module inputs and constants reach a
// node: input samples are independent, so the extremal input pattern is
// realizable. Once a derived source (requant/shift-right output, which is
// correlated with the inputs) contributes, bounds remain sound but
// conservative, and findings downgrade from proven to possible.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/analyze/interval.h"
#include "src/rtl/ir.h"

namespace dsadc::analyze {

/// Reachability classification plus width bookkeeping for one node.
struct NodeBound {
  /// Exact-arithmetic impulse responses through this node settle; [lo, hi]
  /// is the reachable interval (sound; tight when `exact`).
  bool bounded = false;
  /// Impulse response never settles: the node's value is unbounded in
  /// exact arithmetic and relies on modular wraparound.
  bool divergent = false;
  /// Bounds are tight: only module inputs and constants contribute.
  bool exact = true;
  /// Bound magnitude exceeded 2^62 and was clamped.
  bool huge = false;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  /// Bounded: smallest two's-complement width holding [lo, hi].
  /// Divergent: the Hogenauer requirement, i.e. the maximum required_width
  /// over bounded nodes computed through this node (0 = no bounded
  /// observer, safety unknown).
  int required_width = 0;
  /// True when required_width for a divergent node was derived only from
  /// exact bounded observers (error-grade evidence).
  bool required_exact = true;
  /// Modular integrity in bits: stored value == exact value mod
  /// 2^effective_width. Starts at 64 for sources, shrinks through
  /// declared node widths along wrapping arithmetic.
  int effective_width = 64;
  /// The node whose declared width limits effective_width (kInvalidNode
  /// when effective_width is not limiting).
  rtl::NodeId narrow_node = rtl::kInvalidNode;
};

struct RangeResult {
  std::vector<NodeBound> bounds;  ///< one per node
  /// lcm of module clock dividers; 0 when the lcm exceeded the analysis
  /// cap (4096) and every node was left unclassified.
  int period = 1;
  std::uint64_t sim_ticks = 0;    ///< total base ticks simulated (diagnostic)
  int sources = 0;                ///< number of source nodes analyzed
};

/// Run the linear transfer analysis. `input_ranges` overrides the assumed
/// range of input ports (default: full range of the declared port width);
/// ranges wider than the port are wrapped, mirroring the simulator. Pass a
/// prebuilt NetlistIndex (dataflow/index.h) to share the def-use structure
/// with the other analysis passes.
RangeResult analyze_ranges(
    const rtl::Module& m,
    const std::map<rtl::NodeId, Interval>& input_ranges = {});
RangeResult analyze_ranges(const rtl::Module& m,
                           const std::map<rtl::NodeId, Interval>& input_ranges,
                           const NetlistIndex& idx);

/// Proven minimum safe register width over the module's state nodes
/// (kReg/kDecimate): the maximum of each state node's required_width. For a
/// Hogenauer CIC stage this equals the paper's Bmax + 1 = K*log2(M) + Bin.
/// Returns 0 when no state node has a known requirement.
int proven_min_register_width(const rtl::Module& m, const RangeResult& r);

}  // namespace dsadc::analyze
