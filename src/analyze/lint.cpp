#include "src/analyze/lint.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "src/analyze/dataflow/domains.h"
#include "src/analyze/dataflow/engine.h"
#include "src/analyze/dataflow/index.h"

namespace dsadc::analyze {
namespace {

using rtl::kInvalidNode;
using rtl::Module;
using rtl::Node;
using rtl::NodeId;
using rtl::OpKind;

constexpr Rule kInputExceedsPort{"range.input-exceeds-port", "RNG01",
                                 Severity::kError};
constexpr Rule kOverflowProven{"range.overflow.proven", "RNG02",
                               Severity::kError};
constexpr Rule kOverflowPossible{"range.overflow.possible", "RNG03",
                                 Severity::kWarning};
constexpr Rule kWrapUnderwidth{"range.wrap-underwidth", "RNG04",
                               Severity::kError};
constexpr Rule kUnboundedObserved{"range.unbounded-observed", "RNG05",
                                  Severity::kWarning};
constexpr Rule kUnusedMsb{"range.unused-msb", "RNG06", Severity::kInfo};
constexpr Rule kAnalysisSkipped{"range.analysis-skipped", "RNG07",
                                Severity::kWarning};
constexpr Rule kCrossDomainEdge{"cdc.cross-domain-edge", "CDC01",
                                Severity::kError};
constexpr Rule kDecimateRatio{"cdc.decimate-ratio", "CDC02", Severity::kError};
constexpr Rule kUnconnectedReg{"struct.unconnected-reg", "STR01",
                               Severity::kError};
constexpr Rule kMissingOperand{"struct.missing-operand", "STR02",
                               Severity::kError};
constexpr Rule kBadOperand{"struct.bad-operand", "STR03", Severity::kError};
constexpr Rule kCombOrder{"struct.comb-order", "STR04", Severity::kError};
constexpr Rule kCombCycle{"struct.comb-cycle", "STR05", Severity::kError};
constexpr Rule kDeadNode{"struct.dead-node", "STR06", Severity::kWarning};
constexpr Rule kUnusedInput{"struct.unused-input", "STR07", Severity::kWarning};
constexpr Rule kNoOutput{"struct.no-output", "STR08", Severity::kError};
constexpr Rule kRequantMismatch{"width.requant-mismatch", "WID01",
                                Severity::kError};
constexpr Rule kRequantShift{"width.requant-shift", "WID02", Severity::kError};
constexpr Rule kShlTruncated{"width.shl-truncated", "WID03",
                             Severity::kWarning};
constexpr Rule kUnreachableMuxArm{"opt.unreachable-mux-arm", "OPT01",
                                  Severity::kWarning};
constexpr Rule kConstantOutput{"opt.constant-output", "OPT02",
                               Severity::kWarning};
constexpr Rule kWidthNeverExercised{"opt.width-never-exercised", "OPT03",
                                    Severity::kInfo};

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kInput: return "input";
    case OpKind::kConst: return "const";
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kNeg: return "neg";
    case OpKind::kShl: return "shl";
    case OpKind::kShr: return "shr";
    case OpKind::kMux: return "mux";
    case OpKind::kReg: return "reg";
    case OpKind::kDecimate: return "decimate";
    case OpKind::kRequant: return "requant";
    case OpKind::kOutput: return "output";
  }
  return "?";
}

bool is_state_kind(OpKind k) {
  return k == OpKind::kReg || k == OpKind::kDecimate;
}

bool needs_a(OpKind k) { return k != OpKind::kInput && k != OpKind::kConst; }
bool needs_b(OpKind k) {
  return k == OpKind::kAdd || k == OpKind::kSub || k == OpKind::kMux;
}
bool needs_c(OpKind k) { return k == OpKind::kMux; }

/// Helper gathering findings with suppression bookkeeping deferred.
struct Collector {
  const Module& m;
  std::vector<Finding> findings;

  std::string describe(NodeId id) const {
    std::ostringstream os;
    const Node& node = m.node(id);
    os << "n" << id << " " << op_name(node.kind);
    if (!node.name.empty()) os << " '" << node.name << "'";
    os << " (" << node.width << "b";
    if (node.clock_div != 1) os << ", /" << node.clock_div;
    os << ")";
    return os.str();
  }

  Finding& add(const Rule& rule, NodeId node, std::string message) {
    Finding f;
    f.rule = rule.id;
    f.code = rule.code;
    f.severity = rule.severity;
    f.node = node;
    f.message = std::move(message);
    findings.push_back(std::move(f));
    return findings.back();
  }

  Finding& add(const Rule& rule, NodeId node, std::string message,
               Severity severity) {
    Finding& f = add(rule, node, std::move(message));
    f.severity = severity;
    return f;
  }
};

/// Structural rules. Returns true when the netlist is sound enough for the
/// value analyses to index operands safely.
bool structural_pass(const Module& m, Collector& c) {
  const auto& nodes = m.nodes();
  const std::size_t n = nodes.size();
  bool indexable = true;

  const auto valid = [&](NodeId id) {
    return id >= 0 && static_cast<std::size_t>(id) < n;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes[i];
    const NodeId id = static_cast<NodeId>(i);
    for (const auto& [op, slot] : {std::pair{node.a, 'a'}, std::pair{node.b, 'b'},
                                   std::pair{node.c, 'c'}}) {
      const bool required = slot == 'a'   ? needs_a(node.kind)
                            : slot == 'b' ? needs_b(node.kind)
                                          : needs_c(node.kind);
      if (op == kInvalidNode) {
        if (!required) continue;
        if (node.kind == OpKind::kReg) {
          c.add(kUnconnectedReg, id,
                c.describe(id) + ": reg_placeholder never connected");
        } else {
          std::ostringstream os;
          os << c.describe(id) << ": operand '" << slot << "' unconnected";
          c.add(kMissingOperand, id, os.str());
        }
        continue;
      }
      if (!valid(op)) {
        std::ostringstream os;
        os << c.describe(id) << ": operand '" << slot << "' id " << op
           << " out of range";
        c.add(kBadOperand, id, os.str()).data["operand"] = op;
        indexable = false;
        continue;
      }
      const Node& src = m.node(op);
      // Clock-domain rules: the only legal domain change is through a
      // decimate node with a consistent divider ratio.
      if (node.kind == OpKind::kDecimate) {
        if (node.amount < 2 ||
            node.clock_div != src.clock_div * node.amount) {
          std::ostringstream os;
          os << c.describe(id) << ": decimate divider " << node.clock_div
             << " != source divider " << src.clock_div << " * factor "
             << node.amount;
          Finding& f = c.add(kDecimateRatio, id, os.str());
          f.data["source"] = op;
          f.data["factor"] = node.amount;
        }
      } else if (src.clock_div != node.clock_div) {
        std::ostringstream os;
        os << c.describe(id) << ": reads " << c.describe(op)
           << " across clock domains without a decimate";
        Finding& f = c.add(kCrossDomainEdge, id, os.str());
        f.data["source"] = op;
        f.data["source_div"] = src.clock_div;
      }
      // Evaluation-order hazard: a combinational node reading a node
      // created later sees the previous tick's value (an accidental
      // register). Registers are the only sanctioned back-edges.
      if (!is_state_kind(node.kind) && op >= id) {
        std::ostringstream os;
        os << c.describe(id) << ": combinational read of later node n" << op
           << " (stale-value hazard)";
        c.add(kCombOrder, id, os.str()).data["operand"] = op;
      }
    }

    if (node.kind == OpKind::kRequant) {
      if (node.width != node.fmt.width) {
        std::ostringstream os;
        os << c.describe(id) << ": node width " << node.width
           << " != requant format width " << node.fmt.width;
        c.add(kRequantMismatch, id, os.str());
      }
      const int shift = node.src_frac - node.fmt.frac;
      if (shift <= -63) {
        std::ostringstream os;
        os << c.describe(id) << ": requant shift " << shift
           << " rejected by the datapath (|shift| >= 63)";
        c.add(kRequantShift, id, os.str()).data["shift"] = shift;
      }
    }
    if (node.kind == OpKind::kShl && valid(node.a)) {
      const int full = m.node(node.a).width + node.amount;
      if (full > node.width) {
        std::ostringstream os;
        os << c.describe(id) << ": shl by " << node.amount << " needs " << full
           << " bits but is declared " << node.width
           << "b (silently truncated in hardware)";
        Finding& f = c.add(kShlTruncated, id, os.str());
        f.data["needed"] = full;
      }
    }
  }

  // Combinational cycles: DFS over operand edges, with state nodes
  // breaking the traversal (their read is a sanctioned back-edge).
  if (indexable) {
    std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 on stack, 2 done
    std::vector<std::pair<NodeId, int>> stack;
    for (std::size_t root = 0; root < n; ++root) {
      if (color[root] != 0 || is_state_kind(nodes[root].kind)) continue;
      stack.push_back({static_cast<NodeId>(root), 0});
      color[root] = 1;
      while (!stack.empty()) {
        auto& [cur, phase] = stack.back();
        const Node& node = nodes[static_cast<std::size_t>(cur)];
        const std::array<NodeId, 3> ops = rtl::operands(node);
        bool descended = false;
        while (phase < 3) {
          const NodeId op = ops[static_cast<std::size_t>(phase++)];
          if (op == kInvalidNode || !valid(op)) continue;
          if (is_state_kind(nodes[static_cast<std::size_t>(op)].kind)) continue;
          const auto oi = static_cast<std::size_t>(op);
          if (color[oi] == 1) {
            std::ostringstream os;
            os << c.describe(cur) << ": combinational cycle through n" << op;
            c.add(kCombCycle, cur, os.str()).data["peer"] = op;
            continue;
          }
          if (color[oi] == 0) {
            color[oi] = 1;
            stack.push_back({op, 0});
            descended = true;
            break;
          }
        }
        if (!descended && phase >= 3) {
          color[static_cast<std::size_t>(cur)] = 2;
          stack.pop_back();
        }
      }
    }
  }

  // Reachability from outputs (dead logic) and output presence.
  const auto outputs = m.nodes_of_kind(OpKind::kOutput);
  if (outputs.empty()) {
    c.add(kNoOutput, kInvalidNode,
          "module '" + m.name() + "' has no output ports");
  } else if (indexable) {
    std::vector<std::uint8_t> live(n, 0);
    std::vector<NodeId> work(outputs.begin(), outputs.end());
    for (const NodeId o : work) live[static_cast<std::size_t>(o)] = 1;
    while (!work.empty()) {
      const NodeId cur = work.back();
      work.pop_back();
      const Node& node = nodes[static_cast<std::size_t>(cur)];
      for (const NodeId op : rtl::operands(node)) {
        if (op == kInvalidNode || !valid(op)) continue;
        if (!live[static_cast<std::size_t>(op)]) {
          live[static_cast<std::size_t>(op)] = 1;
          work.push_back(op);
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (live[i]) continue;
      const NodeId id = static_cast<NodeId>(i);
      if (nodes[i].kind == OpKind::kInput) {
        c.add(kUnusedInput, id, c.describe(id) + ": input drives no output");
      } else {
        c.add(kDeadNode, id,
              c.describe(id) + ": unreachable from any output (dead logic)");
      }
    }
  }
  return indexable;
}

void range_pass(const Module& m, const LintOptions& options,
                const RangeResult& r, Collector& c) {
  const auto& nodes = m.nodes();
  const std::size_t n = nodes.size();

  for (const auto& [id, range] : options.input_ranges) {
    if (id < 0 || static_cast<std::size_t>(id) >= n) continue;
    const Node& node = m.node(id);
    if (node.kind != OpKind::kInput) continue;
    const Interval full = Interval::full(node.width);
    if (range.lo < full.lo || range.hi > full.hi) {
      std::ostringstream os;
      os << c.describe(id) << ": assumed input range [" << range.lo << ", "
         << range.hi << "] exceeds the " << node.width << "-bit port";
      Finding& f = c.add(kInputExceedsPort, id, os.str());
      f.data["range_lo"] = range.lo;
      f.data["range_hi"] = range.hi;
    }
  }

  if (r.period == 0) {
    c.add(kAnalysisSkipped, kInvalidNode,
          "module '" + m.name() +
              "': clock-divider lcm exceeds the analysis cap; range "
              "analysis skipped");
    return;
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes[i];
    const NodeId id = static_cast<NodeId>(i);
    const NodeBound& b = r.bounds[i];

    if (b.bounded) {
      const int capacity = std::min(b.effective_width, 63);
      if (b.required_width > capacity) {
        std::ostringstream os;
        const bool proven = b.exact;
        os << c.describe(id) << ": "
           << (proven ? "proven overflow" : "possible overflow") << ": value"
           << " range [" << b.lo << ", " << b.hi << "] needs "
           << b.required_width << " bits, effective width " << capacity;
        if (b.narrow_node != kInvalidNode &&
            b.narrow_node != id) {
          os << " (limited by " << c.describe(b.narrow_node) << ")";
        }
        Finding& f =
            c.add(proven ? kOverflowProven : kOverflowPossible, id, os.str());
        f.data["required"] = b.required_width;
        f.data["effective"] = capacity;
        f.data["width"] = node.width;
        if (b.narrow_node != kInvalidNode) f.data["narrow_node"] = b.narrow_node;
      }
    } else if (b.divergent) {
      if (b.required_width > 0 && node.width < b.required_width) {
        std::ostringstream os;
        os << c.describe(id) << ": wrap-reliant node is " << node.width
           << "b but bounded values computed through it need "
           << b.required_width << " bits (Hogenauer width rule)";
        Finding& f = c.add(kWrapUnderwidth, id, os.str(),
                           b.required_exact ? Severity::kError
                                            : Severity::kWarning);
        f.data["required"] = b.required_width;
        f.data["width"] = node.width;
      }
      // Unbounded values must never be observed by a nonlinear consumer
      // or a module output: there is no width that makes them safe.
      if (node.kind == OpKind::kOutput) {
        c.add(kUnboundedObserved, id,
              c.describe(id) +
                  ": module output carries an unbounded wrap-reliant value");
      }
    }

    if ((node.kind == OpKind::kRequant || node.kind == OpKind::kShr) &&
        node.a != kInvalidNode &&
        r.bounds[static_cast<std::size_t>(node.a)].divergent) {
      std::ostringstream os;
      os << c.describe(id) << ": " << op_name(node.kind)
         << " of unbounded wrap-reliant value " << c.describe(node.a)
         << " cannot be verified";
      c.add(kUnboundedObserved, id, os.str()).data["operand"] = node.a;
    }

    // Wasted register bits (area): the MSBs above the proven requirement
    // can never carry information.
    if (is_state_kind(node.kind)) {
      const int needed =
          b.bounded ? b.required_width : (b.divergent ? b.required_width : 0);
      if (needed > 0 && !b.huge &&
          node.width - needed >= options.unused_msb_threshold) {
        std::ostringstream os;
        os << c.describe(id) << ": only " << needed << " of " << node.width
           << " register bits are reachable (" << (node.width - needed)
           << " wasted MSBs)";
        Finding& f = c.add(kUnusedMsb, id, os.str());
        f.data["needed"] = needed;
        f.data["wasted"] = node.width - needed;
      }
    }
  }
}

/// Optimization-opportunity rules driven by the dataflow domains the
/// netlist optimizer (opt/opt.h) uses: what these flag, `lint_rtl
/// --optimize` removes with a proof.
void opt_pass(const Module& m, const LintOptions& options,
              const NetlistIndex& idx, const IntervalResult& ivs,
              Collector& c) {
  ConstDomain cdom;
  cdom.input_ranges = &options.input_ranges;
  const std::vector<ConstValue> consts = solve(m, idx, cdom).value;
  KnownBitsDomain kdom;
  kdom.input_ranges = &options.input_ranges;
  const std::vector<KnownBits> kbits = solve(m, idx, kdom).value;

  for (const NodeId id : idx.of_kind(OpKind::kMux)) {
    const Node& node = m.node(id);
    const ConstValue sel = consts[static_cast<std::size_t>(node.c)];
    if (!sel.is_const()) continue;
    const NodeId dead_arm = sel.v != 0 ? node.b : node.a;
    std::ostringstream os;
    os << c.describe(id) << ": select " << c.describe(node.c)
       << " proven constant " << sel.v << "; arm " << c.describe(dead_arm)
       << " is unreachable";
    Finding& f = c.add(kUnreachableMuxArm, id, os.str());
    f.data["select_value"] = sel.v;
    f.data["dead_arm"] = dead_arm;
  }

  for (const NodeId id : idx.of_kind(OpKind::kOutput)) {
    const ConstValue v = consts[static_cast<std::size_t>(id)];
    if (!v.is_const()) continue;
    std::ostringstream os;
    os << c.describe(id) << ": output commits the constant " << v.v
       << " on every tick";
    c.add(kConstantOutput, id, os.str()).data["value"] = v.v;
  }

  for (std::size_t i = 0; i < m.size(); ++i) {
    const Node& node = m.nodes()[i];
    const NodeId id = static_cast<NodeId>(i);
    switch (node.kind) {
      case OpKind::kAdd:
      case OpKind::kSub:
      case OpKind::kNeg:
      case OpKind::kMux:
      case OpKind::kReg:
      case OpKind::kDecimate:
        break;
      default:
        continue;  // shl LSB zeros and const widths are by construction
    }
    if (consts[i].is_const()) continue;  // whole node is an OPT02/fold case
    const Interval iv = ivs.value[i];
    const int msb_wasted = node.width - bits_needed(iv.lo, iv.hi);
    const KnownBits kb = kbits[i];
    const int lsb_zero =
        kb.is_bottom() ? 0 : std::min(kb.trailing_zeros(), node.width - 1);
    const int wasted = std::max(msb_wasted, lsb_zero);
    if (wasted < options.never_exercised_threshold) continue;
    std::ostringstream os;
    os << c.describe(id) << ": " << wasted << " of " << node.width
       << " bits provably carry no information (";
    if (msb_wasted >= lsb_zero) {
      os << msb_wasted << " MSBs, interval [" << iv.lo << ", " << iv.hi << "]";
    } else {
      os << lsb_zero << " known-zero LSBs";
    }
    os << ")";
    Finding& f = c.add(kWidthNeverExercised, id, os.str());
    f.data["wasted"] = wasted;
    f.data["msb_wasted"] = msb_wasted;
    f.data["lsb_zero"] = lsb_zero;
  }
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "?";
}

bool suppression_matches(const std::string& pattern, const std::string& rule,
                         const std::string& module) {
  std::string rule_pat = pattern;
  const std::size_t at = pattern.find('@');
  if (at != std::string::npos) {
    rule_pat = pattern.substr(0, at);
    const std::string mod_pat = pattern.substr(at + 1);
    if (!mod_pat.empty() && mod_pat != module) return false;
  }
  if (rule_pat.empty()) return false;
  if (rule_pat.back() == '*') {
    return rule.compare(0, rule_pat.size() - 1, rule_pat, 0,
                        rule_pat.size() - 1) == 0;
  }
  return rule_pat == rule;
}

ModuleReport lint_module(const Module& m, const LintOptions& options) {
  ModuleReport report;
  report.module = options.module_name.empty() ? m.name() : options.module_name;
  report.nodes = m.size();

  Collector c{m, {}};
  const bool indexable = structural_pass(m, c);

  if (indexable && m.size() > 0) {
    const NetlistIndex idx(m);
    report.range = analyze_ranges(m, options.input_ranges, idx);
    report.interval = analyze_intervals(m, options.input_ranges, idx);
    range_pass(m, options, report.range, c);
    opt_pass(m, options, idx, report.interval, c);
  }

  for (Finding& f : c.findings) {
    for (const std::string& pat : options.suppress) {
      if (suppression_matches(pat, f.rule, report.module)) {
        f.suppressed = true;
        break;
      }
    }
    if (f.suppressed) {
      report.suppressed++;
    } else {
      switch (f.severity) {
        case Severity::kError: report.errors++; break;
        case Severity::kWarning: report.warnings++; break;
        case Severity::kInfo: report.infos++; break;
      }
    }
  }
  // Errors first, then warnings, then infos; stable within a class.
  std::stable_sort(c.findings.begin(), c.findings.end(),
                   [](const Finding& x, const Finding& y) {
                     return static_cast<int>(x.severity) <
                            static_cast<int>(y.severity);
                   });
  report.findings = std::move(c.findings);
  return report;
}

}  // namespace dsadc::analyze
