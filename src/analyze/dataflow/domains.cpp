#include "src/analyze/dataflow/domains.h"

#include "src/fixedpoint/fixed.h"

namespace dsadc::analyze {

using rtl::kInvalidNode;
using rtl::NodeId;
using rtl::OpKind;

// ---------------------------------------------------------------------------
// Intervals.

Interval interval_transfer(const rtl::Module& m, NodeId id,
                           const std::vector<Interval>& values,
                           const std::map<NodeId, Interval>& input_ranges,
                           bool* wrapped, bool* saturated) {
  const rtl::Node& node = m.node(id);
  const auto operand = [&](NodeId op) -> const Interval& {
    static const Interval zero{};
    return op == kInvalidNode ? zero : values[static_cast<std::size_t>(op)];
  };
  switch (node.kind) {
    case OpKind::kInput: {
      const auto it = input_ranges.find(id);
      const Interval given =
          it != input_ranges.end() ? it->second : Interval::full(node.width);
      // The simulator wraps bound input samples into the port width.
      return iv_wrap(given, node.width, wrapped);
    }
    case OpKind::kConst:
      return Interval::point(node.value);
    case OpKind::kAdd:
      return iv_add(operand(node.a), operand(node.b), node.width, wrapped);
    case OpKind::kSub:
      return iv_sub(operand(node.a), operand(node.b), node.width, wrapped);
    case OpKind::kNeg:
      return iv_neg(operand(node.a), node.width, wrapped);
    case OpKind::kShl:
      return iv_shl(operand(node.a), node.amount);
    case OpKind::kShr:
      return iv_shr(operand(node.a), node.amount);
    case OpKind::kMux: {
      // Selects only refine when the select interval is the point 0 (arm b
      // proven). The opposite proof (select never 0) cannot arise in this
      // lattice -- every interval includes the power-up 0 -- so the
      // constant domain owns unreachable-then-arm facts.
      const Interval& sel = operand(node.c);
      const Interval picked = sel == Interval::point(0)
                                  ? operand(node.b)
                                  : operand(node.a).hull(operand(node.b));
      return iv_wrap(picked, node.width, wrapped);
    }
    case OpKind::kReg:
    case OpKind::kDecimate:
      // State nodes hold their power-up 0 until the first capture, so
      // their value set is {0} union the operand's set.
      return Interval{}.hull(operand(node.a));
    case OpKind::kRequant:
      return iv_requant(operand(node.a), node.src_frac, node.fmt, node.rounding,
                        node.overflow, saturated, wrapped);
    case OpKind::kOutput:
      return operand(node.a);
  }
  return Interval{};
}

// ---------------------------------------------------------------------------
// Constant propagation.

namespace {

std::int64_t wrap64(std::int64_t v, int width) {
  return fx::wrap_to(v, fx::Format{width, 0});
}

}  // namespace

ConstValue ConstDomain::transfer(const rtl::Module& m, const NetlistIndex&,
                                 NodeId id,
                                 const std::vector<Value>& values) const {
  const rtl::Node& node = m.node(id);
  const auto operand = [&](NodeId op) -> ConstValue {
    // kInvalidNode operands read the simulator's pinned zero.
    return op == kInvalidNode ? ConstValue::constant(0)
                              : values[static_cast<std::size_t>(op)];
  };
  const auto binary = [&](auto&& fold) -> ConstValue {
    const ConstValue a = operand(node.a);
    const ConstValue b = operand(node.b);
    if (a.state == ConstValue::State::kBottom ||
        b.state == ConstValue::State::kBottom) {
      return ConstValue::bottom();
    }
    if (a.is_const() && b.is_const()) return ConstValue::constant(fold(a.v, b.v));
    return ConstValue::top();
  };
  const auto unary = [&](auto&& fold) -> ConstValue {
    const ConstValue a = operand(node.a);
    if (a.state == ConstValue::State::kBottom) return ConstValue::bottom();
    if (a.is_const()) return ConstValue::constant(fold(a.v));
    return ConstValue::top();
  };
  switch (node.kind) {
    case OpKind::kInput: {
      if (input_ranges != nullptr) {
        const auto it = input_ranges->find(id);
        if (it != input_ranges->end() && it->second.lo == it->second.hi) {
          return ConstValue::constant(wrap64(it->second.lo, node.width));
        }
      }
      return ConstValue::top();
    }
    case OpKind::kConst:
      return ConstValue::constant(node.value);
    case OpKind::kAdd:
      return binary([&](std::int64_t a, std::int64_t b) {
        return wrap64(static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                                static_cast<std::uint64_t>(b)),
                      node.width);
      });
    case OpKind::kSub:
      return binary([&](std::int64_t a, std::int64_t b) {
        return wrap64(static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                                static_cast<std::uint64_t>(b)),
                      node.width);
      });
    case OpKind::kNeg:
      return unary([&](std::int64_t a) {
        return wrap64(static_cast<std::int64_t>(-static_cast<std::uint64_t>(a)),
                      node.width);
      });
    case OpKind::kShl:
      return unary([&](std::int64_t a) {
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                         << node.amount);
      });
    case OpKind::kShr:
      return unary([&](std::int64_t a) { return a >> node.amount; });
    case OpKind::kMux: {
      const ConstValue sel = operand(node.c);
      if (sel.state == ConstValue::State::kBottom) return ConstValue::bottom();
      if (sel.is_const()) {
        const ConstValue picked = operand(sel.v != 0 ? node.a : node.b);
        if (picked.state != ConstValue::State::kConst) return picked;
        return ConstValue::constant(wrap64(picked.v, node.width));
      }
      // Unknown select: constant only when both arms agree after wrap.
      const ConstValue a = operand(node.a);
      const ConstValue b = operand(node.b);
      if (a.state == ConstValue::State::kBottom ||
          b.state == ConstValue::State::kBottom) {
        return ConstValue::bottom();
      }
      if (a.is_const() && b.is_const() &&
          wrap64(a.v, node.width) == wrap64(b.v, node.width)) {
        return ConstValue::constant(wrap64(a.v, node.width));
      }
      return ConstValue::top();
    }
    case OpKind::kReg:
    case OpKind::kDecimate: {
      // First capture commits the operand's power-up 0; afterwards the
      // operand's committed values. Join Const(0) with the operand fact.
      const ConstValue a = operand(node.a);
      if (a.state == ConstValue::State::kBottom || (a.is_const() && a.v == 0)) {
        return ConstValue::constant(0);
      }
      return ConstValue::top();
    }
    case OpKind::kRequant:
      return unary([&](std::int64_t a) {
        return fx::requantize(a, node.src_frac, node.fmt, node.rounding,
                              node.overflow);
      });
    case OpKind::kOutput: {
      const ConstValue a = operand(node.a);
      return a;
    }
  }
  return ConstValue::top();
}

// ---------------------------------------------------------------------------
// Known bits.

int KnownBits::trailing_zeros() const {
  if (is_bottom()) return 0;
  int n = 0;
  while (n < 64 && ((zeros >> n) & 1) != 0) ++n;
  return n;
}

KnownBits kb_wrap(const KnownBits& v, int width) {
  if (v.is_bottom()) return v;
  if (width >= 64) return v;
  // Bits above width-1 become copies of bit width-1 (sign extension of
  // the wrapped value): known only if the new sign bit is known.
  const std::uint64_t low_mask = (std::uint64_t{1} << width) - 1;
  const int sign = width - 1;
  const bool sign_zero = ((v.zeros >> sign) & 1) != 0;
  const bool sign_one = ((v.ones >> sign) & 1) != 0;
  KnownBits out{v.zeros & low_mask, v.ones & low_mask};
  if (sign_zero) out.zeros |= ~low_mask;
  if (sign_one) out.ones |= ~low_mask;
  return out;
}

namespace {

/// Trit per bit: 0 = known 0, 1 = known 1, -1 = unknown.
int bit_trit(const KnownBits& v, int bit) {
  if (((v.zeros >> bit) & 1) != 0) return 0;
  if (((v.ones >> bit) & 1) != 0) return 1;
  return -1;
}

KnownBits kb_add_carry(const KnownBits& a, const KnownBits& b, int carry) {
  if (a.is_bottom() || b.is_bottom()) return KnownBits::bottom();
  KnownBits out = KnownBits::top();
  for (int bit = 0; bit < 64; ++bit) {
    const int x = bit_trit(a, bit);
    const int y = bit_trit(b, bit);
    if (x >= 0 && y >= 0 && carry >= 0) {
      const int s = x ^ y ^ carry;
      if (s != 0) {
        out.ones |= std::uint64_t{1} << bit;
      } else {
        out.zeros |= std::uint64_t{1} << bit;
      }
    }
    // Majority carry: known when any two inputs agree on a known value.
    const int known_ones = (x == 1) + (y == 1) + (carry == 1);
    const int known_zeros = (x == 0) + (y == 0) + (carry == 0);
    carry = known_ones >= 2 ? 1 : (known_zeros >= 2 ? 0 : -1);
  }
  return out;
}

}  // namespace

KnownBits kb_add(const KnownBits& a, const KnownBits& b) {
  return kb_add_carry(a, b, 0);
}

KnownBits kb_sub(const KnownBits& a, const KnownBits& b) {
  if (b.is_bottom()) return KnownBits::bottom();
  // a - b == a + ~b + 1; complement swaps the known-0/known-1 masks.
  return kb_add_carry(a, KnownBits{b.ones, b.zeros}, 1);
}

KnownBits KnownBitsDomain::transfer(const rtl::Module& m, const NetlistIndex&,
                                    NodeId id,
                                    const std::vector<Value>& values) const {
  const rtl::Node& node = m.node(id);
  const auto operand = [&](NodeId op) -> KnownBits {
    return op == kInvalidNode ? KnownBits::constant(0)
                              : values[static_cast<std::size_t>(op)];
  };
  switch (node.kind) {
    case OpKind::kInput: {
      if (input_ranges != nullptr) {
        const auto it = input_ranges->find(id);
        if (it != input_ranges->end() && it->second.lo == it->second.hi) {
          return KnownBits::constant(wrap64(it->second.lo, node.width));
        }
      }
      return KnownBits::top();
    }
    case OpKind::kConst:
      return KnownBits::constant(node.value);
    case OpKind::kAdd:
      return kb_wrap(kb_add(operand(node.a), operand(node.b)), node.width);
    case OpKind::kSub:
      return kb_wrap(kb_sub(operand(node.a), operand(node.b)), node.width);
    case OpKind::kNeg:
      return kb_wrap(kb_sub(KnownBits::constant(0), operand(node.a)),
                     node.width);
    case OpKind::kShl: {
      const KnownBits a = operand(node.a);
      if (a.is_bottom()) return a;
      const std::uint64_t low =
          node.amount >= 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << node.amount) - 1;
      return KnownBits{(a.zeros << node.amount) | low, a.ones << node.amount};
    }
    case OpKind::kShr: {
      const KnownBits a = operand(node.a);
      if (a.is_bottom()) return a;
      // Arithmetic shift of the masks mirrors the arithmetic shift of the
      // value: the vacated top bits inherit the sign bit's known-ness.
      return KnownBits{
          static_cast<std::uint64_t>(static_cast<std::int64_t>(a.zeros) >>
                                     node.amount),
          static_cast<std::uint64_t>(static_cast<std::int64_t>(a.ones) >>
                                     node.amount)};
    }
    case OpKind::kMux: {
      const KnownBits sel = operand(node.c);
      if (sel.is_bottom()) return sel;
      if (sel.ones != 0) return kb_wrap(operand(node.a), node.width);
      if (sel.zeros == ~std::uint64_t{0}) {
        return kb_wrap(operand(node.b), node.width);
      }
      const KnownBits a = operand(node.a);
      const KnownBits b = operand(node.b);
      if (a.is_bottom() || b.is_bottom()) return KnownBits::bottom();
      return kb_wrap(KnownBits{a.zeros & b.zeros, a.ones & b.ones}, node.width);
    }
    case OpKind::kReg:
    case OpKind::kDecimate: {
      // Join of the power-up constant 0 with the operand facts: known-0
      // bits survive, known-1 bits do not.
      const KnownBits a = operand(node.a);
      if (a.is_bottom()) return KnownBits::constant(0);
      return KnownBits{a.zeros, 0};
    }
    case OpKind::kRequant: {
      const KnownBits a = operand(node.a);
      if (a.is_bottom()) return a;
      if (node.overflow == fx::Overflow::kSaturate) return KnownBits::top();
      const int shift = node.src_frac - node.fmt.frac;
      KnownBits shifted = a;
      if (shift > 0) {
        if (shift >= 63) return KnownBits::constant(0);
        if (node.rounding == fx::Rounding::kRoundNearest) {
          shifted = kb_add(shifted, KnownBits::constant(std::int64_t{1}
                                                        << (shift - 1)));
        }
        if (shifted.is_bottom()) return shifted;
        shifted = KnownBits{
            static_cast<std::uint64_t>(static_cast<std::int64_t>(shifted.zeros) >>
                                       shift),
            static_cast<std::uint64_t>(static_cast<std::int64_t>(shifted.ones) >>
                                       shift)};
      } else if (shift < 0 && -shift < 63) {
        const std::uint64_t low = (std::uint64_t{1} << -shift) - 1;
        shifted = KnownBits{(shifted.zeros << -shift) | low,
                            shifted.ones << -shift};
      }
      return kb_wrap(shifted, node.fmt.width);
    }
    case OpKind::kOutput:
      return operand(node.a);
  }
  return KnownBits::top();
}

}  // namespace dsadc::analyze
