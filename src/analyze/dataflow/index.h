// Per-netlist structural index shared by every analysis pass.
//
// The analyzers used to rediscover structure per pass: nodes_of_kind
// linear scans for port enumeration, and each fixpoint rebuilding its own
// def-use (consumer) lists. NetlistIndex computes both once per module --
// a CSR use-list adjacency plus dense by-kind buckets -- and every
// dataflow domain, lint pass and optimization pass reuses it.
//
// The index tolerates structurally broken modules (out-of-range operand
// ids): such edges are simply skipped, because the lint runs value
// analyses only after the structural pass but builds the index up front.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/rtl/ir.h"

namespace dsadc::analyze {

class NetlistIndex {
 public:
  explicit NetlistIndex(const rtl::Module& m);

  std::size_t size() const { return size_; }

  /// Nodes that read `id` as an operand (a, b or c slot), in creation
  /// order. A node reading `id` through two slots appears twice.
  std::span<const rtl::NodeId> users(rtl::NodeId id) const {
    const auto i = static_cast<std::size_t>(id);
    return {users_.data() + offsets_[i],
            static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }

  /// Number of use-list entries of `id` (its fanout).
  int fanout(rtl::NodeId id) const {
    const auto i = static_cast<std::size_t>(id);
    return static_cast<int>(offsets_[i + 1] - offsets_[i]);
  }

  /// All nodes of `kind`, in creation order.
  std::span<const rtl::NodeId> of_kind(rtl::OpKind kind) const {
    return by_kind_[static_cast<std::size_t>(kind)];
  }

  /// kReg and kDecimate nodes, in creation order (widening targets).
  std::span<const rtl::NodeId> state_nodes() const { return state_; }

 private:
  std::size_t size_ = 0;
  std::vector<std::int32_t> offsets_;  ///< CSR row starts, size()+1 entries
  std::vector<rtl::NodeId> users_;
  std::array<std::vector<rtl::NodeId>, rtl::kNumOpKinds> by_kind_;
  std::vector<rtl::NodeId> state_;
};

}  // namespace dsadc::analyze
