// Abstract domains for the dataflow engine (engine.h).
//
// Four domains cover the analyzer and optimizer needs:
//
//   * IntervalDomain  - signed value intervals (interval.h transfer
//     functions), forward, widened through state feedback. The engine
//     solve reproduces analyze_intervals bit-for-bit; that wrapper now
//     runs on this domain.
//   * ConstDomain     - constant propagation over *committed* values: the
//     fact "node n commits value v on every active tick" justifies
//     constant folding without perturbing activity counters.
//   * KnownBitsDomain - per-bit known-0/known-1 facts through add/sub/
//     shift/mux/CSD chains (sign-extension bits, cleared LSBs).
//   * LivenessDomain  - backward reachability from outputs; dead-node
//     elimination evidence.
//
// Every domain starts from the simulator's power-up state and joins over
// all reachable transfers, so each fixpoint over-approximates the set of
// values/bits/uses any run can exhibit. See docs/ANALYSIS.md.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/analyze/dataflow/engine.h"
#include "src/analyze/interval.h"
#include "src/rtl/ir.h"

namespace dsadc::analyze {

// ---------------------------------------------------------------------------
// Intervals.

/// One interval transfer step: the abstract value node `id` commits given
/// operand values. Mirrors rtl::Simulator per-op semantics exactly; the
/// flags (may-wrap / may-saturate) accumulate when non-null.
Interval interval_transfer(const rtl::Module& m, rtl::NodeId id,
                           const std::vector<Interval>& values,
                           const std::map<rtl::NodeId, Interval>& input_ranges,
                           bool* wrapped = nullptr, bool* saturated = nullptr);

struct IntervalDomain {
  using Value = Interval;
  static constexpr bool kBackward = false;
  static constexpr int kWidenAfter = 16;

  const std::map<rtl::NodeId, Interval>* input_ranges = nullptr;

  Value initial(const rtl::Module&, rtl::NodeId) const { return Interval{}; }
  Value transfer(const rtl::Module& m, const NetlistIndex&, rtl::NodeId id,
                 const std::vector<Value>& values) const {
    static const std::map<rtl::NodeId, Interval> kNoRanges;
    return interval_transfer(m, id, values,
                             input_ranges != nullptr ? *input_ranges : kNoRanges);
  }
  bool join(Value& into, const Value& next) const {
    const Interval h = into.hull(next);
    if (h == into) return false;
    into = h;
    return true;
  }
  void widen(const rtl::Module& m, rtl::NodeId id, Value& v) const {
    v = v.hull(Interval::full(m.node(id).width));
  }
};

// ---------------------------------------------------------------------------
// Constant propagation.

/// Lattice element: Bottom (no committed value seen yet) < Const(v) < Top.
/// Bottom is required so that a node's very first transfer result is
/// adopted as-is; the power-up value 0 is *not* joined in for
/// combinational nodes because users only observe committed values
/// (state nodes join Const(0) explicitly in their transfer: a register's
/// first capture commits the power-up 0 of its operand).
struct ConstValue {
  enum class State : std::uint8_t { kBottom, kConst, kTop };
  State state = State::kBottom;
  std::int64_t v = 0;

  static ConstValue bottom() { return {}; }
  static ConstValue top() { return {State::kTop, 0}; }
  static ConstValue constant(std::int64_t v) { return {State::kConst, v}; }
  bool is_const() const { return state == State::kConst; }
  bool operator==(const ConstValue&) const = default;
};

struct ConstDomain {
  using Value = ConstValue;
  static constexpr bool kBackward = false;
  static constexpr int kWidenAfter = 0;

  const std::map<rtl::NodeId, Interval>* input_ranges = nullptr;

  Value initial(const rtl::Module&, rtl::NodeId) const {
    return ConstValue::bottom();
  }
  Value transfer(const rtl::Module& m, const NetlistIndex&, rtl::NodeId id,
                 const std::vector<Value>& values) const;
  bool join(Value& into, const Value& next) const {
    using State = ConstValue::State;
    if (into.state == State::kTop || next.state == State::kBottom) return false;
    if (into.state == State::kBottom || into == next) {
      const bool changed = !(into == next);
      into = next;
      return changed;
    }
    into = ConstValue::top();
    return true;
  }
  void widen(const rtl::Module&, rtl::NodeId, Value&) const {}
};

// ---------------------------------------------------------------------------
// Known bits.

/// Per-bit facts about the 64-bit sign-extended committed value: bit i is
/// proven 0 when zeros has bit i set, proven 1 when ones has bit i set.
/// zeros & ones != 0 encodes Bottom (contradiction: no value seen yet);
/// zeros == ones == 0 is Top.
struct KnownBits {
  std::uint64_t zeros = ~std::uint64_t{0};
  std::uint64_t ones = ~std::uint64_t{0};

  static KnownBits bottom() { return {}; }
  static KnownBits top() { return {0, 0}; }
  static KnownBits constant(std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v);
    return {~u, u};
  }
  bool is_bottom() const { return (zeros & ones) != 0; }
  /// Proven value when every bit is known (callers check !is_bottom()).
  bool fully_known() const { return !is_bottom() && (zeros | ones) == ~std::uint64_t{0}; }
  /// Count of proven-zero low bits (cleared LSBs, e.g. below a shl).
  int trailing_zeros() const;
  bool operator==(const KnownBits&) const = default;
};

struct KnownBitsDomain {
  using Value = KnownBits;
  static constexpr bool kBackward = false;
  static constexpr int kWidenAfter = 0;

  const std::map<rtl::NodeId, Interval>* input_ranges = nullptr;

  Value initial(const rtl::Module&, rtl::NodeId) const {
    return KnownBits::bottom();
  }
  Value transfer(const rtl::Module& m, const NetlistIndex&, rtl::NodeId id,
                 const std::vector<Value>& values) const;
  bool join(Value& into, const Value& next) const {
    if (next.is_bottom()) return false;
    if (into.is_bottom()) {
      const bool changed = !(into == next);
      into = next;
      return changed;
    }
    const KnownBits met{into.zeros & next.zeros, into.ones & next.ones};
    if (met == into) return false;
    into = met;
    return true;
  }
  void widen(const rtl::Module&, rtl::NodeId, Value&) const {}
};

/// Wrap a known-bits pattern into `width` bits: bits above width-1 become
/// copies of the (possibly unknown) sign bit.
KnownBits kb_wrap(const KnownBits& v, int width);
/// Ripple-carry addition over known bits (exact per-bit majority carries).
KnownBits kb_add(const KnownBits& a, const KnownBits& b);
KnownBits kb_sub(const KnownBits& a, const KnownBits& b);

// ---------------------------------------------------------------------------
// Liveness.

/// Backward domain: a node is live when some path of operand edges leads
/// from an output to it. char (not bool) so values vectorize as bytes.
struct LivenessDomain {
  using Value = char;
  static constexpr bool kBackward = true;
  static constexpr int kWidenAfter = 0;

  Value initial(const rtl::Module& m, rtl::NodeId id) const {
    return m.node(id).kind == rtl::OpKind::kOutput ? 1 : 0;
  }
  Value transfer(const rtl::Module& m, const NetlistIndex& idx, rtl::NodeId id,
                 const std::vector<Value>& values) const {
    if (m.node(id).kind == rtl::OpKind::kOutput) return 1;
    for (const rtl::NodeId u : idx.users(id)) {
      if (values[static_cast<std::size_t>(u)] != 0) return 1;
    }
    return 0;
  }
  bool join(Value& into, const Value& next) const {
    if (into == 0 && next != 0) {
      into = 1;
      return true;
    }
    return false;
  }
  void widen(const rtl::Module&, rtl::NodeId, Value&) const {}
};

}  // namespace dsadc::analyze
