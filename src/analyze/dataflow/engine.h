// Generic worklist fixpoint engine over the RTL IR.
//
// One solver, pluggable abstract domains. A Domain describes a join
// semilattice per node and a monotone transfer function; the solver runs
// chaotic iteration (Gauss-Seidel sweeps over a dirty set) until nothing
// changes, with an optional widening hook for domains whose lattice has
// unbounded ascending chains through state feedback (intervals in the CIC
// integrator loop).
//
// Domain concept:
//
//   struct MyDomain {
//     using Value = ...;                 // lattice element per node
//     static constexpr bool kBackward;   // dependency direction
//     static constexpr int kWidenAfter;  // sweeps before widening; 0 = never
//     Value initial(const rtl::Module&, rtl::NodeId);
//     Value transfer(const rtl::Module&, const NetlistIndex&, rtl::NodeId,
//                    const std::vector<Value>& values);
//     bool join(Value& into, const Value& next);  // ascend; true if changed
//     void widen(const rtl::Module&, rtl::NodeId, Value&);  // state nodes
//   };
//
// Forward domains (kBackward = false) recompute a node from its operands
// and dirty its users on change; backward domains (liveness) recompute
// from users and dirty operands. Transfer must be monotone w.r.t. join
// for the fixpoint to exist; joins accumulate, so the result at each node
// over-approximates every reachable concrete state (see docs/ANALYSIS.md
// for the soundness argument each client pass leans on).
#pragma once

#include <cstddef>
#include <vector>

#include "src/analyze/dataflow/index.h"
#include "src/rtl/ir.h"

namespace dsadc::analyze {

struct SolveOptions {
  int max_sweeps = 100;
};

template <typename Domain>
struct SolveResult {
  std::vector<typename Domain::Value> value;  ///< per-node fixpoint
  int sweeps = 0;
  bool converged = false;
};

template <typename Domain>
SolveResult<Domain> solve(const rtl::Module& m, const NetlistIndex& idx,
                          Domain& dom, const SolveOptions& opt = {}) {
  const std::size_t n = m.size();
  SolveResult<Domain> res;
  res.value.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    res.value.push_back(dom.initial(m, static_cast<rtl::NodeId>(i)));
  }

  const auto in_range = [n](rtl::NodeId id) {
    return id >= 0 && static_cast<std::size_t>(id) < n;
  };
  std::vector<char> dirty(n, 1);
  std::vector<char> next_dirty(n, 0);
  // Mark the nodes whose transfer input just changed.
  const auto mark_deps = [&](rtl::NodeId id) {
    if constexpr (Domain::kBackward) {
      for (const rtl::NodeId op : rtl::operands(m.node(id))) {
        if (in_range(op)) next_dirty[static_cast<std::size_t>(op)] = 1;
      }
    } else {
      for (const rtl::NodeId u : idx.users(id)) {
        next_dirty[static_cast<std::size_t>(u)] = 1;
      }
    }
  };

  bool pending = n > 0;
  while (pending && res.sweeps < opt.max_sweeps) {
    ++res.sweeps;
    bool changed = false;
    // Sweep along the dependency direction (creation order is
    // topological modulo register back-edges), updating in place so a
    // change propagates within the same sweep.
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = Domain::kBackward ? n - 1 - step : step;
      if (dirty[i] == 0) continue;
      dirty[i] = 0;
      const auto id = static_cast<rtl::NodeId>(i);
      const typename Domain::Value next = dom.transfer(m, idx, id, res.value);
      if (dom.join(res.value[i], next)) {
        changed = true;
        mark_deps(id);
        // Within-sweep propagation: a dependent later in this sweep's
        // order picks the change up immediately.
        if constexpr (Domain::kBackward) {
          for (const rtl::NodeId op : rtl::operands(m.node(id))) {
            if (in_range(op) && static_cast<std::size_t>(op) < i) {
              dirty[static_cast<std::size_t>(op)] = 1;
            }
          }
        } else {
          for (const rtl::NodeId u : idx.users(id)) {
            if (static_cast<std::size_t>(u) > i) {
              dirty[static_cast<std::size_t>(u)] = 1;
            }
          }
        }
      }
    }
    if constexpr (Domain::kWidenAfter > 0) {
      // Ascending chains survive only through state feedback; once the
      // sweep budget is spent on a still-changing system, jump state
      // nodes up the lattice.
      if (changed && res.sweeps >= Domain::kWidenAfter) {
        for (const rtl::NodeId id : idx.state_nodes()) {
          typename Domain::Value widened = res.value[static_cast<std::size_t>(id)];
          dom.widen(m, id, widened);
          if (dom.join(res.value[static_cast<std::size_t>(id)], widened)) {
            changed = true;
            mark_deps(id);
          }
        }
      }
    }
    // The old dirty set is all zeroes again (every marked entry either
    // preceded its marker and stayed untouched -- impossible by the
    // direction guards -- or was processed and cleared), so the swap
    // hands a clean scratch set to the next sweep.
    dirty.swap(next_dirty);
    pending = false;
    if (changed) {
      for (const char d : dirty) pending = pending || d != 0;
    }
  }
  res.converged = !pending;
  return res;
}

}  // namespace dsadc::analyze
