#include "src/analyze/dataflow/index.h"

namespace dsadc::analyze {

NetlistIndex::NetlistIndex(const rtl::Module& m) {
  size_ = m.size();
  const auto n = size_;

  // Counting pass, then CSR fill. Operand ids outside [0, n) (broken
  // modules the structural lint will flag) contribute no edges.
  offsets_.assign(n + 1, 0);
  const auto in_range = [n](rtl::NodeId id) {
    return id >= 0 && static_cast<std::size_t>(id) < n;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (const rtl::NodeId op : rtl::operands(m.node(static_cast<rtl::NodeId>(i)))) {
      if (in_range(op)) ++offsets_[static_cast<std::size_t>(op) + 1];
    }
  }
  for (std::size_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];
  users_.resize(static_cast<std::size_t>(offsets_[n]));
  std::vector<std::int32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<rtl::NodeId>(i);
    const rtl::Node& node = m.node(id);
    for (const rtl::NodeId op : rtl::operands(node)) {
      if (in_range(op)) {
        users_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(op)]++)] = id;
      }
    }
    by_kind_[static_cast<std::size_t>(node.kind)].push_back(id);
    if (node.kind == rtl::OpKind::kReg || node.kind == rtl::OpKind::kDecimate) {
      state_.push_back(id);
    }
  }
}

}  // namespace dsadc::analyze
