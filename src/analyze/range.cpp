#include "src/analyze/range.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/analyze/dataflow/index.h"

namespace dsadc::analyze {
namespace {

using rtl::kInvalidNode;
using rtl::Module;
using rtl::Node;
using rtl::NodeId;
using rtl::OpKind;

using Wide = __int128;

// Saturation rail for exact-arithmetic simulation: far beyond any
// representable node value (widths cap at 62 bits) but with enough
// headroom that sums and range products stay inside __int128.
constexpr Wide kRail = Wide{1} << 100;

Wide sat(Wide v) { return v > kRail ? kRail : (v < -kRail ? -kRail : v); }

Wide sat_add(Wide a, Wide b) { return sat(a + b); }

Wide sat_mul(Wide a, Wide b) {
  if (a == 0 || b == 0) return 0;
  const Wide aa = a < 0 ? -a : a;
  const Wide ab = b < 0 ? -b : b;
  if (aa > kRail / ab) return ((a < 0) != (b < 0)) ? -kRail : kRail;
  return sat(a * b);
}

Wide sat_shl(Wide v, int amount) {
  const Wide av = v < 0 ? -v : v;
  if (av > (kRail >> amount)) return v < 0 ? -kRail : kRail;
  return v << amount;
}

bool is_source_kind(OpKind k) {
  // kRequant/kShr/kMux are *derived* sources: nonlinear points where the
  // superposition argument breaks; their output is re-characterized from
  // the operand bounds and propagation restarts.
  return k == OpKind::kInput || k == OpKind::kConst || k == OpKind::kRequant ||
         k == OpKind::kShr || k == OpKind::kMux;
}

bool is_state_kind(OpKind k) {
  return k == OpKind::kReg || k == OpKind::kDecimate;
}

constexpr int kMaxPeriod = 4096;

/// Everything shared between the per-source simulations.
struct Analyzer {
  const Module& m;
  const std::map<NodeId, Interval>& input_ranges;
  const NetlistIndex& idx;  ///< shared def-use structure (users lists)
  std::size_t n;
  int period = 1;

  std::vector<std::vector<NodeId>> cones;      // per source index
  std::vector<NodeId> source_nodes;            // source index -> node id
  std::vector<int> source_index;               // node id -> source index or -1

  // Accumulated per-node, per-output-residue reachable contribution.
  std::vector<Wide> glo_lo, glo_hi;            // [node * period + residue]
  std::vector<bool> exact, divergent;

  // Scratch buffers reused by every simulation.
  std::vector<Wide> value, next_reg, spos, sneg;
  std::vector<std::uint64_t> last_nonzero;

  std::uint64_t total_ticks = 0;

  Analyzer(const Module& mod, const std::map<NodeId, Interval>& ranges,
           const NetlistIndex& index)
      : m(mod), input_ranges(ranges), idx(index), n(mod.size()) {}

  Wide& at(std::vector<Wide>& v, std::size_t node, int residue) {
    return v[node * static_cast<std::size_t>(period) +
             static_cast<std::size_t>(residue)];
  }

  bool run();
  void compute_cones();
  std::vector<int> source_order() const;
  Interval source_range(NodeId id, bool* conservative) const;
  NodeBound finalize_node(std::size_t i) const;
  void simulate(NodeId src, int phase, const std::vector<NodeId>& cone,
                const Interval& range);
  void simulate_constants();
};

void Analyzer::compute_cones() {
  source_index.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (is_source_kind(m.node(static_cast<NodeId>(i)).kind)) {
      source_index[i] = static_cast<int>(source_nodes.size());
      source_nodes.push_back(static_cast<NodeId>(i));
    }
  }
  cones.assign(source_nodes.size(), {});
  std::vector<char> seen(n);
  for (std::size_t s = 0; s < source_nodes.size(); ++s) {
    std::fill(seen.begin(), seen.end(), 0);
    std::vector<NodeId> stack{source_nodes[s]};
    seen[static_cast<std::size_t>(source_nodes[s])] = 1;
    while (!stack.empty()) {
      const NodeId cur = stack.back();
      stack.pop_back();
      cones[s].push_back(cur);
      for (const NodeId c : idx.users(cur)) {
        if (seen[static_cast<std::size_t>(c)]) continue;
        // Derived sources (requant / shift-right / mux) terminate
        // propagation: their output is re-characterized from the
        // operand bounds.
        if (is_source_kind(m.node(c).kind)) continue;
        seen[static_cast<std::size_t>(c)] = 1;
        stack.push_back(c);
      }
    }
    std::sort(cones[s].begin(), cones[s].end());  // evaluation order
  }
}

/// Topological order of sources over the "feeds" relation (source s feeds
/// derived source d when d's operand lies in cone(s)). Cycle members fall
/// back to id order and get conservative full-format ranges.
std::vector<int> Analyzer::source_order() const {
  const std::size_t ns = source_nodes.size();
  std::vector<std::vector<int>> out_edges(ns);
  std::vector<int> indegree(ns, 0);
  for (std::size_t d = 0; d < ns; ++d) {
    const Node& node = m.node(source_nodes[d]);
    if (node.kind != OpKind::kRequant && node.kind != OpKind::kShr &&
        node.kind != OpKind::kMux) {
      continue;
    }
    for (std::size_t s = 0; s < ns; ++s) {
      if (s == d) continue;
      bool feeds = false;
      for (const NodeId op : rtl::operands(node)) {
        feeds = feeds || (op != kInvalidNode &&
                          std::binary_search(cones[s].begin(), cones[s].end(),
                                             op));
      }
      if (feeds) {
        out_edges[s].push_back(static_cast<int>(d));
        indegree[d]++;
      }
    }
  }
  std::vector<int> order;
  std::vector<int> ready;
  for (std::size_t s = 0; s < ns; ++s) {
    if (indegree[s] == 0) ready.push_back(static_cast<int>(s));
  }
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end());
    const int s = ready.front();
    ready.erase(ready.begin());
    order.push_back(s);
    for (const int d : out_edges[static_cast<std::size_t>(s)]) {
      if (--indegree[static_cast<std::size_t>(d)] == 0) ready.push_back(d);
    }
  }
  for (std::size_t s = 0; s < ns; ++s) {  // cycle members, id order
    if (std::find(order.begin(), order.end(), static_cast<int>(s)) ==
        order.end()) {
      order.push_back(static_cast<int>(s));
    }
  }
  return order;
}

Interval Analyzer::source_range(NodeId id, bool* conservative) const {
  const Node& node = m.node(id);
  switch (node.kind) {
    case OpKind::kInput: {
      const auto it = input_ranges.find(id);
      const Interval given =
          it != input_ranges.end() ? it->second : Interval::full(node.width);
      return iv_wrap(given, node.width);  // the simulator wraps inputs
    }
    case OpKind::kRequant: {
      *conservative = true;
      if (node.a != kInvalidNode) {
        const NodeBound in = finalize_node(static_cast<std::size_t>(node.a));
        if (in.bounded && !in.huge) {
          return iv_requant(Interval{in.lo, in.hi}, node.src_frac, node.fmt,
                            node.rounding, node.overflow);
        }
      }
      return Interval::full(node.fmt.width);
    }
    case OpKind::kShr: {
      *conservative = true;
      if (node.a != kInvalidNode) {
        const NodeBound in = finalize_node(static_cast<std::size_t>(node.a));
        if (in.bounded && !in.huge) {
          return iv_shr(Interval{in.lo, in.hi}, node.amount);
        }
        return iv_shr(Interval::full(m.node(node.a).width), node.amount);
      }
      return Interval::full(node.width);
    }
    case OpKind::kMux: {
      // Either arm can be committed, so the hull of the arm bounds
      // (wrapped into the mux width like the simulator) is sound; the
      // select only steers, it never contributes value mass.
      *conservative = true;
      const auto arm = [&](NodeId op) {
        if (op == kInvalidNode) return Interval{};
        const NodeBound in = finalize_node(static_cast<std::size_t>(op));
        if (in.bounded && !in.huge) return Interval{in.lo, in.hi};
        return Interval::full(m.node(op).width);
      };
      return iv_wrap(arm(node.a).hull(arm(node.b)), node.width);
    }
    default:
      return Interval::point(node.value);  // kConst (handled separately)
  }
}

/// Collapse the per-residue accumulators into this node's NodeBound (range
/// part only; required/effective widths are filled in later).
NodeBound Analyzer::finalize_node(std::size_t i) const {
  NodeBound b;
  if (divergent[i]) {
    b.divergent = true;
    b.exact = exact[i];
    return b;
  }
  Wide lo = 0, hi = 0;
  for (int r = 0; r < period; ++r) {
    lo = std::min(lo, glo_lo[i * static_cast<std::size_t>(period) +
                         static_cast<std::size_t>(r)]);
    hi = std::max(hi, glo_hi[i * static_cast<std::size_t>(period) +
                         static_cast<std::size_t>(r)]);
  }
  b.bounded = true;
  b.exact = exact[i];
  constexpr Wide kNodeRail = Wide{1} << 62;
  if (lo < -kNodeRail || hi > kNodeRail) {
    b.huge = true;
    lo = std::max(lo, -kNodeRail);
    hi = std::min(hi, kNodeRail);
  }
  b.lo = static_cast<std::int64_t>(lo);
  b.hi = static_cast<std::int64_t>(hi);
  b.required_width = b.huge ? 63 : bits_needed(b.lo, b.hi);
  return b;
}

void Analyzer::simulate(NodeId src, int phase,
                        const std::vector<NodeId>& cone,
                        const Interval& range) {
  // Scratch is shared across simulations; only cone entries are ever
  // written, and they are cleared below before use.
  for (const NodeId id : cone) {
    const auto i = static_cast<std::size_t>(id);
    value[i] = 0;
    next_reg[i] = 0;
    last_nonzero[i] = 0;
    for (int r = 0; r < period; ++r) {
      const std::size_t k =
          i * static_cast<std::size_t>(period) + static_cast<std::size_t>(r);
      spos[k] = 0;
      sneg[k] = 0;
    }
  }

  std::uint64_t state_delay = 0;
  for (const NodeId id : cone) {
    const Node& node = m.node(id);
    if (is_state_kind(node.kind)) {
      state_delay += static_cast<std::uint64_t>(node.clock_div);
    }
  }
  const std::uint64_t t_max =
      4 * state_delay + 8 * static_cast<std::uint64_t>(period) + 64;

  bool settled = false;
  bool rail_hit = false;
  std::uint64_t t = 0;
  for (; t <= t_max; ++t) {
    // Phase 1: state nodes in active domains capture operand values from
    // the end of the previous tick.
    for (const NodeId id : cone) {
      const Node& node = m.node(id);
      if (!is_state_kind(node.kind)) continue;
      if (t % static_cast<std::uint64_t>(node.clock_div) != 0) continue;
      next_reg[static_cast<std::size_t>(id)] =
          node.a == kInvalidNode ? 0 : value[static_cast<std::size_t>(node.a)];
    }
    // Phase 2: propagate in creation order, exact arithmetic, no wrapping.
    for (const NodeId id : cone) {
      const auto i = static_cast<std::size_t>(id);
      const Node& node = m.node(id);
      if (t % static_cast<std::uint64_t>(node.clock_div) != 0) continue;
      Wide out = value[i];
      if (id == src) {
        out = (t == static_cast<std::uint64_t>(phase)) ? 1 : 0;
      } else {
        switch (node.kind) {
          case OpKind::kAdd:
            out = sat_add(value[static_cast<std::size_t>(node.a)],
                          value[static_cast<std::size_t>(node.b)]);
            break;
          case OpKind::kSub:
            out = sat_add(value[static_cast<std::size_t>(node.a)],
                          -value[static_cast<std::size_t>(node.b)]);
            break;
          case OpKind::kNeg:
            out = -value[static_cast<std::size_t>(node.a)];
            break;
          case OpKind::kShl:
            out = sat_shl(value[static_cast<std::size_t>(node.a)], node.amount);
            break;
          case OpKind::kReg:
          case OpKind::kDecimate:
            out = next_reg[i];
            break;
          case OpKind::kOutput:
            out = value[static_cast<std::size_t>(node.a)];
            break;
          default:
            out = 0;  // unreachable: sources terminate cones
            break;
        }
      }
      if (out >= kRail || out <= -kRail) rail_hit = true;
      value[i] = out;
    }
    // Accumulate held values into the per-residue mass and check settling.
    bool all_zero = true;
    const int residue = static_cast<int>(t % static_cast<std::uint64_t>(period));
    for (const NodeId id : cone) {
      const auto i = static_cast<std::size_t>(id);
      const Wide v = value[i];
      if (v > 0) {
        at(spos, i, residue) = sat_add(at(spos, i, residue), v);
      } else if (v < 0) {
        at(sneg, i, residue) = sat_add(at(sneg, i, residue), -v);
      }
      if (v != 0 || next_reg[i] != 0) {
        all_zero = false;
        last_nonzero[i] = t;
      }
    }
    if (all_zero && t > static_cast<std::uint64_t>(phase)) {
      settled = true;
      ++t;
      break;
    }
  }
  total_ticks += t;

  const std::uint64_t recent =
      t > 2 * static_cast<std::uint64_t>(period)
          ? t - 2 * static_cast<std::uint64_t>(period)
          : 0;
  for (const NodeId id : cone) {
    const auto i = static_cast<std::size_t>(id);
    if (!settled && last_nonzero[i] >= recent && last_nonzero[i] != 0) {
      divergent[i] = true;  // response still live at the horizon
    }
    if (rail_hit && !settled) divergent[i] = divergent[i] || value[i] != 0;
    if (divergent[i]) continue;
    // Fold this source's response mass against its value range.
    for (int r = 0; r < period; ++r) {
      const Wide sp = at(spos, i, r);
      const Wide sn = at(sneg, i, r);
      if (sp == 0 && sn == 0) continue;
      const std::size_t k =
          i * static_cast<std::size_t>(period) + static_cast<std::size_t>(r);
      glo_hi[k] = sat_add(glo_hi[k], sat_add(sat_mul(sp, range.hi),
                                             sat_mul(sn, -range.lo)));
      glo_lo[k] = sat_add(glo_lo[k], sat_add(sat_mul(sp, range.lo),
                                             sat_mul(sn, -range.hi)));
    }
  }
}

/// Constants are persistent (step, not impulse) drivers; simulate them all
/// at once and track per-residue min/max directly -- superposition still
/// holds because the impulse simulations zero every constant.
void Analyzer::simulate_constants() {
  std::vector<char> in_cone(n, 0);
  std::vector<NodeId> cone;
  for (std::size_t s = 0; s < source_nodes.size(); ++s) {
    const Node& node = m.node(source_nodes[s]);
    if (node.kind != OpKind::kConst || node.value == 0) continue;
    for (const NodeId id : cones[s]) {
      if (!in_cone[static_cast<std::size_t>(id)]) {
        in_cone[static_cast<std::size_t>(id)] = 1;
        cone.push_back(id);
      }
    }
  }
  if (cone.empty()) return;
  std::sort(cone.begin(), cone.end());

  std::vector<Wide> dc_lo(n * static_cast<std::size_t>(period), 0);
  std::vector<Wide> dc_hi(n * static_cast<std::size_t>(period), 0);
  for (const NodeId id : cone) {
    const auto i = static_cast<std::size_t>(id);
    value[i] = 0;
    next_reg[i] = 0;
    last_nonzero[i] = 0;
  }
  std::uint64_t state_delay = 0;
  for (const NodeId id : cone) {
    const Node& node = m.node(id);
    if (is_state_kind(node.kind)) {
      state_delay += static_cast<std::uint64_t>(node.clock_div);
    }
  }
  const std::uint64_t t_max =
      4 * state_delay + 8 * static_cast<std::uint64_t>(period) + 64;

  // Periodic steady state: stable once every cone value matches its value
  // one period ago for a full period of consecutive ticks.
  std::vector<Wide> history(cone.size() * static_cast<std::size_t>(period), 0);
  std::uint64_t stable_run = 0;
  bool settled = false;
  std::uint64_t t = 0;
  for (; t <= t_max; ++t) {
    for (const NodeId id : cone) {
      const Node& node = m.node(id);
      if (!is_state_kind(node.kind)) continue;
      if (t % static_cast<std::uint64_t>(node.clock_div) != 0) continue;
      next_reg[static_cast<std::size_t>(id)] =
          node.a == kInvalidNode ? 0 : value[static_cast<std::size_t>(node.a)];
    }
    bool periodic = t >= static_cast<std::uint64_t>(period);
    const int residue = static_cast<int>(t % static_cast<std::uint64_t>(period));
    for (std::size_t ci = 0; ci < cone.size(); ++ci) {
      const NodeId id = cone[ci];
      const auto i = static_cast<std::size_t>(id);
      const Node& node = m.node(id);
      if (t % static_cast<std::uint64_t>(node.clock_div) == 0) {
        Wide out = value[i];
        switch (node.kind) {
          case OpKind::kConst:
            out = node.value;
            break;
          case OpKind::kAdd:
            out = sat_add(value[static_cast<std::size_t>(node.a)],
                          value[static_cast<std::size_t>(node.b)]);
            break;
          case OpKind::kSub:
            out = sat_add(value[static_cast<std::size_t>(node.a)],
                          -value[static_cast<std::size_t>(node.b)]);
            break;
          case OpKind::kNeg:
            out = -value[static_cast<std::size_t>(node.a)];
            break;
          case OpKind::kShl:
            out = sat_shl(value[static_cast<std::size_t>(node.a)], node.amount);
            break;
          case OpKind::kReg:
          case OpKind::kDecimate:
            out = next_reg[i];
            break;
          case OpKind::kOutput:
            out = value[static_cast<std::size_t>(node.a)];
            break;
          default:
            out = 0;
            break;
        }
        value[i] = out;
      }
      auto& slot = history[ci * static_cast<std::size_t>(period) +
                           static_cast<std::size_t>(residue)];
      if (slot != value[i]) {
        periodic = false;
        slot = value[i];
        last_nonzero[i] = t;
      }
      const std::size_t k =
          i * static_cast<std::size_t>(period) + static_cast<std::size_t>(residue);
      dc_lo[k] = std::min(dc_lo[k], value[i]);
      dc_hi[k] = std::max(dc_hi[k], value[i]);
    }
    stable_run = periodic ? stable_run + 1 : 0;
    if (stable_run >= static_cast<std::uint64_t>(period)) {
      settled = true;
      ++t;
      break;
    }
  }
  total_ticks += t;

  const std::uint64_t recent =
      t > 2 * static_cast<std::uint64_t>(period)
          ? t - 2 * static_cast<std::uint64_t>(period)
          : 0;
  for (const NodeId id : cone) {
    const auto i = static_cast<std::size_t>(id);
    if (!settled && last_nonzero[i] >= recent && last_nonzero[i] != 0) {
      divergent[i] = true;
    }
    if (divergent[i]) continue;
    for (int r = 0; r < period; ++r) {
      const std::size_t k =
          i * static_cast<std::size_t>(period) + static_cast<std::size_t>(r);
      glo_lo[k] = sat_add(glo_lo[k], dc_lo[k]);
      glo_hi[k] = sat_add(glo_hi[k], dc_hi[k]);
    }
  }
}

bool Analyzer::run() {
  period = 1;
  for (std::size_t i = 0; i < n; ++i) {
    const int d = m.node(static_cast<NodeId>(i)).clock_div;
    if (d > 0) period = static_cast<int>(std::lcm(period, d));
    if (period > kMaxPeriod) return false;
  }
  compute_cones();
  const std::size_t np = n * static_cast<std::size_t>(period);
  glo_lo.assign(np, 0);
  glo_hi.assign(np, 0);
  exact.assign(n, true);
  divergent.assign(n, false);
  value.assign(n, 0);
  next_reg.assign(n, 0);
  spos.assign(np, 0);
  sneg.assign(np, 0);
  last_nonzero.assign(n, 0);

  simulate_constants();

  for (const int s : source_order()) {
    const NodeId id = source_nodes[static_cast<std::size_t>(s)];
    const Node& node = m.node(id);
    if (node.kind == OpKind::kConst) continue;  // handled above
    bool conservative = false;
    const Interval range = source_range(id, &conservative);
    if (conservative) {
      for (const NodeId c : cones[static_cast<std::size_t>(s)]) {
        exact[static_cast<std::size_t>(c)] = false;
      }
    }
    const int d = node.clock_div;
    for (int phase = 0; phase < period; phase += d) {
      simulate(id, phase, cones[static_cast<std::size_t>(s)], range);
    }
  }
  return true;
}

}  // namespace

RangeResult analyze_ranges(const Module& m,
                           const std::map<NodeId, Interval>& input_ranges) {
  const NetlistIndex idx(m);
  return analyze_ranges(m, input_ranges, idx);
}

RangeResult analyze_ranges(const Module& m,
                           const std::map<NodeId, Interval>& input_ranges,
                           const NetlistIndex& idx) {
  RangeResult res;
  const std::size_t n = m.size();
  res.bounds.assign(n, NodeBound{});
  if (n == 0) return res;

  Analyzer a(m, input_ranges, idx);
  if (!a.run()) {
    // Clock-period blowup: leave every node unclassified (lint reports it).
    res.period = 0;
    return res;
  }
  res.period = a.period;
  res.sim_ticks = a.total_ticks;
  res.sources = static_cast<int>(a.source_nodes.size());

  for (std::size_t i = 0; i < n; ++i) {
    res.bounds[i] = a.finalize_node(i);
  }

  // Effective modulus (stored == exact mod 2^effective_width): minimum
  // declared width along wrapping arithmetic from the sources; min-fixpoint
  // over register back-edges. Exactness *recovers* at a node whose operand
  // modulus covers its own width and whose proven range fits that width:
  // stored == exact mod 2^w with both values inside one 2^w window forces
  // stored == exact -- the mechanism that makes Hogenauer's wrapped
  // integrators legal.
  const auto& nodes = m.nodes();
  for (int sweep = 0; sweep < 130; ++sweep) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Node& node = nodes[i];
      NodeBound& b = res.bounds[i];
      if (is_source_kind(node.kind)) continue;  // reference signals: exact
      const auto op_em = [&](NodeId id) {
        return id == kInvalidNode
                   ? 64
                   : res.bounds[static_cast<std::size_t>(id)].effective_width;
      };
      const auto op_narrow = [&](NodeId id) {
        return id == kInvalidNode
                   ? kInvalidNode
                   : res.bounds[static_cast<std::size_t>(id)].narrow_node;
      };
      // Operand-derived modulus, before this node's own width clamp.
      int pre_em = 64;
      NodeId narrow = kInvalidNode;
      const auto consider = [&](int cand, NodeId who) {
        if (cand < pre_em) {
          pre_em = cand;
          narrow = who;
        }
      };
      switch (node.kind) {
        case OpKind::kAdd:
        case OpKind::kSub:
          consider(op_em(node.a), op_narrow(node.a));
          consider(op_em(node.b), op_narrow(node.b));
          break;
        case OpKind::kNeg:
        case OpKind::kReg:
        case OpKind::kDecimate:
        case OpKind::kOutput:
          consider(op_em(node.a), op_narrow(node.a));
          break;
        case OpKind::kShl:
          // Shifting left preserves congruence in `amount` extra low bits.
          consider(std::min(64, op_em(node.a) + node.amount),
                   op_narrow(node.a));
          break;
        default:
          break;
      }
      int em;
      if (b.bounded && !b.huge && pre_em >= node.width &&
          b.required_width <= node.width) {
        em = 64;  // exactness recovered at this node
        narrow = kInvalidNode;
      } else if (node.width < pre_em) {
        em = node.width;
        narrow = static_cast<NodeId>(i);
      } else {
        em = pre_em;
      }
      if (em != b.effective_width) {
        b.effective_width = em;
        b.narrow_node = narrow;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Hogenauer requirement for divergent nodes: max required_width over
  // bounded nodes computed through them; max-fixpoint over back-edges.
  for (int sweep = 0; sweep < 130; ++sweep) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Node& node = nodes[i];
      const NodeBound& b = res.bounds[i];
      int cand;
      bool cand_exact;
      if (b.bounded) {
        cand = b.required_width;
        cand_exact = b.exact;
      } else if (b.divergent) {
        cand = b.required_width;
        cand_exact = b.required_exact;
      } else {
        continue;
      }
      if (cand == 0) continue;
      for (const NodeId op : {node.a, node.b}) {
        if (op == kInvalidNode) continue;
        NodeBound& ob = res.bounds[static_cast<std::size_t>(op)];
        if (!ob.divergent) continue;  // bounded operands hold exact values
        if (cand > ob.required_width) {
          ob.required_width = cand;
          ob.required_exact = cand_exact;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  return res;
}

int proven_min_register_width(const Module& m, const RangeResult& r) {
  int width = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    const OpKind k = m.node(static_cast<NodeId>(i)).kind;
    if (k != OpKind::kReg && k != OpKind::kDecimate) continue;
    width = std::max(width, r.bounds[i].required_width);
  }
  return width;
}

}  // namespace dsadc::analyze
