#include "src/analyze/report.h"

#include <sstream>

namespace dsadc::analyze {

std::string text_report(const std::vector<ModuleReport>& reports,
                        bool show_suppressed) {
  std::ostringstream os;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  for (const ModuleReport& r : reports) {
    for (const Finding& f : r.findings) {
      if (f.suppressed && !show_suppressed) continue;
      os << severity_name(f.severity) << "[" << f.code << "] " << r.module
         << ": " << f.message;
      if (f.suppressed) os << " [suppressed]";
      os << "\n";
    }
    errors += r.errors;
    warnings += r.warnings;
    infos += r.infos;
  }
  os << reports.size() << " module(s): " << errors << " error(s), " << warnings
     << " warning(s), " << infos << " info(s)\n";
  return os.str();
}

verify::Json json_report(const std::vector<ModuleReport>& reports) {
  using verify::Json;
  Json doc = Json::object();
  doc["version"] = Json{std::int64_t{1}};
  Json modules = Json::array();
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  std::size_t suppressed = 0;
  for (const ModuleReport& r : reports) {
    Json mod = Json::object();
    mod["module"] = Json{r.module};
    mod["nodes"] = Json{r.nodes};
    mod["errors"] = Json{r.errors};
    mod["warnings"] = Json{r.warnings};
    mod["infos"] = Json{r.infos};
    mod["suppressed"] = Json{r.suppressed};
    Json findings = Json::array();
    for (const Finding& f : r.findings) {
      Json jf = Json::object();
      jf["rule"] = Json{f.rule};
      jf["code"] = Json{f.code};
      jf["severity"] = Json{severity_name(f.severity)};
      jf["node"] = Json{std::int64_t{f.node}};
      jf["message"] = Json{f.message};
      jf["suppressed"] = Json{f.suppressed};
      if (!f.data.empty()) {
        Json data = Json::object();
        for (const auto& [k, v] : f.data) data[k] = Json{v};
        jf["data"] = std::move(data);
      }
      findings.push_back(std::move(jf));
    }
    mod["findings"] = std::move(findings);
    modules.push_back(std::move(mod));
    errors += r.errors;
    warnings += r.warnings;
    infos += r.infos;
    suppressed += r.suppressed;
  }
  doc["modules"] = std::move(modules);
  Json summary = Json::object();
  summary["modules"] = Json{reports.size()};
  summary["errors"] = Json{errors};
  summary["warnings"] = Json{warnings};
  summary["infos"] = Json{infos};
  summary["suppressed"] = Json{suppressed};
  doc["summary"] = std::move(summary);
  return doc;
}

bool has_errors(const std::vector<ModuleReport>& reports) {
  for (const ModuleReport& r : reports) {
    if (r.errors > 0) return true;
  }
  return false;
}

}  // namespace dsadc::analyze
