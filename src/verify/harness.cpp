#include "src/verify/harness.h"

#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace dsadc::verify {
namespace {

/// (n1, n2, fp) palette the generators draw Saramaki designs from. All are
/// feasible structures around the paper's n1=3, n2=6, fp=0.2125 instance.
struct HbfPalette {
  std::size_t n1, n2;
  double fp;
};
constexpr HbfPalette kHbfPalette[] = {
    {3, 6, 0.2125}, {2, 4, 0.2000}, {3, 5, 0.2100},
    {2, 6, 0.2200}, {4, 6, 0.2000}, {2, 5, 0.1900},
};
constexpr int kHbfPaletteSize = 6;

std::vector<double> random_symmetric_taps(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> half_len(1, 12);
  std::uniform_real_distribution<double> tap(-0.25, 0.25);
  const int h = half_len(rng);
  std::vector<double> taps(static_cast<std::size_t>(2 * h + 1), 0.0);
  taps[static_cast<std::size_t>(h)] = 1.0;
  for (int k = 0; k < h; ++k) {
    const double v = tap(rng);
    taps[static_cast<std::size_t>(k)] = v;
    taps[static_cast<std::size_t>(2 * h - k)] = v;
  }
  return taps;
}

}  // namespace

const char* stage_kind_name(StageKind k) {
  switch (k) {
    case StageKind::kCic: return "cic";
    case StageKind::kPolyphaseCic: return "polyphase_cic";
    case StageKind::kSharpenedCic: return "sharpened_cic";
    case StageKind::kHbf: return "hbf";
    case StageKind::kScaler: return "scaler";
    case StageKind::kFir: return "fir";
    case StageKind::kChain: return "chain";
  }
  return "unknown";
}

StageKind stage_kind_from_name(const std::string& name) {
  for (int i = 0; i < kNumStageKinds; ++i) {
    const auto k = static_cast<StageKind>(i);
    if (name == stage_kind_name(k)) return k;
  }
  throw std::invalid_argument("stage_kind_from_name: unknown kind " + name);
}

const design::SaramakiHbf& cached_hbf_design(std::size_t n1, std::size_t n2,
                                             double fp, int frac_bits) {
  using Key = std::tuple<std::size_t, std::size_t, long long, int>;
  static std::mutex mu;
  static std::map<Key, design::SaramakiHbf> cache;
  const Key key{n1, n2, static_cast<long long>(std::llround(fp * 1e6)),
                frac_bits};
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, design::design_saramaki_hbf(n1, n2, fp, frac_bits,
                                                        /*max_digits=*/0))
             .first;
  }
  return it->second;
}

fx::Format case_input_format(const StageCase& c) {
  switch (c.kind) {
    case StageKind::kCic:
    case StageKind::kPolyphaseCic:
    case StageKind::kSharpenedCic:
      return fx::Format{c.cic.input_bits, 0};
    case StageKind::kHbf:
      return c.hbf.in_fmt;
    case StageKind::kScaler:
      return c.scaler.in_fmt;
    case StageKind::kFir:
      return c.fir.in_fmt;
    case StageKind::kChain:
      return fx::Format{4, 0};
  }
  return fx::Format{16, 0};
}

decim::ChainConfig make_chain_config(const ChainParams& p) {
  decim::ChainConfig cfg;
  cfg.cic_stages = p.cic_stages;
  cfg.hbf = cached_hbf_design(p.hbf_n1, p.hbf_n2, p.hbf_fp, 24);
  cfg.scale = p.scale;
  cfg.equalizer_taps = p.equalizer_taps;
  cfg.equalizer_frac_bits = p.equalizer_frac_bits;
  cfg.input_format = fx::Format{4, 0};
  cfg.hbf_in_format = p.hbf_in_format;
  cfg.hbf_out_format = p.hbf_out_format;
  cfg.scaler_out_format = p.scaler_out_format;
  cfg.output_format = p.output_format;
  return cfg;
}

StageCase random_case(StageKind kind, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  StageCase c;
  c.kind = kind;
  c.seed = seed;

  std::uniform_int_distribution<int> order_d(1, 6);
  std::uniform_int_distribution<int> even_order_d(1, 2);  // *2 below
  std::uniform_int_distribution<int> decim_d(2, 4);
  std::uniform_int_distribution<int> bits_d(4, 12);

  switch (kind) {
    case StageKind::kCic: {
      // Keep the register (and the double model) well under 2^53.
      design::CicSpec s{order_d(rng), decim_d(rng), bits_d(rng)};
      while (s.register_width() > 48) s.order = std::max(1, s.order - 1);
      c.cic = s;
      c.length = 512;
      break;
    }
    case StageKind::kPolyphaseCic: {
      // The polyphase realization is specified for M = 2.
      c.cic = design::CicSpec{order_d(rng), 2, bits_d(rng)};
      c.length = 512;
      break;
    }
    case StageKind::kSharpenedCic: {
      // K*(M-1) must be even for integer tap alignment; gain M^3K must
      // leave int64 headroom above the input width.
      const int m = decim_d(rng);
      const int k = (m % 2 == 1) ? order_d(rng) / 2 + 1 : 2 * even_order_d(rng);
      const int bits = std::uniform_int_distribution<int>(4, 8)(rng);
      c.cic = design::CicSpec{k, m, bits};
      while (3 * c.cic.order * static_cast<int>(std::ceil(std::log2(m))) +
                 bits >
             44) {
        c.cic.order -= (m % 2 == 1) ? 1 : 2;
      }
      c.length = 384;
      break;
    }
    case StageKind::kHbf: {
      const auto& pal =
          kHbfPalette[std::uniform_int_distribution<int>(0, kHbfPaletteSize - 1)(
              rng)];
      c.hbf.n1 = pal.n1;
      c.hbf.n2 = pal.n2;
      c.hbf.fp = pal.fp;
      c.hbf.coeff_frac_bits =
          std::uniform_int_distribution<int>(20, 24)(rng);
      c.hbf.guard_frac_bits = std::uniform_int_distribution<int>(4, 8)(rng);
      const int width = std::uniform_int_distribution<int>(12, 24)(rng);
      const int frac =
          width - std::uniform_int_distribution<int>(2, 5)(rng);
      c.hbf.in_fmt = fx::Format{width, frac};
      // Output format: same or slightly narrower (exercises the final
      // rounding), never wider than the input carries.
      const int owidth = width - std::uniform_int_distribution<int>(0, 2)(rng);
      c.hbf.out_fmt = fx::Format{owidth, frac - (width - owidth)};
      c.length = 512;
      break;
    }
    case StageKind::kScaler: {
      std::uniform_real_distribution<double> scale_d(0.1, 4.0);
      c.scaler.scale = scale_d(rng);
      c.scaler.frac_bits = std::uniform_int_distribution<int>(10, 16)(rng);
      c.scaler.max_digits =
          static_cast<std::size_t>(std::uniform_int_distribution<int>(4, 10)(rng));
      const int width = std::uniform_int_distribution<int>(12, 24)(rng);
      const int frac = width - std::uniform_int_distribution<int>(2, 5)(rng);
      c.scaler.in_fmt = fx::Format{width, frac};
      // Keep roughly one integer bit of headroom on the output side.
      const int owidth = std::uniform_int_distribution<int>(12, 24)(rng);
      c.scaler.out_fmt =
          fx::Format{owidth, owidth - std::uniform_int_distribution<int>(2, 4)(rng)};
      c.length = 512;
      break;
    }
    case StageKind::kFir: {
      c.fir.taps = random_symmetric_taps(rng);
      c.fir.frac_bits = std::uniform_int_distribution<int>(10, 16)(rng);
      const int width = std::uniform_int_distribution<int>(12, 22)(rng);
      const int frac = width - std::uniform_int_distribution<int>(2, 4)(rng);
      c.fir.in_fmt = fx::Format{width, frac};
      const int owidth = std::uniform_int_distribution<int>(10, 18)(rng);
      c.fir.out_fmt = fx::Format{owidth, owidth - 2};
      c.length = 512;
      break;
    }
    case StageKind::kChain: {
      // Valid ChainConfig space: 2-3 decimate-by-2 stages (power-of-two
      // cascade gain, as DecimationChain requires), widths within the
      // HBF's 62-bit internal guard.
      const int n_stages = std::uniform_int_distribution<int>(2, 3)(rng);
      int bits = 4;
      int gain_log2 = 0;
      for (int i = 0; i < n_stages; ++i) {
        design::CicSpec s{std::uniform_int_distribution<int>(2, 6)(rng), 2,
                          bits};
        c.chain.cic_stages.push_back(s);
        bits = s.register_width();
        gain_log2 += s.order;
      }
      const auto& pal =
          kHbfPalette[std::uniform_int_distribution<int>(0, kHbfPaletteSize - 1)(
              rng)];
      c.chain.hbf_n1 = pal.n1;
      c.chain.hbf_n2 = pal.n2;
      c.chain.hbf_fp = pal.fp;
      // Occasionally shave a bit from the HBF input relabeling so the
      // renormalization rounding path is exercised too.
      const int shave = std::uniform_int_distribution<int>(0, 1)(rng);
      c.chain.hbf_in_format = fx::Format{bits - shave, gain_log2 - shave};
      c.chain.hbf_out_format = c.chain.hbf_in_format;
      c.chain.scaler_out_format =
          fx::Format{c.chain.hbf_in_format.width,
                     c.chain.hbf_in_format.frac + 1};
      c.chain.output_format = fx::Format{14, 13};
      c.chain.scale = 0.98 / (0.81 * 7.0 + 0.5);
      c.chain.equalizer_taps = random_symmetric_taps(rng);
      c.chain.equalizer_frac_bits =
          std::uniform_int_distribution<int>(12, 16)(rng);
      c.length = 4096;
      break;
    }
  }

  c.stim_class = random_stimulus_class(rng);
  c.stimulus = make_stimulus(c.stim_class, c.length, case_input_format(c), rng);
  return c;
}

std::string describe_case(const StageCase& c) {
  std::ostringstream os;
  os << stage_kind_name(c.kind) << " seed=" << c.seed
     << " stim=" << stimulus_name(c.stim_class) << " n=" << c.stimulus.size();
  switch (c.kind) {
    case StageKind::kCic:
    case StageKind::kPolyphaseCic:
    case StageKind::kSharpenedCic:
      os << " K=" << c.cic.order << " M=" << c.cic.decimation
         << " Bin=" << c.cic.input_bits;
      break;
    case StageKind::kHbf:
      os << " n1=" << c.hbf.n1 << " n2=" << c.hbf.n2
         << " in=" << c.hbf.in_fmt.to_string()
         << " out=" << c.hbf.out_fmt.to_string()
         << " guard=" << c.hbf.guard_frac_bits;
      break;
    case StageKind::kScaler:
      os << " S=" << c.scaler.scale << " frac=" << c.scaler.frac_bits
         << " digits=" << c.scaler.max_digits;
      break;
    case StageKind::kFir:
      os << " taps=" << c.fir.taps.size() << " frac=" << c.fir.frac_bits;
      break;
    case StageKind::kChain:
      os << " stages=" << c.chain.cic_stages.size() << " n1=" << c.chain.hbf_n1
         << " n2=" << c.chain.hbf_n2;
      break;
  }
  return os.str();
}

}  // namespace dsadc::verify
