// Self-contained repro files for differential-harness failures.
//
// A repro file is a JSON document carrying the RNG seed, the stage
// configuration, and the (usually shrunk) stimulus verbatim. It replays
// without the generators: `tools/repro_runner <file>` (or replay() here)
// rebuilds the three legs from the config alone, so a failure filed today
// still reproduces after the stimulus library evolves.
#pragma once

#include <string>

#include "src/verify/diff.h"
#include "src/verify/harness.h"
#include "src/verify/json.h"

namespace dsadc::verify {

Json case_to_json(const StageCase& c);
StageCase case_from_json(const Json& j);

/// Serialize `c` to `path` (pretty-printed, 2-space indent).
void write_repro(const StageCase& c, const std::string& path);

/// Parse a repro file back into a runnable case.
StageCase load_repro(const std::string& path);

/// Write `c` into `dir` under a canonical name
/// (`dsadc_repro_<kind>_<seed>.json`); returns the full path. `dir` may
/// be overridden globally with the DSADC_REPRO_DIR environment variable.
std::string emit_repro(const StageCase& c, const std::string& dir = ".");

/// Re-run the three-way comparison for a loaded case.
inline DiffOutcome replay(const StageCase& c) { return run_case(c); }

}  // namespace dsadc::verify
