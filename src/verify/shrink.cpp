#include "src/verify/shrink.h"

#include <algorithm>
#include <cstdlib>

namespace dsadc::verify {
namespace {

std::size_t round_up(std::size_t n, std::size_t mult) {
  if (mult <= 1) return n;
  return ((n + mult - 1) / mult) * mult;
}

}  // namespace

std::vector<std::int64_t> shrink_stimulus(std::vector<std::int64_t> stimulus,
                                          const FailurePredicate& fails,
                                          const ShrinkOptions& options) {
  const std::size_t mult =
      static_cast<std::size_t>(std::max(1, options.length_multiple));
  int budget = options.max_evaluations;
  const auto try_candidate = [&](const std::vector<std::int64_t>& cand) {
    if (budget <= 0) return false;
    --budget;
    return fails(cand);
  };

  // 1. Shortest failing prefix: repeatedly halve the tail cut.
  while (stimulus.size() > mult) {
    std::size_t cut = stimulus.size() / 2;
    bool progressed = false;
    while (cut >= mult && budget > 0) {
      const std::size_t keep =
          round_up(stimulus.size() - cut, mult);
      if (keep >= stimulus.size()) break;
      std::vector<std::int64_t> cand(stimulus.begin(),
                                     stimulus.begin() + static_cast<long>(keep));
      if (try_candidate(cand)) {
        stimulus = std::move(cand);
        progressed = true;
        break;
      }
      cut /= 2;
    }
    if (!progressed) break;
  }

  // 2. Zero segments, halving granularity (ddmin on content).
  for (std::size_t seg = std::max<std::size_t>(stimulus.size() / 2, 1);
       seg >= 1 && budget > 0; seg /= 2) {
    for (std::size_t start = 0; start < stimulus.size() && budget > 0;
         start += seg) {
      const std::size_t end = std::min(start + seg, stimulus.size());
      bool already_zero = true;
      for (std::size_t i = start; i < end; ++i) {
        already_zero = already_zero && stimulus[i] == 0;
      }
      if (already_zero) continue;
      std::vector<std::int64_t> cand = stimulus;
      std::fill(cand.begin() + static_cast<long>(start),
                cand.begin() + static_cast<long>(end), 0);
      if (try_candidate(cand)) stimulus = std::move(cand);
    }
    if (seg == 1) break;
  }

  // 3. Trim leading zeros in whole decimation blocks.
  while (stimulus.size() > mult && budget > 0) {
    bool all_zero = true;
    for (std::size_t i = 0; i < mult; ++i) {
      all_zero = all_zero && stimulus[i] == 0;
    }
    if (!all_zero) break;
    std::vector<std::int64_t> cand(stimulus.begin() + static_cast<long>(mult),
                                   stimulus.end());
    if (!try_candidate(cand)) break;
    stimulus = std::move(cand);
  }

  // 4. Shrink magnitudes: halve surviving samples toward zero.
  for (int round = 0; round < 4 && budget > 0; ++round) {
    bool progressed = false;
    for (std::size_t i = 0; i < stimulus.size() && budget > 0; ++i) {
      if (stimulus[i] == 0) continue;
      std::vector<std::int64_t> cand = stimulus;
      cand[i] /= 2;
      if (try_candidate(cand)) {
        stimulus = std::move(cand);
        progressed = true;
      }
    }
    if (!progressed) break;
  }

  return stimulus;
}

}  // namespace dsadc::verify
