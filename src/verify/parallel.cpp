#include "src/verify/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dsadc::verify {

std::size_t verify_thread_count() {
  if (const char* env = std::getenv("DSADC_VERIFY_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for_index(std::size_t n,
                        const std::function<void(std::size_t)>& body,
                        std::size_t threads) {
  if (threads == 0) threads = verify_thread_count();
  if (threads > n) threads = n;
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = n;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        // Keep the lowest-index failure so reports are deterministic-ish
        // even when several workers fail concurrently.
        if (first_error == nullptr || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
        // Drain remaining work quickly: park the counter at the end.
        next.store(n, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (auto& t : pool) t.join();

  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace dsadc::verify
