// Golden double-precision reference models for every decimation stage.
//
// Each bit-true implementation in src/decimator has a floating-point twin
// here that computes the *designed* arithmetic (decimated convolution with
// the designed coefficients, ideal scaling) without any of the datapath's
// register-width, wraparound or rounding machinery. The three-way
// differential harness (diff.h) compares:
//
//   reference (this file)  --bounded error-->  fixed point (src/decimator)
//   fixed point            --bit exact----->   RTL IR sim  (src/rtl)
//
// mirroring the paper's MATLAB-model-vs-HDL-Coder validation. Every model
// carries a deterministic worst-case error bound derived from its rounding
// points, the same per-rounding-point accounting src/core/noise_budget
// performs statistically (there: q^2/12 RMS power; here: half-LSB
// worst-case amplitude through the same signal-path gains).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/decimator/chain.h"
#include "src/decimator/fir.h"
#include "src/filterdesign/cic.h"
#include "src/filterdesign/saramaki.h"
#include "src/fixedpoint/fixed.h"

namespace dsadc::verify {

/// Uniform interface over the golden models. Inputs are raw integers in
/// the stage's declared input format (the same stream the fixed-point and
/// RTL legs consume); outputs are real values in the stage's output units
/// (raw * 2^-frac of the output format).
class ReferenceStage {
 public:
  virtual ~ReferenceStage() = default;

  virtual const std::string& name() const = 0;
  /// Input samples consumed per output sample.
  virtual int decimation() const = 0;
  /// Output format of the fixed-point twin (for converting its raw output
  /// to real units before comparing).
  virtual const fx::Format& output_format() const = 0;
  /// Deterministic worst-case |reference - fixed| per output sample, in
  /// real units. Exceeding this is a verification failure.
  virtual double error_bound() const = 0;

  virtual std::vector<double> process(std::span<const std::int64_t> raw_in) = 0;
  virtual void reset() = 0;
};

/// Hogenauer CIC: decimated convolution with the K-fold boxcar kernel,
/// unnormalized (carries gain M^K), output clamped like the register wraps
/// only when the stimulus genuinely overflows Bmax. Exact (bound ~ 0) for
/// in-range stimuli. Also the golden model for PolyphaseCicDecimator,
/// which promises the identical output stream.
std::unique_ptr<ReferenceStage> make_reference_cic(const design::CicSpec& spec);

/// Sharpened comb 3H^2 - 2H^3 as decimated convolution with the integer
/// sharpened taps (gain M^3K); golden model for a FirDecimator over
/// design::sharpened_cic_taps.
std::unique_ptr<ReferenceStage> make_reference_sharpened_cic(
    const design::CicSpec& spec);

/// Saramaki halfband: decimate-by-2 convolution with the quantized
/// composite impulse response design.taps. The bound accounts for the
/// implementation's per-block product truncation and internal rounding,
/// propagated through the tapped cascade's l1 gains.
std::unique_ptr<ReferenceStage> make_reference_hbf(
    const design::SaramakiHbf& design, fx::Format in_fmt, fx::Format out_fmt,
    int coeff_frac_bits, int guard_frac_bits);

/// CSD scaler: multiply by the quantized constant (csd.to_double()).
std::unique_ptr<ReferenceStage> make_reference_scaler(double effective_scale,
                                                      fx::Format in_fmt,
                                                      fx::Format out_fmt);

/// Generic FIR/decimator over quantized real taps (FixedTaps::to_real()),
/// matching FirDecimator's emit-on-first-push phase convention.
std::unique_ptr<ReferenceStage> make_reference_fir(
    const decim::FixedTaps& taps, int decimation, fx::Format in_fmt,
    fx::Format out_fmt,
    fx::Rounding rounding = fx::Rounding::kRoundNearest);

/// Full chain: CIC cascade -> gain renormalization -> HBF -> scaler ->
/// equalizer, composed from the models above with saturation modeled at
/// each declared format boundary; the bound composes the per-stage bounds
/// through the downstream l1 gains (the noise_budget propagation, worst
/// case instead of RMS).
std::unique_ptr<ReferenceStage> make_reference_chain(
    const decim::ChainConfig& config);

}  // namespace dsadc::verify
