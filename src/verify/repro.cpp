#include "src/verify/repro.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dsadc::verify {
namespace {

Json format_to_json(const fx::Format& f) {
  Json j = Json::object();
  j["width"] = f.width;
  j["frac"] = f.frac;
  return j;
}

fx::Format format_from_json(const Json& j) {
  return fx::Format{static_cast<int>(j.at("width").as_int()),
                    static_cast<int>(j.at("frac").as_int())};
}

Json spec_to_json(const design::CicSpec& s) {
  Json j = Json::object();
  j["order"] = s.order;
  j["decimation"] = s.decimation;
  j["input_bits"] = s.input_bits;
  return j;
}

design::CicSpec spec_from_json(const Json& j) {
  return design::CicSpec{static_cast<int>(j.at("order").as_int()),
                         static_cast<int>(j.at("decimation").as_int()),
                         static_cast<int>(j.at("input_bits").as_int())};
}

Json doubles_to_json(const std::vector<double>& v) {
  Json j = Json::array();
  for (double x : v) j.push_back(Json(x));
  return j;
}

std::vector<double> doubles_from_json(const Json& j) {
  std::vector<double> out;
  out.reserve(j.size());
  for (std::size_t i = 0; i < j.size(); ++i) out.push_back(j.at(i).as_double());
  return out;
}

}  // namespace

Json case_to_json(const StageCase& c) {
  Json j = Json::object();
  j["kind"] = stage_kind_name(c.kind);
  j["seed"] = static_cast<double>(c.seed);
  j["stimulus_class"] = stimulus_name(c.stim_class);

  Json cfg = Json::object();
  switch (c.kind) {
    case StageKind::kCic:
    case StageKind::kPolyphaseCic:
    case StageKind::kSharpenedCic:
      cfg = spec_to_json(c.cic);
      break;
    case StageKind::kHbf:
      cfg["n1"] = c.hbf.n1;
      cfg["n2"] = c.hbf.n2;
      cfg["fp"] = c.hbf.fp;
      cfg["coeff_frac_bits"] = c.hbf.coeff_frac_bits;
      cfg["guard_frac_bits"] = c.hbf.guard_frac_bits;
      cfg["in_fmt"] = format_to_json(c.hbf.in_fmt);
      cfg["out_fmt"] = format_to_json(c.hbf.out_fmt);
      break;
    case StageKind::kScaler:
      cfg["scale"] = c.scaler.scale;
      cfg["frac_bits"] = c.scaler.frac_bits;
      cfg["max_digits"] = c.scaler.max_digits;
      cfg["in_fmt"] = format_to_json(c.scaler.in_fmt);
      cfg["out_fmt"] = format_to_json(c.scaler.out_fmt);
      break;
    case StageKind::kFir:
      cfg["taps"] = doubles_to_json(c.fir.taps);
      cfg["frac_bits"] = c.fir.frac_bits;
      cfg["in_fmt"] = format_to_json(c.fir.in_fmt);
      cfg["out_fmt"] = format_to_json(c.fir.out_fmt);
      break;
    case StageKind::kChain: {
      Json stages = Json::array();
      for (const auto& s : c.chain.cic_stages) stages.push_back(spec_to_json(s));
      cfg["cic_stages"] = std::move(stages);
      cfg["hbf_n1"] = c.chain.hbf_n1;
      cfg["hbf_n2"] = c.chain.hbf_n2;
      cfg["hbf_fp"] = c.chain.hbf_fp;
      cfg["scale"] = c.chain.scale;
      cfg["equalizer_taps"] = doubles_to_json(c.chain.equalizer_taps);
      cfg["equalizer_frac_bits"] = c.chain.equalizer_frac_bits;
      cfg["hbf_in_format"] = format_to_json(c.chain.hbf_in_format);
      cfg["hbf_out_format"] = format_to_json(c.chain.hbf_out_format);
      cfg["scaler_out_format"] = format_to_json(c.chain.scaler_out_format);
      cfg["output_format"] = format_to_json(c.chain.output_format);
      break;
    }
  }
  j["config"] = std::move(cfg);

  Json stim = Json::array();
  for (std::int64_t v : c.stimulus) stim.push_back(Json(v));
  j["stimulus"] = std::move(stim);
  return j;
}

StageCase case_from_json(const Json& j) {
  StageCase c;
  c.kind = stage_kind_from_name(j.at("kind").as_string());
  c.seed = static_cast<std::uint64_t>(j.at("seed").as_double());
  c.stim_class = stimulus_from_name(j.at("stimulus_class").as_string());

  const Json& cfg = j.at("config");
  switch (c.kind) {
    case StageKind::kCic:
    case StageKind::kPolyphaseCic:
    case StageKind::kSharpenedCic:
      c.cic = spec_from_json(cfg);
      break;
    case StageKind::kHbf:
      c.hbf.n1 = static_cast<std::size_t>(cfg.at("n1").as_int());
      c.hbf.n2 = static_cast<std::size_t>(cfg.at("n2").as_int());
      c.hbf.fp = cfg.at("fp").as_double();
      c.hbf.coeff_frac_bits =
          static_cast<int>(cfg.at("coeff_frac_bits").as_int());
      c.hbf.guard_frac_bits =
          static_cast<int>(cfg.at("guard_frac_bits").as_int());
      c.hbf.in_fmt = format_from_json(cfg.at("in_fmt"));
      c.hbf.out_fmt = format_from_json(cfg.at("out_fmt"));
      break;
    case StageKind::kScaler:
      c.scaler.scale = cfg.at("scale").as_double();
      c.scaler.frac_bits = static_cast<int>(cfg.at("frac_bits").as_int());
      c.scaler.max_digits =
          static_cast<std::size_t>(cfg.at("max_digits").as_int());
      c.scaler.in_fmt = format_from_json(cfg.at("in_fmt"));
      c.scaler.out_fmt = format_from_json(cfg.at("out_fmt"));
      break;
    case StageKind::kFir:
      c.fir.taps = doubles_from_json(cfg.at("taps"));
      c.fir.frac_bits = static_cast<int>(cfg.at("frac_bits").as_int());
      c.fir.in_fmt = format_from_json(cfg.at("in_fmt"));
      c.fir.out_fmt = format_from_json(cfg.at("out_fmt"));
      break;
    case StageKind::kChain: {
      const Json& stages = cfg.at("cic_stages");
      for (std::size_t i = 0; i < stages.size(); ++i) {
        c.chain.cic_stages.push_back(spec_from_json(stages.at(i)));
      }
      c.chain.hbf_n1 = static_cast<std::size_t>(cfg.at("hbf_n1").as_int());
      c.chain.hbf_n2 = static_cast<std::size_t>(cfg.at("hbf_n2").as_int());
      c.chain.hbf_fp = cfg.at("hbf_fp").as_double();
      c.chain.scale = cfg.at("scale").as_double();
      c.chain.equalizer_taps = doubles_from_json(cfg.at("equalizer_taps"));
      c.chain.equalizer_frac_bits =
          static_cast<int>(cfg.at("equalizer_frac_bits").as_int());
      c.chain.hbf_in_format = format_from_json(cfg.at("hbf_in_format"));
      c.chain.hbf_out_format = format_from_json(cfg.at("hbf_out_format"));
      c.chain.scaler_out_format =
          format_from_json(cfg.at("scaler_out_format"));
      c.chain.output_format = format_from_json(cfg.at("output_format"));
      break;
    }
  }

  const Json& stim = j.at("stimulus");
  c.stimulus.reserve(stim.size());
  for (std::size_t i = 0; i < stim.size(); ++i) {
    c.stimulus.push_back(stim.at(i).as_int());
  }
  c.length = c.stimulus.size();
  return c;
}

void write_repro(const StageCase& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_repro: cannot open " + path);
  }
  out << case_to_json(c).dump(2) << "\n";
}

StageCase load_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_repro: cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return case_from_json(json_parse(ss.str()));
}

std::string emit_repro(const StageCase& c, const std::string& dir) {
  const char* env = std::getenv("DSADC_REPRO_DIR");
  const std::string base = env != nullptr ? env : dir;
  std::ostringstream name;
  name << base << "/dsadc_repro_" << stage_kind_name(c.kind) << "_" << c.seed
       << ".json";
  write_repro(c, name.str());
  return name.str();
}

}  // namespace dsadc::verify
