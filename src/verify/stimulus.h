// Seeded property-based stimulus library for the differential harness.
//
// Every generator is a pure function of (class, length, format, RNG
// state), so a failing (seed, config) pair replays exactly -- the repro
// files in repro.h store nothing but those. The classes cover the corners
// the CIC literature flags for bit-true divergence: full-scale rails that
// exercise register MSBs, impulses that expose alignment, PRBS and real
// modulator bitstreams for realistic spectra, and overload ramps that
// drive the signal past the MSA the scaler was designed for.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/fixedpoint/fixed.h"

namespace dsadc::verify {

enum class StimulusClass : std::uint8_t {
  kImpulse,       ///< isolated full-scale impulses (alignment, ringing)
  kStep,          ///< step to a random level (DC settling)
  kSine,          ///< full-scale coherent-ish sine (droop, SNR)
  kDcRail,        ///< constant at raw_min / raw_max (register MSB corners)
  kAlternating,   ///< +-full-scale square at Nyquist (worst toggle)
  kPrbs,          ///< pseudo-random binary sequence over {min, max}
  kModulator,     ///< real delta-sigma modulator bitstream, rescaled
  kOverloadRamp,  ///< sine with amplitude ramping past +-MSA full scale
  kUniform,       ///< uniform random samples over the format range
};

inline constexpr int kNumStimulusClasses = 9;

const char* stimulus_name(StimulusClass c);
StimulusClass stimulus_from_name(const std::string& name);

/// Draw a stimulus class uniformly.
StimulusClass random_stimulus_class(std::mt19937_64& rng);

/// Generate `n` raw samples in `fmt`'s representable range. All classes
/// consume a bounded amount of RNG state; identical (class, n, fmt, seed)
/// reproduce identical samples.
std::vector<std::int64_t> make_stimulus(StimulusClass c, std::size_t n,
                                        const fx::Format& fmt,
                                        std::mt19937_64& rng);

}  // namespace dsadc::verify
