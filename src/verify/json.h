// Minimal JSON value model, emitter and recursive-descent parser.
//
// Just enough for the self-contained repro files the differential harness
// writes (objects, arrays, numbers, strings, bools) -- no external
// dependency, round-trip-exact doubles (%.17g).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dsadc::verify {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(std::size_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;
  const Json& at(std::size_t i) const;
  void push_back(Json v);

  /// Object access; `at` throws on a missing key (repro files are
  /// machine-written, a missing field is a format error worth surfacing).
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  Json& operator[](const std::string& key);
  /// Object keys in sorted order (empty for non-objects).
  std::vector<std::string> keys() const;

  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

/// Parse a JSON document; throws std::invalid_argument with position info
/// on malformed input.
Json json_parse(const std::string& text);

}  // namespace dsadc::verify
