// Deterministic parallel fan-out for the verification harness.
//
// parallel_for_index runs a closure over [0, n) on a small worker pool,
// claiming indices through a shared atomic so the mapping from index to
// work item is fixed regardless of worker count or interleaving: callers
// derive per-case seeds from the index, which keeps every stimulus
// reproducible under any DSADC_VERIFY_THREADS setting (including 1).
//
// The pool is intentionally minimal: threads live for one call, the first
// exception thrown by any worker is rethrown on the caller once all
// workers have joined, and a worker count of 1 (or n <= 1) runs inline on
// the calling thread with zero synchronization.
#pragma once

#include <cstddef>
#include <functional>

namespace dsadc::verify {

/// Worker count for parallel_for_index: DSADC_VERIFY_THREADS if set to a
/// positive integer, otherwise std::thread::hardware_concurrency()
/// (minimum 1). Re-read on every call so tests can override per-run.
std::size_t verify_thread_count();

/// Invoke `body(i)` for every i in [0, n), distributing indices over
/// `threads` workers (0 = verify_thread_count()). Indices are claimed
/// dynamically, so call order across workers is unspecified -- bodies must
/// derive all randomness from `i`, not from shared mutable state. If any
/// body throws, remaining indices may be skipped and the first exception
/// (by claim order) is rethrown after all workers join.
void parallel_for_index(std::size_t n,
                        const std::function<void(std::size_t)>& body,
                        std::size_t threads = 0);

}  // namespace dsadc::verify
