// Three-way differential execution of one StageCase.
//
// Each case runs through all three representations of the stage:
//
//   1. the golden double-precision reference (src/verify/reference.h),
//   2. the bit-true fixed-point implementation (src/decimator),
//   3. the generated RTL netlist under the cycle-accurate IR simulator
//      (src/rtl/sim) -- the paper's VCS-testbench role.
//
// Fixed point and RTL must agree bit-for-bit (modulo the netlist's fixed
// pipeline lag and, for decimators, the polyphase parity the RTL lands
// on). Reference and fixed point must agree within the stage's
// deterministic worst-case rounding bound. Either violation makes the
// case a failure; shrink.h then minimizes the stimulus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/verify/harness.h"

namespace dsadc::verify {

struct DiffOutcome {
  bool ok = true;
  /// Which leg disagreed: "rtl-vs-fixed", "ref-vs-fixed", "exception",
  /// or "" when ok.
  std::string leg;
  /// Human-readable failure description (indices, values, bound).
  std::string detail;

  /// Worst |reference - fixed| observed, in output real units (also
  /// filled for passing runs -- the property tests assert it stays under
  /// the bound with margin statistics).
  double max_ref_error = 0.0;
  double error_bound = 0.0;
};

/// Run the full three-way comparison for a case. Never throws: config or
/// runtime exceptions surface as a failed outcome (leg = "exception").
DiffOutcome run_case(const StageCase& c);

/// True when `rtl` equals `ref` shifted by a fixed lag in [0, max_lag],
/// comparing the overlap past a settling prefix. Shared with the legacy
/// RTL equivalence tests' semantics.
bool matches_with_lag(const std::vector<std::int64_t>& rtl,
                      const std::vector<std::int64_t>& fixed, int max_lag,
                      int* found_lag = nullptr, std::size_t settle = 4,
                      std::size_t min_compared = 8);

}  // namespace dsadc::verify
