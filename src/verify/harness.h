// Case model for the cross-layer differential harness.
//
// A StageCase is a fully-specified experiment: which stage class, which
// configuration (drawn from the valid ChainConfig space), which stimulus.
// Cases are pure functions of a 64-bit seed, so `random_case(kind, seed)`
// is the entire provenance of a failure; repro files (repro.h) serialize
// the materialized case so a failure survives generator changes.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/decimator/chain.h"
#include "src/filterdesign/cic.h"
#include "src/filterdesign/saramaki.h"
#include "src/fixedpoint/fixed.h"
#include "src/verify/stimulus.h"

namespace dsadc::verify {

enum class StageKind : std::uint8_t {
  kCic,           ///< Hogenauer CicDecimator vs build_cic
  kPolyphaseCic,  ///< PolyphaseCicDecimator (M=2) vs build_cic
  kSharpenedCic,  ///< FirDecimator over sharpened taps vs build_symmetric_fir
  kHbf,           ///< SaramakiHbfDecimator vs build_saramaki_hbf
  kScaler,        ///< ScalingStage vs build_scaler
  kFir,           ///< FirDecimator (equalizer role) vs build_symmetric_fir
  kChain,         ///< DecimationChain vs build_chain
};

inline constexpr int kNumStageKinds = 7;

const char* stage_kind_name(StageKind k);
StageKind stage_kind_from_name(const std::string& name);

struct HbfParams {
  std::size_t n1 = 3;
  std::size_t n2 = 6;
  double fp = 0.2125;
  int coeff_frac_bits = 24;
  int guard_frac_bits = 6;
  fx::Format in_fmt{18, 14};
  fx::Format out_fmt{18, 14};
};

struct ScalerParams {
  double scale = 1.0825;
  int frac_bits = 12;
  std::size_t max_digits = 6;
  fx::Format in_fmt{18, 14};
  fx::Format out_fmt{18, 15};
};

struct FirParams {
  std::vector<double> taps;  ///< symmetric, odd length >= 3
  int frac_bits = 14;
  fx::Format in_fmt{18, 15};
  fx::Format out_fmt{14, 13};
};

/// Chain configuration by its design inputs (rebuilt deterministically;
/// unlike decim::ChainConfig this is directly serializable).
struct ChainParams {
  std::vector<design::CicSpec> cic_stages;
  std::size_t hbf_n1 = 3;
  std::size_t hbf_n2 = 6;
  double hbf_fp = 0.2125;
  double scale = 0.16;
  std::vector<double> equalizer_taps;
  int equalizer_frac_bits = 14;
  fx::Format hbf_in_format{18, 14};
  fx::Format hbf_out_format{18, 14};
  fx::Format scaler_out_format{18, 15};
  fx::Format output_format{14, 13};
};

struct StageCase {
  StageKind kind = StageKind::kCic;
  std::uint64_t seed = 0;
  StimulusClass stim_class = StimulusClass::kUniform;
  std::size_t length = 256;

  design::CicSpec cic{};  ///< kCic / kPolyphaseCic / kSharpenedCic
  HbfParams hbf{};        ///< kHbf
  ScalerParams scaler{};  ///< kScaler
  FirParams fir{};        ///< kFir
  ChainParams chain{};    ///< kChain

  /// Materialized stimulus in the stage's input format. Always populated
  /// by random_case; repro files carry it verbatim so a reproducer is
  /// independent of the stimulus generators.
  std::vector<std::int64_t> stimulus;
};

/// Input format of the stage the case drives.
fx::Format case_input_format(const StageCase& c);

/// Draw a complete random case (config + stimulus) for a stage class.
/// Identical (kind, seed) yield identical cases across runs and builds.
StageCase random_case(StageKind kind, std::uint64_t seed);

/// Saramaki designs are the one expensive config ingredient; the harness
/// draws from a fixed palette of precomputed (n1, n2, fp) designs. Designs
/// are cached process-wide, keyed by (n1, n2, fp, frac_bits).
const design::SaramakiHbf& cached_hbf_design(std::size_t n1, std::size_t n2,
                                             double fp, int frac_bits);

/// Expand ChainParams into the runnable decim::ChainConfig.
decim::ChainConfig make_chain_config(const ChainParams& p);

/// One-line human-readable description (for failure messages).
std::string describe_case(const StageCase& c);

}  // namespace dsadc::verify
