#include "src/verify/stimulus.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"

namespace dsadc::verify {
namespace {

std::int64_t clamp_raw(std::int64_t v, const fx::Format& fmt) {
  return std::clamp(v, fmt.raw_min(), fmt.raw_max());
}

/// 4-bit quantizer codes from the paper's 5th-order CIFF modulator, driven
/// by a mid-amplitude sine. The modulator is deterministic, so one run per
/// (length, phase-seed) is cheap and exactly replayable.
std::vector<std::int32_t> modulator_codes(std::size_t n, double rel_freq,
                                          double amplitude) {
  // The NTF synthesis and CIFF realization are deterministic and shared
  // by every modulator stimulus; design them once.
  static const mod::CiffCoeffs coeffs =
      mod::realize_ciff(mod::synthesize_ntf(5, 16.0, 3.0, true));
  mod::CiffModulator m(coeffs, 4);
  const auto u =
      mod::coherent_sine(n, rel_freq * 640e6, 640e6, amplitude, nullptr);
  return m.run(u).codes;
}

}  // namespace

const char* stimulus_name(StimulusClass c) {
  switch (c) {
    case StimulusClass::kImpulse: return "impulse";
    case StimulusClass::kStep: return "step";
    case StimulusClass::kSine: return "sine";
    case StimulusClass::kDcRail: return "dc_rail";
    case StimulusClass::kAlternating: return "alternating";
    case StimulusClass::kPrbs: return "prbs";
    case StimulusClass::kModulator: return "modulator";
    case StimulusClass::kOverloadRamp: return "overload_ramp";
    case StimulusClass::kUniform: return "uniform";
  }
  return "unknown";
}

StimulusClass stimulus_from_name(const std::string& name) {
  for (int i = 0; i < kNumStimulusClasses; ++i) {
    const auto c = static_cast<StimulusClass>(i);
    if (name == stimulus_name(c)) return c;
  }
  throw std::invalid_argument("stimulus_from_name: unknown class " + name);
}

StimulusClass random_stimulus_class(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> dist(0, kNumStimulusClasses - 1);
  return static_cast<StimulusClass>(dist(rng));
}

std::vector<std::int64_t> make_stimulus(StimulusClass c, std::size_t n,
                                        const fx::Format& fmt,
                                        std::mt19937_64& rng) {
  const std::int64_t lo = fmt.raw_min();
  const std::int64_t hi = fmt.raw_max();
  std::vector<std::int64_t> out(n, 0);
  if (n == 0) return out;
  switch (c) {
    case StimulusClass::kImpulse: {
      // A few isolated impulses of random sign/position, first one early
      // so short (shrunk) stimuli still carry energy.
      std::uniform_int_distribution<std::size_t> posd(0, std::max<std::size_t>(n, 1) - 1);
      std::bernoulli_distribution sign(0.5);
      out[posd(rng) % std::max<std::size_t>(n / 4, 1)] = sign(rng) ? hi : lo;
      for (int k = 0; k < 3 && n > 4; ++k) {
        out[posd(rng)] = sign(rng) ? hi : lo;
      }
      break;
    }
    case StimulusClass::kStep: {
      std::uniform_int_distribution<std::int64_t> level(lo, hi);
      std::uniform_int_distribution<std::size_t> posd(0, n / 2);
      const std::int64_t v = level(rng);
      const std::size_t start = posd(rng);
      for (std::size_t i = start; i < n; ++i) out[i] = v;
      break;
    }
    case StimulusClass::kSine: {
      std::uniform_real_distribution<double> fd(0.001, 0.45);
      std::uniform_real_distribution<double> ad(0.5, 1.0);
      std::uniform_real_distribution<double> ph(0.0, 6.283185307179586);
      const double f = fd(rng), a = ad(rng), p = ph(rng);
      for (std::size_t i = 0; i < n; ++i) {
        const double v = a * std::sin(6.283185307179586 * f *
                                          static_cast<double>(i) + p);
        out[i] = clamp_raw(
            static_cast<std::int64_t>(std::llround(v * static_cast<double>(hi))),
            fmt);
      }
      break;
    }
    case StimulusClass::kDcRail: {
      std::bernoulli_distribution sign(0.5);
      const std::int64_t v = sign(rng) ? hi : lo;
      std::fill(out.begin(), out.end(), v);
      break;
    }
    case StimulusClass::kAlternating: {
      std::uniform_int_distribution<int> period(1, 4);
      const int p = period(rng);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = ((i / static_cast<std::size_t>(p)) % 2 == 0) ? hi : lo;
      }
      break;
    }
    case StimulusClass::kPrbs: {
      // Galois LFSR (x^31 + x^28 + 1), seeded from the RNG; maps bit ->
      // {lo, hi} like a one-bit modulator stream.
      std::uint32_t state = static_cast<std::uint32_t>(rng() | 1u);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t bit = state & 1u;
        state >>= 1;
        if (bit != 0u) state ^= 0x48000000u;
        out[i] = bit != 0u ? hi : lo;
      }
      break;
    }
    case StimulusClass::kModulator: {
      std::uniform_real_distribution<double> fd(0.002, 0.02);
      std::uniform_real_distribution<double> ad(0.3, 0.75);
      const auto codes = modulator_codes(n, fd(rng), ad(rng));
      // Rescale the 4-bit codes (|c| <= 7) into the target format range.
      const int shift = std::max(0, fmt.width - 4 - 1);
      for (std::size_t i = 0; i < n && i < codes.size(); ++i) {
        out[i] = clamp_raw(static_cast<std::int64_t>(codes[i]) << shift, fmt);
      }
      break;
    }
    case StimulusClass::kOverloadRamp: {
      // Amplitude ramps from 0 to 1.5x full scale: the tail saturates at
      // the rails, the adversarial +-MSA overload the scaler must survive.
      std::uniform_real_distribution<double> fd(0.001, 0.2);
      std::uniform_real_distribution<double> ph(0.0, 6.283185307179586);
      const double f = fd(rng), p = ph(rng);
      for (std::size_t i = 0; i < n; ++i) {
        const double a = 1.5 * static_cast<double>(i) /
                         std::max<double>(1.0, static_cast<double>(n - 1));
        const double v = a * std::sin(6.283185307179586 * f *
                                          static_cast<double>(i) + p);
        out[i] = clamp_raw(
            static_cast<std::int64_t>(std::llround(v * static_cast<double>(hi))),
            fmt);
      }
      break;
    }
    case StimulusClass::kUniform: {
      std::uniform_int_distribution<std::int64_t> dist(lo, hi);
      for (auto& v : out) v = dist(rng);
      break;
    }
  }
  return out;
}

}  // namespace dsadc::verify
