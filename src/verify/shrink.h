// Stimulus shrinking: reduce a failing stimulus to a minimal reproducer.
//
// Classic delta-debugging adapted to sample streams: (1) cut the tail to
// the shortest failing prefix, (2) zero out ever-smaller segments, (3)
// trim leading zeros in whole-decimation blocks (preserving polyphase
// alignment), (4) shrink surviving sample magnitudes toward zero. Every
// candidate is re-validated through the caller's predicate, so the result
// is guaranteed to still fail; nothing about the failure mode is assumed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dsadc::verify {

/// Returns true when the candidate stimulus still triggers the failure.
using FailurePredicate =
    std::function<bool(const std::vector<std::int64_t>&)>;

struct ShrinkOptions {
  /// Keep the stimulus length a multiple of this (a stage's decimation
  /// factor), so truncation never changes the polyphase phase of later
  /// samples. 1 = no constraint.
  int length_multiple = 1;
  /// Upper bound on predicate evaluations (each one is a full three-way
  /// differential run).
  int max_evaluations = 400;
};

/// Shrink `stimulus` (which must satisfy `fails`) to a smaller stimulus
/// that still satisfies it. Returns the smallest found.
std::vector<std::int64_t> shrink_stimulus(std::vector<std::int64_t> stimulus,
                                          const FailurePredicate& fails,
                                          const ShrinkOptions& options = {});

}  // namespace dsadc::verify
