#include "src/verify/reference.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/filterdesign/sharpened_cic.h"

namespace dsadc::verify {
namespace {

double l1_norm(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += std::abs(x);
  return s;
}

/// Emit-phase convention of a decimated convolution.
enum class Phase {
  kEmitFirst,  ///< output on pushes 0, M, 2M (FirDecimator, SaramakiHbf)
  kEmitLast,   ///< output on pushes M-1, 2M-1 (CicDecimator)
};

/// Streaming decimated convolution y[m] = sum_k taps[k] * x[...-k] in
/// double precision, with optional clamping to the output format's real
/// range (saturating stages). The workhorse behind every golden model.
class ConvolutionReference : public ReferenceStage {
 public:
  ConvolutionReference(std::string name, std::vector<double> taps,
                       int decimation, Phase phase, double in_scale,
                       fx::Format out_fmt, bool clamp, double error_bound)
      : name_(std::move(name)),
        taps_(std::move(taps)),
        decimation_(decimation),
        phase_mode_(phase),
        in_scale_(in_scale),
        out_fmt_(out_fmt),
        clamp_(clamp),
        error_bound_(error_bound),
        hist_(taps_.size(), 0.0) {
    if (taps_.empty()) {
      throw std::invalid_argument("ConvolutionReference: empty taps");
    }
    if (decimation_ < 1) {
      throw std::invalid_argument("ConvolutionReference: decimation >= 1");
    }
  }

  const std::string& name() const override { return name_; }
  int decimation() const override { return decimation_; }
  const fx::Format& output_format() const override { return out_fmt_; }
  double error_bound() const override { return error_bound_; }

  std::vector<double> process(std::span<const std::int64_t> raw_in) override {
    std::vector<double> out;
    out.reserve(raw_in.size() / static_cast<std::size_t>(decimation_) + 1);
    for (std::int64_t raw : raw_in) {
      hist_[pos_] = static_cast<double>(raw) * in_scale_;
      const std::size_t newest = pos_;
      pos_ = (pos_ + 1) % hist_.size();
      const bool emit = phase_mode_ == Phase::kEmitFirst
                            ? phase_ == 0
                            : phase_ == decimation_ - 1;
      phase_ = (phase_ + 1) % decimation_;
      if (!emit) continue;
      double acc = 0.0;
      for (std::size_t k = 0; k < taps_.size(); ++k) {
        const std::size_t idx = (newest + hist_.size() - k) % hist_.size();
        acc += taps_[k] * hist_[idx];
      }
      if (clamp_) {
        const double lo = static_cast<double>(out_fmt_.raw_min()) * out_fmt_.lsb();
        const double hi = static_cast<double>(out_fmt_.raw_max()) * out_fmt_.lsb();
        acc = std::clamp(acc, lo, hi);
      }
      out.push_back(acc);
    }
    return out;
  }

  void reset() override {
    std::fill(hist_.begin(), hist_.end(), 0.0);
    pos_ = 0;
    phase_ = 0;
  }

 private:
  std::string name_;
  std::vector<double> taps_;
  int decimation_;
  Phase phase_mode_;
  double in_scale_;  ///< raw -> real units of the model's input
  fx::Format out_fmt_;
  bool clamp_;
  double error_bound_;
  std::vector<double> hist_;
  std::size_t pos_ = 0;
  int phase_ = 0;
};

/// Memoryless gain (the scaler).
class GainReference : public ReferenceStage {
 public:
  GainReference(std::string name, double gain, fx::Format in_fmt,
                fx::Format out_fmt, double error_bound)
      : name_(std::move(name)),
        gain_(gain),
        in_fmt_(in_fmt),
        out_fmt_(out_fmt),
        error_bound_(error_bound) {}

  const std::string& name() const override { return name_; }
  int decimation() const override { return 1; }
  const fx::Format& output_format() const override { return out_fmt_; }
  double error_bound() const override { return error_bound_; }

  std::vector<double> process(std::span<const std::int64_t> raw_in) override {
    const double lo = static_cast<double>(out_fmt_.raw_min()) * out_fmt_.lsb();
    const double hi = static_cast<double>(out_fmt_.raw_max()) * out_fmt_.lsb();
    std::vector<double> out;
    out.reserve(raw_in.size());
    for (std::int64_t raw : raw_in) {
      const double x = static_cast<double>(raw) * in_fmt_.lsb();
      out.push_back(std::clamp(x * gain_, lo, hi));
    }
    return out;
  }

  void reset() override {}

 private:
  std::string name_;
  double gain_;
  fx::Format in_fmt_, out_fmt_;
  double error_bound_;
};

/// Worst-case |reference - fixed| for the Saramaki HBF implementation:
/// per G2 block, n2 product truncations (<= 1 product LSB each) plus one
/// internal round-to-nearest (<= 0.5 internal LSB), propagated through the
/// remaining cascade with the blocks' l1 gain, then weighted by the outer
/// f1 taps; the outer stage adds n1+1 more product truncations and the
/// final output rounding. Same propagation the noise budget applies to the
/// RMS powers, taken at worst-case amplitude.
double hbf_error_bound(const design::SaramakiHbf& d, const fx::Format& in_fmt,
                       const fx::Format& out_fmt, int guard_frac_bits) {
  const int internal_frac = in_fmt.frac + guard_frac_bits;
  const int prod_frac = internal_frac + 2;  // prod_fmt_ in hbf.cpp
  const double lsb_prod = std::ldexp(1.0, -prod_frac);
  const double lsb_int = std::ldexp(1.0, -internal_frac);
  const double e_block =
      static_cast<double>(d.n2) * lsb_prod + 0.5 * lsb_int;
  const double gamma = std::max(1.0, 2.0 * l1_norm(d.f2));
  const std::size_t n_blocks = 2 * d.n1 - 1;
  double cascade = 0.0;
  double pow_g = 1.0;
  for (std::size_t k = 0; k < n_blocks; ++k) {
    cascade += pow_g;
    pow_g *= gamma;
  }
  const double branch_weight = std::max(1.0, l1_norm(d.f1));
  return e_block * cascade * branch_weight +
         static_cast<double>(d.n1 + 1) * lsb_prod + 0.5 * out_fmt.lsb() + 1e-9;
}

/// Full-chain golden model: composes the per-stage references with the
/// same renormalization/saturation points as DecimationChain::process.
class ChainReference : public ReferenceStage {
 public:
  explicit ChainReference(const decim::ChainConfig& cfg)
      : name_("reference_chain"), cfg_(cfg) {
    int gain_log2 = 0;
    for (const auto& s : cfg.cic_stages) {
      cic_.push_back(make_reference_cic(s));
      gain_log2 +=
          s.order * static_cast<int>(std::lround(std::log2(s.decimation)));
      total_decim_ *= static_cast<std::size_t>(s.decimation);
    }
    total_decim_ *= 2;
    gain_scale_ = std::ldexp(1.0, -gain_log2);
    hbf_ = make_reference_hbf(cfg.hbf, cfg.hbf_in_format, cfg.hbf_out_format,
                              cfg.hbf_coeff_frac_bits, /*guard_frac_bits=*/6);
    // DecimationChain builds its ScalingStage with frac_bits 14, digits 8.
    decim::ScalingStage scaler(cfg.scale, cfg.hbf_out_format,
                               cfg.scaler_out_format, 14, 8);
    scaler_csd_scale_ = scaler.effective_scale();
    eq_taps_quantized_ =
        decim::FixedTaps::from_real(cfg.equalizer_taps, cfg.equalizer_frac_bits)
            .to_real();
    eq_ = std::make_unique<ConvolutionReference>(
        "reference_equalizer", eq_taps_quantized_, 1, Phase::kEmitFirst,
        /*in_scale=*/cfg.scaler_out_format.lsb(), cfg.output_format,
        /*clamp=*/true, 0.0);

    // Compose the worst-case bound through the downstream l1 gains. The
    // reference rounds to the same grid as the fixed-point renormalizer
    // at the HBF input and scaler output, but with away-from-zero ties
    // (llround) against the datapath's half-up ties, so those two points
    // contribute a full LSB, not half.
    double b = 1.0 * cfg.hbf_in_format.lsb();  // CIC gain renormalization
    b = b * l1_norm(cfg.hbf.taps) +
        hbf_error_bound(cfg.hbf, cfg.hbf_in_format, cfg.hbf_out_format, 6);
    b = b * scaler_csd_scale_ + 1.0 * cfg.scaler_out_format.lsb();
    b = b * l1_norm(eq_taps_quantized_) + 0.5 * cfg.output_format.lsb();
    error_bound_ = b + 1e-9;
  }

  const std::string& name() const override { return name_; }
  int decimation() const override { return static_cast<int>(total_decim_); }
  const fx::Format& output_format() const override {
    return cfg_.output_format;
  }
  double error_bound() const override { return error_bound_; }

  std::vector<double> process(std::span<const std::int64_t> raw_in) override {
    // CIC cascade in raw code units (exact integers in double).
    std::vector<std::int64_t> cur(raw_in.begin(), raw_in.end());
    std::vector<double> real;
    for (auto& stage : cic_) {
      real = stage->process(cur);
      cur.resize(real.size());
      for (std::size_t i = 0; i < real.size(); ++i) {
        cur[i] = static_cast<std::int64_t>(std::llround(real[i]));
      }
    }
    // Renormalize the CIC gain into HBF input real units, saturating.
    const fx::Format& hin = cfg_.hbf_in_format;
    const double lo = static_cast<double>(hin.raw_min()) * hin.lsb();
    const double hi = static_cast<double>(hin.raw_max()) * hin.lsb();
    std::vector<std::int64_t> hraw(cur.size());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const double v =
          std::clamp(static_cast<double>(cur[i]) * gain_scale_, lo, hi);
      // Reference stages consume raw units; carry the real value scaled
      // back into the HBF input format (rounding here is *not* applied --
      // the bound covers the half-LSB the fixed-point renormalizer takes).
      hraw[i] = static_cast<std::int64_t>(std::llround(v / hin.lsb()));
    }
    const std::vector<double> hout = hbf_->process(hraw);
    // Scaler + equalizer operate on real values directly.
    const fx::Format& sfmt = cfg_.scaler_out_format;
    const double slo = static_cast<double>(sfmt.raw_min()) * sfmt.lsb();
    const double shi = static_cast<double>(sfmt.raw_max()) * sfmt.lsb();
    std::vector<std::int64_t> sraw(hout.size());
    for (std::size_t i = 0; i < hout.size(); ++i) {
      const double v = std::clamp(hout[i] * scaler_csd_scale_, slo, shi);
      sraw[i] = static_cast<std::int64_t>(std::llround(v / sfmt.lsb()));
    }
    // The equalizer reference consumes scaler_out raw units.
    auto* eq = static_cast<ConvolutionReference*>(eq_.get());
    return eq->process(sraw);
  }

  void reset() override {
    for (auto& s : cic_) s->reset();
    hbf_->reset();
    eq_->reset();
  }

 private:
  std::string name_;
  decim::ChainConfig cfg_;
  std::vector<std::unique_ptr<ReferenceStage>> cic_;
  std::unique_ptr<ReferenceStage> hbf_;
  std::unique_ptr<ReferenceStage> eq_;
  std::vector<double> eq_taps_quantized_;
  double gain_scale_ = 1.0;
  double scaler_csd_scale_ = 1.0;
  std::size_t total_decim_ = 1;
  double error_bound_ = 0.0;
};

}  // namespace

std::unique_ptr<ReferenceStage> make_reference_cic(
    const design::CicSpec& spec) {
  // K-fold convolution of the length-M boxcar, in exact integer doubles.
  std::vector<double> taps{1.0};
  for (int k = 0; k < spec.order; ++k) {
    std::vector<double> next(taps.size() + static_cast<std::size_t>(spec.decimation) - 1, 0.0);
    for (std::size_t i = 0; i < taps.size(); ++i) {
      for (int j = 0; j < spec.decimation; ++j) {
        next[i + static_cast<std::size_t>(j)] += taps[i];
      }
    }
    taps = std::move(next);
  }
  const fx::Format out_fmt{spec.register_width(), 0};
  // Hogenauer arithmetic is exact for in-format stimuli; the slack only
  // absorbs double rounding (none expected below 2^53).
  return std::make_unique<ConvolutionReference>(
      "reference_cic", std::move(taps), spec.decimation, Phase::kEmitLast,
      /*in_scale=*/1.0, out_fmt, /*clamp=*/false, /*error_bound=*/1e-6);
}

std::unique_ptr<ReferenceStage> make_reference_sharpened_cic(
    const design::CicSpec& spec) {
  const auto itaps = design::sharpened_cic_taps(spec.order, spec.decimation);
  std::vector<double> taps(itaps.begin(), itaps.end());
  // The bit-true twin is a FirDecimator over the same integer taps with
  // frac_bits 0 and a wide output register: exact integer arithmetic.
  double gain = 0.0;
  for (double t : taps) gain += std::abs(t);
  const int width = std::min(
      62, spec.input_bits + static_cast<int>(std::ceil(std::log2(gain))) + 1);
  const fx::Format out_fmt{width, 0};
  return std::make_unique<ConvolutionReference>(
      "reference_sharpened_cic", std::move(taps), spec.decimation,
      Phase::kEmitFirst, /*in_scale=*/1.0, out_fmt, /*clamp=*/false,
      /*error_bound=*/1e-6);
}

std::unique_ptr<ReferenceStage> make_reference_hbf(
    const design::SaramakiHbf& design, fx::Format in_fmt, fx::Format out_fmt,
    int coeff_frac_bits, int guard_frac_bits) {
  (void)coeff_frac_bits;  // design.taps already carry the quantized values
  return std::make_unique<ConvolutionReference>(
      "reference_hbf", design.taps, 2, Phase::kEmitFirst,
      /*in_scale=*/in_fmt.lsb(), out_fmt, /*clamp=*/true,
      hbf_error_bound(design, in_fmt, out_fmt, guard_frac_bits));
}

std::unique_ptr<ReferenceStage> make_reference_scaler(double effective_scale,
                                                      fx::Format in_fmt,
                                                      fx::Format out_fmt) {
  return std::make_unique<GainReference>(
      "reference_scaler", effective_scale, in_fmt, out_fmt,
      0.5 * out_fmt.lsb() + 1e-9);
}

std::unique_ptr<ReferenceStage> make_reference_fir(
    const decim::FixedTaps& taps, int decimation, fx::Format in_fmt,
    fx::Format out_fmt, fx::Rounding rounding) {
  const double round_lsbs =
      rounding == fx::Rounding::kRoundNearest ? 0.5 : 1.0;
  return std::make_unique<ConvolutionReference>(
      "reference_fir", taps.to_real(), decimation, Phase::kEmitFirst,
      /*in_scale=*/in_fmt.lsb(), out_fmt, /*clamp=*/true,
      round_lsbs * out_fmt.lsb() + 1e-9);
}

std::unique_ptr<ReferenceStage> make_reference_chain(
    const decim::ChainConfig& config) {
  return std::make_unique<ChainReference>(config);
}

}  // namespace dsadc::verify
