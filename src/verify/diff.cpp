#include "src/verify/diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/decimator/cic.h"
#include "src/decimator/fir.h"
#include "src/decimator/hbf.h"
#include "src/decimator/polyphase_cic.h"
#include "src/decimator/scaler.h"
#include "src/filterdesign/sharpened_cic.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rtl/builders.h"
#include "src/rtl/compiled_sim.h"
#include "src/verify/reference.h"

namespace dsadc::verify {
namespace {

// The compiled engine is bit-exact against the interpreted reference
// (tests/test_compiled_sim.cpp, lint_rtl --sim-crosscheck) and several
// times faster, which dominates the harness's wall-clock.
std::vector<std::int64_t> simulate(const rtl::BuiltStage& stage,
                                   std::span<const std::int64_t> in) {
  rtl::CompiledSimulator sim(stage.module);
  const auto res = sim.run({{stage.in, in}});
  return res.outputs.begin()->second;
}

/// Reference-vs-fixed bounded comparison; fills outcome on failure.
bool check_bounded(const std::vector<double>& ref,
                   const std::vector<std::int64_t>& fixed,
                   const fx::Format& out_fmt, double bound,
                   DiffOutcome& outcome) {
  const std::size_t n = std::min(ref.size(), fixed.size());
  if (ref.size() > fixed.size() + 1 || fixed.size() > ref.size() + 1) {
    outcome.ok = false;
    outcome.leg = "ref-vs-fixed";
    std::ostringstream os;
    os << "output length mismatch: reference " << ref.size() << " vs fixed "
       << fixed.size();
    outcome.detail = os.str();
    return false;
  }
  outcome.error_bound = bound;
  for (std::size_t i = 0; i < n; ++i) {
    const double got = fx::to_double(fixed[i], out_fmt);
    const double err = std::abs(ref[i] - got);
    outcome.max_ref_error = std::max(outcome.max_ref_error, err);
    if (err > bound) {
      outcome.ok = false;
      outcome.leg = "ref-vs-fixed";
      std::ostringstream os;
      os << "sample " << i << ": reference " << ref[i] << " vs fixed " << got
         << " (err " << err << " > bound " << bound << ")";
      outcome.detail = os.str();
      return false;
    }
  }
  return true;
}

/// RTL-vs-fixed bit comparison with lag scan; fills outcome on failure.
/// Too-short output streams are vacuously ok (nothing observable).
bool check_bit_exact(const std::vector<std::int64_t>& rtl,
                     const std::vector<std::int64_t>& fixed, int max_lag,
                     std::size_t settle, DiffOutcome& outcome) {
  // Vacuous when the overlap past the settling prefix cannot reach the
  // matcher's minimum comparison count (e.g. on heavily shrunk stimuli).
  constexpr std::size_t kMinCompared = 8;
  const std::size_t overlap = std::min(rtl.size(), fixed.size());
  if (overlap <= settle + kMinCompared + static_cast<std::size_t>(max_lag)) {
    return true;
  }
  if (matches_with_lag(rtl, fixed, max_lag, nullptr, settle)) return true;
  outcome.ok = false;
  outcome.leg = "rtl-vs-fixed";
  std::ostringstream os;
  os << "no bit-exact alignment within lag " << max_lag << " (settle "
     << settle << "); fixed[0.." << std::min<std::size_t>(4, fixed.size())
     << ")=";
  for (std::size_t i = settle; i < std::min(fixed.size(), settle + 4); ++i) {
    os << fixed[i] << " ";
  }
  os << "rtl=";
  for (std::size_t i = settle; i < std::min(rtl.size(), settle + 4); ++i) {
    os << rtl[i] << " ";
  }
  outcome.detail = os.str();
  return false;
}

DiffOutcome run_cic_family(const StageCase& c) {
  DiffOutcome out;
  const auto ref_model = make_reference_cic(c.cic);
  const auto ref = ref_model->process(c.stimulus);

  decim::CicDecimator hogenauer(c.cic);
  const auto fixed = hogenauer.process(c.stimulus);

  if (c.kind == StageKind::kPolyphaseCic) {
    decim::PolyphaseCicDecimator poly(c.cic);
    const auto pfixed = poly.process(c.stimulus);
    if (pfixed != fixed) {
      out.ok = false;
      out.leg = "rtl-vs-fixed";
      out.detail = "polyphase CIC diverges from the Hogenauer stream";
      return out;
    }
  }

  const auto rtl_out = simulate(rtl::build_cic(c.cic), c.stimulus);
  if (!check_bit_exact(rtl_out, fixed, /*max_lag=*/4, /*settle=*/4, out)) {
    return out;
  }
  check_bounded(ref, fixed, ref_model->output_format(),
                ref_model->error_bound(), out);
  return out;
}

DiffOutcome run_sharpened_cic(const StageCase& c) {
  DiffOutcome out;
  const auto ref_model = make_reference_sharpened_cic(c.cic);
  const fx::Format in_fmt{c.cic.input_bits, 0};
  const fx::Format out_fmt = ref_model->output_format();
  const auto itaps =
      design::sharpened_cic_taps(c.cic.order, c.cic.decimation);
  decim::FixedTaps taps{itaps, /*frac_bits=*/0};

  decim::FirDecimator fixed_impl(taps, c.cic.decimation, in_fmt, out_fmt);
  const auto fixed = fixed_impl.process(c.stimulus);

  // The RTL leg runs the symmetric-FIR netlist at the full rate; the
  // harness decimates after the bit comparison (a decimate-by-M of a
  // bit-exact stream is bit-exact).
  decim::FirDecimator full_rate(taps, 1, in_fmt, out_fmt);
  const auto fixed_full = full_rate.process(c.stimulus);
  const std::vector<double> real_taps(itaps.begin(), itaps.end());
  const auto rtl_out = simulate(
      rtl::build_symmetric_fir(real_taps, 0, in_fmt, out_fmt, 1), c.stimulus);
  if (!check_bit_exact(rtl_out, fixed_full, /*max_lag=*/2, /*settle=*/4, out)) {
    return out;
  }

  const auto ref = ref_model->process(c.stimulus);
  check_bounded(ref, fixed, out_fmt, ref_model->error_bound(), out);
  return out;
}

DiffOutcome run_hbf(const StageCase& c) {
  DiffOutcome out;
  const design::SaramakiHbf& d =
      cached_hbf_design(c.hbf.n1, c.hbf.n2, c.hbf.fp, c.hbf.coeff_frac_bits);
  const auto ref_model =
      make_reference_hbf(d, c.hbf.in_fmt, c.hbf.out_fmt, c.hbf.coeff_frac_bits,
                         c.hbf.guard_frac_bits);

  decim::SaramakiHbfDecimator impl(d, c.hbf.in_fmt, c.hbf.out_fmt,
                                   c.hbf.coeff_frac_bits,
                                   c.hbf.guard_frac_bits);
  const auto fixed = impl.process(c.stimulus);

  const auto rtl_out = simulate(
      rtl::build_saramaki_hbf(d, c.hbf.in_fmt, c.hbf.out_fmt,
                              c.hbf.coeff_frac_bits, c.hbf.guard_frac_bits, 1),
      c.stimulus);
  // The RTL decimator may land on the other polyphase parity: retry the
  // behavioral model on the one-sample-delayed input before failing.
  if (fixed.size() > 6 && !matches_with_lag(rtl_out, fixed, 60)) {
    std::vector<std::int64_t> shifted(c.stimulus.size(), 0);
    for (std::size_t i = 1; i < shifted.size(); ++i) {
      shifted[i] = c.stimulus[i - 1];
    }
    decim::SaramakiHbfDecimator impl2(d, c.hbf.in_fmt, c.hbf.out_fmt,
                                      c.hbf.coeff_frac_bits,
                                      c.hbf.guard_frac_bits);
    const auto fixed2 = impl2.process(shifted);
    if (!check_bit_exact(rtl_out, fixed2, /*max_lag=*/60, /*settle=*/4, out)) {
      return out;
    }
  }

  const auto ref = ref_model->process(c.stimulus);
  check_bounded(ref, fixed, c.hbf.out_fmt, ref_model->error_bound(), out);
  return out;
}

DiffOutcome run_scaler(const StageCase& c) {
  DiffOutcome out;
  decim::ScalingStage impl(c.scaler.scale, c.scaler.in_fmt, c.scaler.out_fmt,
                           c.scaler.frac_bits, c.scaler.max_digits);
  const auto ref_model = make_reference_scaler(
      impl.effective_scale(), c.scaler.in_fmt, c.scaler.out_fmt);
  const auto fixed = impl.process(c.stimulus);

  const auto rtl_out = simulate(
      rtl::build_scaler(impl.csd(), c.scaler.frac_bits, c.scaler.in_fmt,
                        c.scaler.out_fmt, 1),
      c.stimulus);
  if (!check_bit_exact(rtl_out, fixed, /*max_lag=*/1, /*settle=*/0, out)) {
    return out;
  }

  const auto ref = ref_model->process(c.stimulus);
  check_bounded(ref, fixed, c.scaler.out_fmt, ref_model->error_bound(), out);
  return out;
}

DiffOutcome run_fir(const StageCase& c) {
  DiffOutcome out;
  const auto taps = decim::FixedTaps::from_real(c.fir.taps, c.fir.frac_bits);
  const auto ref_model =
      make_reference_fir(taps, 1, c.fir.in_fmt, c.fir.out_fmt);
  decim::FirDecimator impl(taps, 1, c.fir.in_fmt, c.fir.out_fmt);
  const auto fixed = impl.process(c.stimulus);

  const auto rtl_out = simulate(
      rtl::build_symmetric_fir(c.fir.taps, c.fir.frac_bits, c.fir.in_fmt,
                               c.fir.out_fmt, 1),
      c.stimulus);
  if (!check_bit_exact(rtl_out, fixed, /*max_lag=*/2, /*settle=*/4, out)) {
    return out;
  }

  const auto ref = ref_model->process(c.stimulus);
  check_bounded(ref, fixed, c.fir.out_fmt, ref_model->error_bound(), out);
  return out;
}

DiffOutcome run_chain(const StageCase& c) {
  DiffOutcome out;
  const decim::ChainConfig cfg = make_chain_config(c.chain);
  const auto ref_model = make_reference_chain(cfg);

  std::vector<std::int32_t> codes(c.stimulus.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(c.stimulus[i]);
  }
  decim::DecimationChain chain(cfg);
  const auto fixed = chain.process(codes);

  const rtl::BuiltChain built = rtl::build_chain(cfg);
  rtl::CompiledSimulator sim(built.full);
  const auto res = sim.run({{built.in, c.stimulus}});
  const auto& rtl_out = res.outputs.begin()->second;

  // Cascaded rate boundaries give the netlist a fixed input-side delay;
  // for decimators that is a polyphase offset, so scan small input shifts
  // of the behavioral chain (as the legacy end-to-end test does).
  bool bit_ok = fixed.size() <= 40;  // vacuous when nothing observable
  for (int shift = 0; shift < 16 && !bit_ok; ++shift) {
    std::vector<std::int32_t> shifted(codes.size(), 0);
    for (std::size_t i = static_cast<std::size_t>(shift); i < shifted.size();
         ++i) {
      shifted[i] = codes[i - shift];
    }
    decim::DecimationChain chain2(cfg);
    const auto ref2 = chain2.process(shifted);
    bit_ok = matches_with_lag(rtl_out, ref2, 8, nullptr, /*settle=*/32);
  }
  if (!bit_ok) {
    out.ok = false;
    out.leg = "rtl-vs-fixed";
    out.detail = "no polyphase shift/lag aligns the chain netlist with the "
                 "behavioral chain";
    return out;
  }

  const auto ref = ref_model->process(c.stimulus);
  check_bounded(ref, fixed, cfg.output_format, ref_model->error_bound(), out);
  return out;
}

}  // namespace

bool matches_with_lag(const std::vector<std::int64_t>& rtl,
                      const std::vector<std::int64_t>& fixed, int max_lag,
                      int* found_lag, std::size_t settle,
                      std::size_t min_compared) {
  for (int lag = 0; lag <= max_lag; ++lag) {
    bool ok = true;
    std::size_t compared = 0;
    for (std::size_t i = settle;
         i + static_cast<std::size_t>(lag) < rtl.size() && i < fixed.size();
         ++i) {
      if (rtl[i + static_cast<std::size_t>(lag)] != fixed[i]) {
        ok = false;
        break;
      }
      ++compared;
    }
    if (ok && compared >= min_compared) {
      if (found_lag != nullptr) *found_lag = lag;
      return true;
    }
  }
  return false;
}

DiffOutcome run_case(const StageCase& c) {
  obs::Span span(std::string("case_") + stage_kind_name(c.kind), "verify");
  DSADC_OBS_COUNT("verify.cases");
  try {
    switch (c.kind) {
      case StageKind::kCic:
      case StageKind::kPolyphaseCic:
        return run_cic_family(c);
      case StageKind::kSharpenedCic:
        return run_sharpened_cic(c);
      case StageKind::kHbf:
        return run_hbf(c);
      case StageKind::kScaler:
        return run_scaler(c);
      case StageKind::kFir:
        return run_fir(c);
      case StageKind::kChain:
        return run_chain(c);
    }
  } catch (const std::exception& e) {
    DiffOutcome out;
    out.ok = false;
    out.leg = "exception";
    out.detail = e.what();
    return out;
  }
  DiffOutcome out;
  out.ok = false;
  out.leg = "exception";
  out.detail = "unknown stage kind";
  return out;
}

}  // namespace dsadc::verify
