#include "src/verify/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dsadc::verify {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::invalid_argument("Json: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) throw std::invalid_argument("Json: not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_double()));
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::invalid_argument("Json: not a string");
  return str_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  throw std::invalid_argument("Json: size() on scalar");
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) throw std::invalid_argument("Json: not an array");
  return arr_.at(i);
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) throw std::invalid_argument("Json: not an array");
  arr_.push_back(std::move(v));
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) throw std::invalid_argument("Json: not an object");
  const auto it = obj_.find(key);
  if (it == obj_.end()) {
    throw std::invalid_argument("Json: missing key '" + key + "'");
  }
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && obj_.find(key) != obj_.end();
}

std::vector<std::string> Json::keys() const {
  std::vector<std::string> out;
  out.reserve(obj_.size());
  for (const auto& [key, value] : obj_) out.push_back(key);
  return out;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::invalid_argument("Json: not an object");
  return obj_[key];
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += nl;
        out += pad;
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) {
        out += nl;
        out += close_pad;
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        out += nl;
        out += pad;
        append_escaped(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) {
        out += nl;
        out += close_pad;
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("json_parse: " + why + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      const std::string key = string();
      expect(':');
      out[key] = value();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json json_parse(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace dsadc::verify
