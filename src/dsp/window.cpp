#include "src/dsp/window.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dsadc::dsp {
namespace {

/// Modified Bessel function of the first kind, order zero (series).
double bessel_i0(double x) {
  double sum = 1.0;
  double term = 1.0;
  const double half_x = x / 2.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half_x / k) * (half_x / k);
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return sum;
}

}  // namespace

std::vector<double> make_window(WindowKind kind, std::size_t n, double beta) {
  if (n == 0) throw std::invalid_argument("make_window: n must be > 0");
  std::vector<double> w(n);
  const double nm1 = n > 1 ? static_cast<double>(n - 1) : 1.0;
  constexpr double kPi = std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / nm1;  // [0, 1]
    switch (kind) {
      case WindowKind::kRectangular:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(2.0 * kPi * x);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(2.0 * kPi * x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(2.0 * kPi * x) +
               0.08 * std::cos(4.0 * kPi * x);
        break;
      case WindowKind::kBlackmanHarris4:
        w[i] = 0.35875 - 0.48829 * std::cos(2.0 * kPi * x) +
               0.14128 * std::cos(4.0 * kPi * x) -
               0.01168 * std::cos(6.0 * kPi * x);
        break;
      case WindowKind::kKaiser: {
        const double t = 2.0 * x - 1.0;  // [-1, 1]
        w[i] = bessel_i0(beta * std::sqrt(std::max(0.0, 1.0 - t * t))) /
               bessel_i0(beta);
        break;
      }
    }
  }
  return w;
}

double coherent_gain(const std::vector<double>& w) {
  double s = 0.0;
  for (double v : w) s += v;
  return s / static_cast<double>(w.size());
}

double enbw_bins(const std::vector<double>& w) {
  double s1 = 0.0, s2 = 0.0;
  for (double v : w) {
    s1 += v;
    s2 += v * v;
  }
  return static_cast<double>(w.size()) * s2 / (s1 * s1);
}

double kaiser_beta_for_attenuation(double atten_db) {
  if (atten_db > 50.0) return 0.1102 * (atten_db - 8.7);
  if (atten_db >= 21.0)
    return 0.5842 * std::pow(atten_db - 21.0, 0.4) + 0.07886 * (atten_db - 21.0);
  return 0.0;
}

std::size_t kaiser_order_for(double atten_db, double transition_width) {
  if (transition_width <= 0.0)
    throw std::invalid_argument("kaiser_order_for: width must be > 0");
  const double n = (atten_db - 7.95) / (14.36 * transition_width);
  return static_cast<std::size_t>(std::ceil(std::max(n, 1.0)));
}

std::string to_string(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRectangular: return "rectangular";
    case WindowKind::kHann: return "hann";
    case WindowKind::kHamming: return "hamming";
    case WindowKind::kBlackman: return "blackman";
    case WindowKind::kBlackmanHarris4: return "blackman-harris-4";
    case WindowKind::kKaiser: return "kaiser";
  }
  return "unknown";
}

}  // namespace dsadc::dsp
