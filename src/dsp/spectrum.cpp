#include "src/dsp/spectrum.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/dsp/fft.h"

namespace dsadc::dsp {

std::size_t Periodogram::bin_of_freq(double freq_hz) const {
  if (bin_hz <= 0.0) return 0;
  const auto k = static_cast<std::size_t>(std::llround(freq_hz / bin_hz));
  return std::min(k, power.empty() ? std::size_t{0} : power.size() - 1);
}

Periodogram periodogram(std::span<const double> x, double sample_rate_hz,
                        WindowKind window, double kaiser_beta) {
  if (x.size() < 16) throw std::invalid_argument("periodogram: signal too short");
  const std::size_t nfft = is_power_of_two(x.size())
                               ? x.size()
                               : next_power_of_two(x.size()) / 2;
  const std::vector<double> w = make_window(window, nfft, kaiser_beta);
  const double cg = coherent_gain(w);

  std::vector<std::complex<double>> buf(nfft);
  for (std::size_t i = 0; i < nfft; ++i) buf[i] = {x[i] * w[i], 0.0};
  fft_inplace(buf, false);

  Periodogram p;
  p.sample_rate_hz = sample_rate_hz;
  p.bin_hz = sample_rate_hz / static_cast<double>(nfft);
  p.enbw_bins = enbw_bins(w);
  p.power.resize(nfft / 2 + 1);
  const double norm = 1.0 / (cg * static_cast<double>(nfft));
  for (std::size_t k = 0; k < p.power.size(); ++k) {
    double mag = std::abs(buf[k]) * norm;
    // One-sided: double the power of interior bins.
    double pw = mag * mag;
    if (k != 0 && k != nfft / 2) pw *= 2.0;
    p.power[k] = pw;
  }
  return p;
}

SnrResult measure_tone_snr(std::span<const double> x, double sample_rate_hz,
                           double band_hz, WindowKind window,
                           std::size_t skirt_bins, std::size_t dc_skip,
                           double kaiser_beta) {
  const Periodogram p = periodogram(x, sample_rate_hz, window, kaiser_beta);
  const std::size_t band_bin = p.bin_of_freq(band_hz);
  if (band_bin <= dc_skip + 2) {
    throw std::invalid_argument("measure_tone_snr: band too narrow for FFT size");
  }
  // Find the strongest in-band bin beyond the DC skirt.
  std::size_t peak = dc_skip + 1;
  for (std::size_t k = dc_skip + 1; k <= band_bin; ++k) {
    if (p.power[k] > p.power[peak]) peak = k;
  }
  const std::size_t lo = peak > skirt_bins ? peak - skirt_bins : 0;
  const std::size_t hi = std::min(peak + skirt_bins, p.power.size() - 1);

  SnrResult r;
  r.signal_freq_hz = p.freq_of_bin(peak);
  for (std::size_t k = lo; k <= hi; ++k) r.signal_power += p.power[k];
  // The windowed tone's summed bin power overcounts by ENBW relative to a
  // rectangular integration; both signal and noise-density sums use the same
  // window so the *ratio* is what needs care: signal bins sum to (A^2/2)*ENBW
  // after coherent-gain normalization; noise density is also multiplied by
  // ENBW per bin. Dividing both by ENBW is consistent.
  r.signal_power /= p.enbw_bins;
  for (std::size_t k = dc_skip + 1; k <= band_bin; ++k) {
    if (k >= lo && k <= hi) continue;
    r.noise_power += p.power[k];
  }
  r.noise_power /= p.enbw_bins;
  if (r.noise_power <= 0.0) r.noise_power = 1e-40;
  r.snr_db = 10.0 * std::log10(r.signal_power / r.noise_power);
  r.enob_bits = (r.snr_db - 1.76) / 6.02;
  return r;
}

double band_power(const Periodogram& p, double f0_hz, double f1_hz) {
  const std::size_t k0 = p.bin_of_freq(f0_hz);
  const std::size_t k1 = p.bin_of_freq(f1_hz);
  double s = 0.0;
  for (std::size_t k = k0; k <= k1 && k < p.power.size(); ++k) s += p.power[k];
  return s / p.enbw_bins;
}

double power_db(double p) {
  if (p <= 1e-40) return -400.0;
  return 10.0 * std::log10(p);
}

double amplitude_db(double a) {
  if (std::abs(a) <= 1e-200) return -400.0;
  return 20.0 * std::log10(std::abs(a));
}

}  // namespace dsadc::dsp
