// Chebyshev polynomials of the first kind.
//
// The Saramaki halfband decomposition writes the composite zero-phase
// response as H(w) = 0.5 + sum_i f1_i * T_{2i-1}(F2hat(w)), so designing f1
// is a Chebyshev-basis fitting problem.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dsadc::dsp {

/// T_n(x), numerically stable for |x| <= ~1.2 via recurrence, and via the
/// cosh form for larger |x|.
double chebyshev_t(std::size_t n, double x);

/// Evaluate sum_k c[k] * T_{k}(x).
double chebyshev_series(std::span<const double> c, double x);

/// Evaluate sum_i c[i] * T_{2i+1}(x) (odd-order series; i = 0.. c.size()-1).
double chebyshev_odd_series(std::span<const double> c, double x);

/// Coefficients of T_n as an ordinary polynomial (ascending powers of x).
std::vector<double> chebyshev_t_coeffs(std::size_t n);

}  // namespace dsadc::dsp
