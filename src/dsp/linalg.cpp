#include "src/dsp/linalg.h"

#include <cmath>
#include <stdexcept>

namespace dsadc::dsp {

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_linear: dimension mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(piv, col))) piv = r;
    }
    if (std::abs(a.at(piv, col)) < 1e-300) {
      throw std::runtime_error("solve_linear: singular matrix");
    }
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(piv, c), a.at(col, c));
      std::swap(b[piv], b[col]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) * inv;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b,
                                        double lambda) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) {
    throw std::invalid_argument("solve_least_squares: dimension mismatch");
  }
  Matrix ata(n, n, 0.0);
  std::vector<double> atb(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < m; ++r) s += a.at(r, i) * a.at(r, j);
      ata.at(i, j) = s;
      ata.at(j, i) = s;
    }
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) s += a.at(r, i) * b[r];
    atb[i] = s;
  }
  if (lambda > 0.0) {
    for (std::size_t i = 0; i < n; ++i) ata.at(i, i) += lambda;
  }
  return solve_linear(std::move(ata), std::move(atb));
}

}  // namespace dsadc::dsp
