// Small dense linear algebra: Gaussian elimination and least squares.
//
// Design-time only (coefficient fitting); sizes are tens of unknowns, so a
// straightforward partial-pivot solver is appropriate.
#pragma once

#include <cstddef>
#include <vector>

namespace dsadc::dsp {

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// Throws std::runtime_error if A is (numerically) singular.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Least-squares solution of (possibly overdetermined) A x ~= b via the
/// normal equations with Tikhonov damping `lambda` for robustness.
std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b,
                                        double lambda = 0.0);

}  // namespace dsadc::dsp
