#include "src/dsp/freqz.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/dsp/spectrum.h"

namespace dsadc::dsp {

std::complex<double> fir_response_at(std::span<const double> h, double f) {
  // Horner evaluation at z^-1 = e^{-j 2 pi f}.
  const double w = 2.0 * std::numbers::pi * f;
  const std::complex<double> zinv(std::cos(w), -std::sin(w));
  std::complex<double> acc(0.0, 0.0);
  for (std::size_t i = h.size(); i-- > 0;) acc = acc * zinv + h[i];
  return acc;
}

std::complex<double> rational_response_at(std::span<const double> b,
                                          std::span<const double> a,
                                          double f) {
  const std::complex<double> num = fir_response_at(b, f);
  const std::complex<double> den = fir_response_at(a, f);
  return num / den;
}

std::vector<double> fir_magnitude_db(std::span<const double> h, std::size_t n,
                                     double fmax) {
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double f = fmax * static_cast<double>(k) / static_cast<double>(n);
    out[k] = amplitude_db(std::abs(fir_response_at(h, f)));
  }
  return out;
}

std::vector<double> frequency_grid(std::size_t n, double fmax) {
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = fmax * static_cast<double>(k) / static_cast<double>(n);
  }
  return out;
}

double passband_ripple_db(std::span<const double> h, double f0, double f1,
                          std::size_t n) {
  double lo = 1e300, hi = -1e300;
  for (std::size_t k = 0; k < n; ++k) {
    const double f = f0 + (f1 - f0) * static_cast<double>(k) / static_cast<double>(n - 1);
    const double m = amplitude_db(std::abs(fir_response_at(h, f)));
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  return hi - lo;
}

double max_magnitude_db(std::span<const double> h, double f0, double f1,
                        std::size_t n) {
  double hi = -1e300;
  for (std::size_t k = 0; k < n; ++k) {
    const double f = f0 + (f1 - f0) * static_cast<double>(k) / static_cast<double>(n - 1);
    hi = std::max(hi, amplitude_db(std::abs(fir_response_at(h, f))));
  }
  return hi;
}

double min_attenuation_db(std::span<const double> h, double f0, double f1,
                          std::size_t n) {
  const double dc = amplitude_db(std::abs(fir_response_at(h, 0.0)));
  return dc - max_magnitude_db(h, f0, f1, n);
}

std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  }
  return out;
}

std::vector<double> upsample_taps(std::span<const double> h, std::size_t m) {
  if (m == 0) throw std::invalid_argument("upsample_taps: m must be >= 1");
  if (h.empty()) return {};
  std::vector<double> out((h.size() - 1) * m + 1, 0.0);
  for (std::size_t i = 0; i < h.size(); ++i) out[i * m] = h[i];
  return out;
}

bool is_symmetric(std::span<const double> h, double tol) {
  for (std::size_t i = 0; i < h.size() / 2; ++i) {
    if (std::abs(h[i] - h[h.size() - 1 - i]) > tol) return false;
  }
  return true;
}

}  // namespace dsadc::dsp
