// Windowed periodogram / PSD estimation and in-band SNR integration.
//
// This is the measurement side of the reproduction: Fig. 4 (modulator
// spectrum + SQNR) and the end-to-end 86 dB SNR check both reduce to
// "window, FFT, separate signal bins from noise bins, integrate".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/dsp/window.h"

namespace dsadc::dsp {

/// One-sided windowed periodogram.
struct Periodogram {
  std::vector<double> power;  ///< bin powers, length nfft/2 + 1
  double bin_hz = 0.0;        ///< frequency spacing of bins
  double enbw_bins = 0.0;     ///< window noise-equivalent bandwidth (bins)
  double sample_rate_hz = 0.0;

  std::size_t size() const { return power.size(); }
  double freq_of_bin(std::size_t k) const { return bin_hz * static_cast<double>(k); }
  /// Bin index nearest to `freq_hz`.
  std::size_t bin_of_freq(double freq_hz) const;
};

/// Compute a one-sided windowed periodogram of `x` (power per bin,
/// normalized so a full-scale sine of amplitude A shows total signal power
/// A^2/2 when its bins are summed and divided by ENBW).
Periodogram periodogram(std::span<const double> x, double sample_rate_hz,
                        WindowKind window = WindowKind::kBlackmanHarris4,
                        double kaiser_beta = 20.0);

/// Result of tone-based SNR measurement.
struct SnrResult {
  double snr_db = 0.0;          ///< signal power / in-band noise power
  double signal_power = 0.0;    ///< linear
  double noise_power = 0.0;     ///< linear, integrated over band minus signal
  double signal_freq_hz = 0.0;  ///< detected tone frequency
  double enob_bits = 0.0;       ///< (snr_db - 1.76) / 6.02
};

/// Measure SNR of a single tone in `x` integrated from DC to `band_hz`.
/// The tone is located as the strongest in-band bin; +-`skirt_bins` bins
/// on each side are attributed to the signal (window leakage). Bins 0..dc_skip
/// are excluded from the noise as DC leakage.
SnrResult measure_tone_snr(std::span<const double> x, double sample_rate_hz,
                           double band_hz,
                           WindowKind window = WindowKind::kBlackmanHarris4,
                           std::size_t skirt_bins = 8,
                           std::size_t dc_skip = 8,
                           double kaiser_beta = 20.0);

/// Integrated power of a periodogram between two frequencies [f0, f1].
double band_power(const Periodogram& p, double f0_hz, double f1_hz);

/// Convert a power ratio to dB (floors at -400 dB to avoid -inf).
double power_db(double p);

/// Convert an amplitude ratio to dB.
double amplitude_db(double a);

}  // namespace dsadc::dsp
