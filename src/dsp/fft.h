// Radix-2 decimation-in-time FFT for power-of-two lengths.
//
// Used by the spectrum analyzer (Fig. 4 reproduction) and by design
// validation code that needs dense frequency sampling of long impulse
// responses.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace dsadc::dsp {

/// True iff `n` is a power of two (and nonzero).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n must be >= 1).
std::size_t next_power_of_two(std::size_t n);

/// In-place radix-2 FFT. `data.size()` must be a power of two.
/// `inverse` selects the inverse transform (includes the 1/N scaling).
void fft_inplace(std::span<std::complex<double>> data, bool inverse = false);

/// Out-of-place FFT of a complex signal (size must be a power of two).
std::vector<std::complex<double>> fft(std::span<const std::complex<double>> x,
                                      bool inverse = false);

/// FFT of a real signal, zero-padded to the next power of two if needed.
/// Returns the full complex spectrum (length = padded size).
std::vector<std::complex<double>> fft_real(std::span<const double> x,
                                           std::size_t min_size = 0);

}  // namespace dsadc::dsp
