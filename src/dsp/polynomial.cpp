#include "src/dsp/polynomial.h"

#include <cmath>
#include <stdexcept>

namespace dsadc::dsp {

std::vector<double> poly_from_roots_zinv(
    std::span<const std::complex<double>> roots) {
  std::vector<std::complex<double>> p{{1.0, 0.0}};
  for (const auto& r : roots) {
    // Multiply by (1 - r x).
    std::vector<std::complex<double>> q(p.size() + 1, {0.0, 0.0});
    for (std::size_t i = 0; i < p.size(); ++i) {
      q[i] += p[i];
      q[i + 1] -= r * p[i];
    }
    p = std::move(q);
  }
  std::vector<double> out(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (std::abs(p[i].imag()) > 1e-9 * (1.0 + std::abs(p[i].real()))) {
      throw std::invalid_argument(
          "poly_from_roots_zinv: roots not conjugate-symmetric");
    }
    out[i] = p[i].real();
  }
  return out;
}

std::vector<double> poly_mul(std::span<const double> a,
                             std::span<const double> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  return out;
}

std::complex<double> poly_eval(std::span<const double> p,
                               std::complex<double> x) {
  std::complex<double> acc(0.0, 0.0);
  for (std::size_t i = p.size(); i-- > 0;) acc = acc * x + p[i];
  return acc;
}

std::vector<double> rational_impulse_response(std::span<const double> b,
                                              std::span<const double> a,
                                              std::size_t n) {
  if (a.empty() || a[0] == 0.0) {
    throw std::invalid_argument("rational_impulse_response: a[0] must be nonzero");
  }
  std::vector<double> h(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = k < b.size() ? b[k] : 0.0;
    for (std::size_t j = 1; j < a.size() && j <= k; ++j) {
      acc -= a[j] * h[k - j];
    }
    h[k] = acc / a[0];
  }
  return h;
}

std::vector<double> poly_derivative(std::span<const double> p) {
  if (p.size() <= 1) return {0.0};
  std::vector<double> d(p.size() - 1);
  for (std::size_t i = 1; i < p.size(); ++i) d[i - 1] = p[i] * static_cast<double>(i);
  return d;
}

}  // namespace dsadc::dsp
