// Polynomial utilities over real/complex coefficients.
//
// Polynomials are stored as coefficient vectors in *ascending* powers of
// z^-1 for transfer functions: p[0] + p[1] x + p[2] x^2 + ...
// The modulator NTF machinery builds polynomials from pole/zero sets and
// expands rational transfer functions into impulse responses.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace dsadc::dsp {

/// Expand prod_k (1 - r_k * x) for complex roots r_k; the result is real
/// (roots must come in conjugate pairs or be real). This is the natural
/// form for z-domain polynomials written in z^-1.
std::vector<double> poly_from_roots_zinv(
    std::span<const std::complex<double>> roots);

/// Multiply two real polynomials.
std::vector<double> poly_mul(std::span<const double> a,
                             std::span<const double> b);

/// Evaluate a real polynomial at a complex point (ascending coefficients).
std::complex<double> poly_eval(std::span<const double> p,
                               std::complex<double> x);

/// First `n` samples of the impulse response of H(z) = B(z)/A(z), where B
/// and A are polynomials in z^-1 (ascending) and A[0] != 0.
std::vector<double> rational_impulse_response(std::span<const double> b,
                                              std::span<const double> a,
                                              std::size_t n);

/// Derivative of a real polynomial (ascending coefficients).
std::vector<double> poly_derivative(std::span<const double> p);

}  // namespace dsadc::dsp
