// Window functions for spectral analysis and windowed FIR design.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dsadc::dsp {

enum class WindowKind {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kBlackmanHarris4,  ///< 4-term, ~92 dB sidelobes: default for DSM spectra.
  kKaiser,
};

/// Generate an N-point window. `beta` is only used for Kaiser.
std::vector<double> make_window(WindowKind kind, std::size_t n,
                                double beta = 0.0);

/// Coherent gain: sum(w)/N. Needed to normalize windowed tone amplitudes.
double coherent_gain(const std::vector<double>& w);

/// Noise-equivalent bandwidth in bins: N * sum(w^2) / sum(w)^2.
double enbw_bins(const std::vector<double>& w);

/// Kaiser beta for a given stopband attenuation in dB (Kaiser's formula).
double kaiser_beta_for_attenuation(double atten_db);

/// Kaiser window FIR order estimate for given attenuation and normalized
/// transition width (in cycles/sample).
std::size_t kaiser_order_for(double atten_db, double transition_width);

std::string to_string(WindowKind kind);

}  // namespace dsadc::dsp
