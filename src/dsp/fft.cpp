#include "src/dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dsadc::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Iterative Cooley-Tukey butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& c : data) c *= scale;
  }
}

std::vector<std::complex<double>> fft(std::span<const std::complex<double>> x,
                                      bool inverse) {
  std::vector<std::complex<double>> out(x.begin(), x.end());
  fft_inplace(out, inverse);
  return out;
}

std::vector<std::complex<double>> fft_real(std::span<const double> x,
                                           std::size_t min_size) {
  std::size_t n = next_power_of_two(std::max(x.size(), std::max<std::size_t>(min_size, 1)));
  std::vector<std::complex<double>> out(n, {0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = {x[i], 0.0};
  fft_inplace(out, false);
  return out;
}

}  // namespace dsadc::dsp
