#include "src/dsp/fft.h"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <stdexcept>

namespace dsadc::dsp {
namespace {

// Per-size twiddle table: w[k] = exp(-2*pi*i*k / n) for k < n/2 (the
// forward factors; the inverse transform conjugates on use). Tables are
// computed once per size under a mutex and shared immutably afterwards,
// so concurrent transforms only pay one lock per call, not per
// butterfly. Direct evaluation also avoids the rounding drift of the
// w *= wlen recurrence the butterflies previously iterated.
std::shared_ptr<const std::vector<std::complex<double>>> twiddles_for(
    std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t,
                  std::shared_ptr<const std::vector<std::complex<double>>>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[n];
  if (!slot) {
    auto table = std::make_shared<std::vector<std::complex<double>>>(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k) / static_cast<double>(n);
      (*table)[k] = {std::cos(angle), std::sin(angle)};
    }
    slot = std::move(table);
  }
  return slot;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Iterative Cooley-Tukey butterflies over the cached twiddle table: a
  // stage of length `len` uses every (n/len)-th forward factor.
  const auto table_ref = twiddles_for(n);
  const std::complex<double>* const tw = table_ref->data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> w =
            inverse ? std::conj(tw[k * stride]) : tw[k * stride];
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& c : data) c *= scale;
  }
}

std::vector<std::complex<double>> fft(std::span<const std::complex<double>> x,
                                      bool inverse) {
  std::vector<std::complex<double>> out(x.begin(), x.end());
  fft_inplace(out, inverse);
  return out;
}

std::vector<std::complex<double>> fft_real(std::span<const double> x,
                                           std::size_t min_size) {
  std::size_t n = next_power_of_two(std::max(x.size(), std::max<std::size_t>(min_size, 1)));
  std::vector<std::complex<double>> out(n, {0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = {x[i], 0.0};
  fft_inplace(out, false);
  return out;
}

}  // namespace dsadc::dsp
