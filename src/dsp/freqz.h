// Frequency-response evaluation of FIR / rational discrete-time systems.
//
// All "Figure N: frequency response" reproductions sample responses through
// these helpers so every bench plots exactly what the filter implements.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace dsadc::dsp {

/// H(e^{j 2 pi f}) of an FIR with impulse response `h`, f in cycles/sample.
std::complex<double> fir_response_at(std::span<const double> h, double f);

/// H(e^{j 2 pi f}) of a rational system b(z)/a(z) with coefficients in
/// descending powers of z^-1 (b[0] + b[1] z^-1 + ...).
std::complex<double> rational_response_at(std::span<const double> b,
                                          std::span<const double> a, double f);

/// Sample |H| in dB of an FIR on `n` points over [0, fmax) cycles/sample.
std::vector<double> fir_magnitude_db(std::span<const double> h, std::size_t n,
                                     double fmax = 0.5);

/// A uniform frequency grid over [0, fmax), n points, cycles/sample.
std::vector<double> frequency_grid(std::size_t n, double fmax = 0.5);

/// Peak-to-peak magnitude ripple of an FIR in dB over band [f0, f1]
/// (cycles/sample), sampled on `n` points.
double passband_ripple_db(std::span<const double> h, double f0, double f1,
                          std::size_t n = 2048);

/// Worst-case (largest) magnitude in dB over band [f0, f1].
double max_magnitude_db(std::span<const double> h, double f0, double f1,
                        std::size_t n = 2048);

/// Minimum stopband attenuation in dB over [f0, f1] relative to H(0).
double min_attenuation_db(std::span<const double> h, double f0, double f1,
                          std::size_t n = 2048);

/// Convolve two impulse responses (cascade of FIR filters).
std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b);

/// Impulse response of an FIR upsampled by `m` (each tap separated by m-1
/// zeros): h(z) -> h(z^m). Used to refer a post-decimation stage's response
/// back to the input rate of the cascade.
std::vector<double> upsample_taps(std::span<const double> h, std::size_t m);

/// True if the impulse response is symmetric (linear phase) to `tol`.
bool is_symmetric(std::span<const double> h, double tol = 1e-12);

}  // namespace dsadc::dsp
