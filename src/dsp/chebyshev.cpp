#include "src/dsp/chebyshev.h"

#include <cmath>

namespace dsadc::dsp {

double chebyshev_t(std::size_t n, double x) {
  if (n == 0) return 1.0;
  if (n == 1) return x;
  if (std::abs(x) <= 1.0) {
    return std::cos(static_cast<double>(n) * std::acos(x));
  }
  // |x| > 1: cosh form, with sign handling for negative x.
  const double sign = (x < 0.0 && (n % 2 == 1)) ? -1.0 : 1.0;
  const double ax = std::abs(x);
  return sign * std::cosh(static_cast<double>(n) * std::acosh(ax));
}

double chebyshev_series(std::span<const double> c, double x) {
  // Clenshaw recurrence.
  double b1 = 0.0, b2 = 0.0;
  for (std::size_t k = c.size(); k-- > 1;) {
    const double b0 = 2.0 * x * b1 - b2 + c[k];
    b2 = b1;
    b1 = b0;
  }
  return x * b1 - b2 + (c.empty() ? 0.0 : c[0]);
}

double chebyshev_odd_series(std::span<const double> c, double x) {
  double acc = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    acc += c[i] * chebyshev_t(2 * i + 1, x);
  }
  return acc;
}

std::vector<double> chebyshev_t_coeffs(std::size_t n) {
  if (n == 0) return {1.0};
  if (n == 1) return {0.0, 1.0};
  std::vector<double> tm2{1.0};        // T_0
  std::vector<double> tm1{0.0, 1.0};   // T_1
  for (std::size_t k = 2; k <= n; ++k) {
    std::vector<double> t(k + 1, 0.0);
    for (std::size_t i = 0; i < tm1.size(); ++i) t[i + 1] += 2.0 * tm1[i];
    for (std::size_t i = 0; i < tm2.size(); ++i) t[i] -= tm2[i];
    tm2 = std::move(tm1);
    tm1 = std::move(t);
  }
  return tm1;
}

}  // namespace dsadc::dsp
