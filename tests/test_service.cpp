// Decimation service: wire protocol round-trips, session lifecycle over a
// live server, bit-exactness of served output against the scalar
// DecimationChain (samples AND fx requantization counters), and
// determinism across DSADC_RUNTIME_THREADS.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/runtime/session.h"
#include "src/service/client.h"
#include "src/service/net.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;
using namespace std::chrono_literals;

constexpr auto kWait = 30000ms;  // generous: CI runs this under sanitizers

std::uint32_t fuzz_seed(std::uint32_t fallback) {
  if (const char* env = std::getenv("DSADC_FUZZ_SEED")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint32_t>(v);
  }
  return fallback;
}

std::vector<std::int32_t> stimulus_codes(verify::StimulusClass c,
                                         std::size_t n,
                                         std::mt19937_64& rng) {
  const auto raw = verify::make_stimulus(c, n, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  return codes;
}

/// fx event-counter totals across the chain's requantization sites.
/// Equality proves the served path made identical per-sample saturate and
/// round decisions as the scalar reference (counter adds are commutative,
/// so worker count and scheduling cannot affect the totals).
std::map<std::string, std::uint64_t> fx_snapshot() {
  static const char* kSites[] = {"chain_hbf_in", "hbf_in",     "hbf_product",
                                 "hbf_internal", "hbf_out",    "scaler_out",
                                 "fir_out"};
  static const char* kEvents[] = {"saturate", "round", "wrap"};
  std::map<std::string, std::uint64_t> snap;
  auto& reg = obs::Registry::instance();
  for (const char* site : kSites) {
    for (const char* ev : kEvents) {
      const std::string name = std::string("fx.") + ev + "." + site;
      snap[name] = reg.counter(name).value();
    }
  }
  return snap;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::instance().reset_all();
  }
  void TearDown() override { ::unsetenv("DSADC_RUNTIME_THREADS"); }

  service::ServerOptions test_options(const char* tag) {
    service::ServerOptions o;
    o.unix_path = service::net::unique_socket_path(tag);
    o.workers = 4;
    o.shards = 8;
    return o;
  }
};

// --- wire protocol -------------------------------------------------------

TEST(ServiceWire, FrameRoundTrip) {
  service::Frame f;
  f.type = service::FrameType::kData;
  f.channel = 42;
  f.seq = 7;
  f.payload = service::encode_codes(std::vector<std::int32_t>{-8, 7, 0, 3});

  const auto bytes = service::encode_frame(f);
  ASSERT_EQ(bytes.size(), service::kHeaderBytes + f.payload.size());

  service::FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  service::Frame got;
  ASSERT_EQ(parser.next(&got), service::FrameParser::Result::kFrame);
  EXPECT_EQ(got.type, f.type);
  EXPECT_EQ(got.channel, f.channel);
  EXPECT_EQ(got.seq, f.seq);
  EXPECT_EQ(got.payload, f.payload);
  EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kNeedMore);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(ServiceWire, ParserReassemblesByteDribble) {
  // Three frames delivered one byte at a time: the parser must
  // reassemble every frame across arbitrary recv() boundaries.
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 3; ++i) {
    service::Frame f;
    f.type = service::FrameType::kData;
    f.channel = i;
    f.seq = i * 10;
    f.payload = service::encode_u32(0xa0b0c0d0u + i);
    service::append_frame(stream, f);
  }

  service::FrameParser parser;
  std::vector<service::Frame> got;
  for (const std::uint8_t byte : stream) {
    parser.feed(&byte, 1);
    service::Frame f;
    while (parser.next(&f) == service::FrameParser::Result::kFrame) {
      got.push_back(f);
    }
  }
  ASSERT_EQ(got.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i].channel, i);
    EXPECT_EQ(got[i].seq, i * 10);
    std::uint32_t v = 0;
    ASSERT_TRUE(service::decode_u32(got[i].payload, &v));
    EXPECT_EQ(v, 0xa0b0c0d0u + i);
  }
}

TEST(ServiceWire, PayloadCodecsRoundTrip) {
  const std::vector<std::int32_t> codes = {-8, -1, 0, 1, 7, 2147483647,
                                           -2147483647 - 1};
  std::vector<std::int32_t> codes2;
  ASSERT_TRUE(service::decode_codes(service::encode_codes(codes), &codes2));
  EXPECT_EQ(codes2, codes);

  const std::vector<std::int64_t> samples = {0, -1, 8191, -8192,
                                             (1ll << 40), -(1ll << 40)};
  std::vector<std::int64_t> samples2;
  ASSERT_TRUE(
      service::decode_samples(service::encode_samples(samples), &samples2));
  EXPECT_EQ(samples2, samples);

  // Misaligned payloads must be rejected, not mis-parsed.
  std::vector<std::uint8_t> odd(5, 0);
  EXPECT_FALSE(service::decode_codes(odd, &codes2));
  EXPECT_FALSE(service::decode_samples(odd, &samples2));
  std::uint32_t v = 0;
  EXPECT_FALSE(service::decode_u32(odd, &v));
}

TEST(ServiceWire, ParserRejectsCorruption) {
  service::Frame f;
  f.type = service::FrameType::kData;
  f.channel = 3;
  f.payload = service::encode_codes(std::vector<std::int32_t>{1, 2, 3, 4});
  const auto good = service::encode_frame(f);

  {  // bad magic
    auto bytes = good;
    bytes[0] ^= 0xff;
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
  {  // flipped payload byte -> CRC mismatch
    auto bytes = good;
    bytes.back() ^= 0x01;
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
  {  // flipped CRC byte
    auto bytes = good;
    bytes[20] ^= 0x10;
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
  {  // unknown frame type
    auto bytes = good;
    bytes[4] = 0x7f;  // type field; CRC now also wrong, either way kBad
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
  {  // oversized payload length
    auto bytes = good;
    bytes[16] = 0xff;
    bytes[17] = 0xff;
    bytes[18] = 0xff;
    bytes[19] = 0x7f;
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
}

TEST(ServiceWire, Crc32KnownVector) {
  // IEEE 802.3 check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(service::crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xcbf43926u);
}

TEST(ServiceWire, PresetsAreSharedAndBounded) {
  const auto p0 = service::preset_config(0);
  const auto p1 = service::preset_config(1);
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(service::preset_config(service::kNumPresets), nullptr);
  // Designed once, shared thereafter.
  EXPECT_EQ(service::preset_config(0).get(), p0.get());
  EXPECT_EQ(service::preset_config(1).get(), p1.get());
}

// --- session lifecycle over a live server --------------------------------

TEST_F(ServiceTest, LifecycleOpenStreamReconfigureDrainClose) {
  service::Server server(test_options("life"));
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());

  const std::uint32_t ch = 5;
  std::mt19937_64 rng(fuzz_seed(301));
  const auto part1 =
      stimulus_codes(verify::StimulusClass::kModulator, 2048, rng);
  const auto part2 = stimulus_codes(verify::StimulusClass::kPrbs, 1024, rng);

  // Reference: the exact sequence of chain operations the server performs.
  const auto cfg0 = service::preset_config(0);
  const auto cfg1 = service::preset_config(1);
  std::vector<std::int64_t> ref;
  decim::DecimationChain chain(*cfg0);
  for (auto s : chain.process(part1)) ref.push_back(s);
  decim::DecimationChain chain2(*cfg1);  // reconfigure = fresh chain
  for (auto s : chain2.process(part2)) ref.push_back(s);
  const auto pad = runtime::SessionRuntime::drain_pad_frames(chain2);
  for (auto s : chain2.process(std::vector<std::int32_t>(pad, 0))) {
    ref.push_back(s);
  }

  ASSERT_TRUE(client->open(ch, 0));
  ASSERT_TRUE(client->wait_ack_count(ch, 1, kWait)) << "OPEN not acked";
  ASSERT_TRUE(client->send_data(ch, part1));
  ASSERT_TRUE(client->reconfigure(ch, 1));
  ASSERT_TRUE(client->wait_ack_count(ch, 2, kWait)) << "CONFIG not acked";
  ASSERT_TRUE(client->send_data(ch, part2));
  ASSERT_TRUE(client->drain(ch));
  ASSERT_TRUE(client->wait_drained(ch, 1, kWait)) << "DRAIN marker missing";
  ASSERT_TRUE(client->close_channel(ch));
  ASSERT_TRUE(client->wait_ack_count(ch, 3, kWait)) << "CLOSE not acked";

  EXPECT_EQ(client->samples(ch), ref);
  EXPECT_TRUE(client->errors().empty());

  // The channel is gone: further DATA is answered with NOT_OPEN.
  ASSERT_TRUE(client->send_data(ch, part2));
  EXPECT_TRUE(client->wait_error(service::ErrorCode::kNotOpen, kWait));

  client.reset();
  server.stop();
}

TEST_F(ServiceTest, ServedOutputBitExactAllStimulusClasses) {
  const std::uint32_t seed = fuzz_seed(313);
  constexpr std::size_t kChannels = 3;
  constexpr std::size_t kFrames = 4096;
  constexpr std::size_t kChunk = 512;  // 8 DATA frames/channel: state carry

  for (int ci = 0; ci < verify::kNumStimulusClasses; ++ci) {
    const auto cls = static_cast<verify::StimulusClass>(ci);
    std::mt19937_64 rng(seed + static_cast<std::uint32_t>(ci));
    std::vector<std::vector<std::int32_t>> codes;
    for (std::size_t c = 0; c < kChannels; ++c) {
      codes.push_back(stimulus_codes(cls, kFrames, rng));
    }

    // Reference: scalar chains, counting fx requantization events.
    obs::Registry::instance().reset_all();
    const auto cfg = service::preset_config(0);
    std::vector<std::vector<std::int64_t>> ref;
    for (std::size_t c = 0; c < kChannels; ++c) {
      decim::DecimationChain chain(*cfg);
      ref.push_back(chain.process(codes[c]));
    }
    const auto ref_fx = fx_snapshot();

    obs::Registry::instance().reset_all();
    service::Server server(test_options("exact"));
    server.start();
    auto client = service::Client::connect_unix(server.unix_path());
    for (std::size_t c = 0; c < kChannels; ++c) {
      ASSERT_TRUE(client->open(static_cast<std::uint32_t>(c), 0));
    }
    for (std::size_t off = 0; off < kFrames; off += kChunk) {
      for (std::size_t c = 0; c < kChannels; ++c) {
        ASSERT_TRUE(client->send_data(
            static_cast<std::uint32_t>(c),
            std::span<const std::int32_t>(codes[c]).subspan(off, kChunk)));
      }
    }
    for (std::size_t c = 0; c < kChannels; ++c) {
      ASSERT_TRUE(client->wait_sample_count(static_cast<std::uint32_t>(c),
                                            ref[c].size(), kWait))
          << "class " << verify::stimulus_name(cls) << " channel " << c;
      EXPECT_EQ(client->samples(static_cast<std::uint32_t>(c)), ref[c])
          << "class " << verify::stimulus_name(cls) << " channel " << c;
    }
    EXPECT_TRUE(client->errors().empty());
    client.reset();
    server.stop();

    // Same samples AND the same per-sample saturate/round decisions.
    EXPECT_EQ(fx_snapshot(), ref_fx)
        << "class " << verify::stimulus_name(cls);
  }
}

TEST_F(ServiceTest, DeterministicAcrossRuntimeThreadCounts) {
  const std::uint32_t seed = fuzz_seed(331);
  constexpr std::size_t kChannels = 8;
  constexpr std::size_t kFrames = 2048;
  constexpr std::size_t kChunk = 256;
  std::mt19937_64 rng(seed);
  std::vector<std::vector<std::int32_t>> codes;
  for (std::size_t c = 0; c < kChannels; ++c) {
    codes.push_back(
        stimulus_codes(verify::StimulusClass::kUniform, kFrames, rng));
  }

  std::vector<std::vector<std::vector<std::int64_t>>> results;
  for (const char* threads : {"1", "2", "8"}) {
    ::setenv("DSADC_RUNTIME_THREADS", threads, 1);
    service::ServerOptions o;
    o.unix_path = service::net::unique_socket_path("det");
    o.workers = 0;  // resolve from DSADC_RUNTIME_THREADS
    o.shards = 4;
    service::Server server(o);
    server.start();
    auto client = service::Client::connect_unix(server.unix_path());
    for (std::size_t c = 0; c < kChannels; ++c) {
      ASSERT_TRUE(client->open(static_cast<std::uint32_t>(c), 0));
    }
    for (std::size_t off = 0; off < kFrames; off += kChunk) {
      for (std::size_t c = 0; c < kChannels; ++c) {
        ASSERT_TRUE(client->send_data(
            static_cast<std::uint32_t>(c),
            std::span<const std::int32_t>(codes[c]).subspan(off, kChunk)));
      }
    }
    std::vector<std::vector<std::int64_t>> run;
    for (std::size_t c = 0; c < kChannels; ++c) {
      ASSERT_TRUE(client->wait_sample_count(static_cast<std::uint32_t>(c),
                                            (kFrames / 16), kWait))
          << "threads=" << threads << " channel " << c;
      run.push_back(client->samples(static_cast<std::uint32_t>(c)));
    }
    EXPECT_TRUE(client->errors().empty()) << "threads=" << threads;
    results.push_back(std::move(run));
    client.reset();
    server.stop();
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i], results[0])
        << "worker count must not change served samples";
  }
}

TEST_F(ServiceTest, TcpRoundTrip) {
  service::ServerOptions o;
  o.tcp = true;  // ephemeral port; no unix listener
  o.workers = 2;
  service::Server server(o);
  server.start();
  ASSERT_NE(server.tcp_port(), 0);

  std::mt19937_64 rng(fuzz_seed(347));
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 1024, rng);
  decim::DecimationChain chain(*service::preset_config(0));
  const auto ref = chain.process(codes);

  auto client = service::Client::connect_tcp("127.0.0.1", server.tcp_port());
  const std::uint32_t ch = 9;
  ASSERT_TRUE(client->open(ch, 0));
  ASSERT_TRUE(client->send_data(ch, codes));
  ASSERT_TRUE(client->wait_sample_count(ch, ref.size(), kWait));
  EXPECT_EQ(client->samples(ch), ref);
  EXPECT_TRUE(client->errors().empty());
  client.reset();
  server.stop();
}

TEST_F(ServiceTest, TenantsAreIsolatedByConnection) {
  // Two connections use the SAME channel id with different data; each
  // must get exactly its own stream back (session key includes conn id).
  service::Server server(test_options("iso"));
  server.start();

  std::mt19937_64 rng(fuzz_seed(353));
  const auto codes_a =
      stimulus_codes(verify::StimulusClass::kModulator, 2048, rng);
  const auto codes_b = stimulus_codes(verify::StimulusClass::kPrbs, 2048, rng);
  const auto cfg = service::preset_config(0);
  decim::DecimationChain chain_a(*cfg), chain_b(*cfg);
  const auto ref_a = chain_a.process(codes_a);
  const auto ref_b = chain_b.process(codes_b);

  auto a = service::Client::connect_unix(server.unix_path());
  auto b = service::Client::connect_unix(server.unix_path());
  const std::uint32_t ch = 77;
  ASSERT_TRUE(a->open(ch, 0));
  ASSERT_TRUE(b->open(ch, 0));
  ASSERT_TRUE(a->send_data(ch, codes_a));
  ASSERT_TRUE(b->send_data(ch, codes_b));
  ASSERT_TRUE(a->wait_sample_count(ch, ref_a.size(), kWait));
  ASSERT_TRUE(b->wait_sample_count(ch, ref_b.size(), kWait));
  EXPECT_EQ(a->samples(ch), ref_a);
  EXPECT_EQ(b->samples(ch), ref_b);
  EXPECT_TRUE(a->errors().empty());
  EXPECT_TRUE(b->errors().empty());
  a.reset();
  b.reset();
  server.stop();
}

TEST_F(ServiceTest, PerTenantMetricsAccumulate) {
  service::Server server(test_options("metrics"));
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());

  std::mt19937_64 rng(fuzz_seed(359));
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 512, rng);
  const std::uint32_t ch = 4;
  ASSERT_TRUE(client->open(ch, 0));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(client->send_data(ch, codes));
  ASSERT_TRUE(client->wait_sample_count(ch, 3 * codes.size() / 16, kWait));
  client.reset();
  server.stop();

  auto& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter("service.accepted").value(), 3u);
  EXPECT_EQ(reg.counter("service.accepted.ch4").value(), 3u);
  EXPECT_EQ(reg.counter("service.shed").value(), 0u);
  EXPECT_EQ(reg.counter("service.connections").value(), 1u);
  EXPECT_GT(reg.gauge("service.throughput_sps.ch4").value(), 0.0);
}

}  // namespace
