// Decimation service: wire protocol round-trips, session lifecycle over a
// live server, bit-exactness of served output against the scalar
// DecimationChain (samples AND fx requantization counters), and
// determinism across DSADC_RUNTIME_THREADS.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/runtime/session.h"
#include "src/service/client.h"
#include "src/service/net.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;
using namespace std::chrono_literals;

constexpr auto kWait = 30000ms;  // generous: CI runs this under sanitizers

std::uint32_t fuzz_seed(std::uint32_t fallback) {
  if (const char* env = std::getenv("DSADC_FUZZ_SEED")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint32_t>(v);
  }
  return fallback;
}

std::vector<std::int32_t> stimulus_codes(verify::StimulusClass c,
                                         std::size_t n,
                                         std::mt19937_64& rng) {
  const auto raw = verify::make_stimulus(c, n, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  return codes;
}

/// fx event-counter totals across the chain's requantization sites.
/// Equality proves the served path made identical per-sample saturate and
/// round decisions as the scalar reference (counter adds are commutative,
/// so worker count and scheduling cannot affect the totals).
std::map<std::string, std::uint64_t> fx_snapshot() {
  static const char* kSites[] = {"chain_hbf_in", "hbf_in",     "hbf_product",
                                 "hbf_internal", "hbf_out",    "scaler_out",
                                 "fir_out"};
  static const char* kEvents[] = {"saturate", "round", "wrap"};
  std::map<std::string, std::uint64_t> snap;
  auto& reg = obs::Registry::instance();
  for (const char* site : kSites) {
    for (const char* ev : kEvents) {
      const std::string name = std::string("fx.") + ev + "." + site;
      snap[name] = reg.counter(name).value();
    }
  }
  return snap;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::instance().reset_all();
  }
  void TearDown() override { ::unsetenv("DSADC_RUNTIME_THREADS"); }

  service::ServerOptions test_options(const char* tag) {
    service::ServerOptions o;
    o.unix_path = service::net::unique_socket_path(tag);
    o.workers = 4;
    o.shards = 8;
    // CI runs this suite once per I/O backend via DSADC_SERVICE_IO;
    // options are built directly here, so re-apply the env override.
    if (const char* io = std::getenv("DSADC_SERVICE_IO")) {
      if (std::string_view(io) == "threads") {
        o.io = service::IoBackend::kThreads;
      } else if (std::string_view(io) == "epoll") {
        o.io = service::IoBackend::kEpoll;
      }
    }
    return o;
  }
};

// --- wire protocol -------------------------------------------------------

TEST(ServiceWire, FrameRoundTrip) {
  service::Frame f;
  f.type = service::FrameType::kData;
  f.channel = 42;
  f.seq = 7;
  f.payload = service::encode_codes(std::vector<std::int32_t>{-8, 7, 0, 3});

  const auto bytes = service::encode_frame(f);
  ASSERT_EQ(bytes.size(), service::kHeaderBytes + f.payload.size());

  service::FrameParser parser;
  parser.feed(bytes.data(), bytes.size());
  service::Frame got;
  ASSERT_EQ(parser.next(&got), service::FrameParser::Result::kFrame);
  EXPECT_EQ(got.type, f.type);
  EXPECT_EQ(got.channel, f.channel);
  EXPECT_EQ(got.seq, f.seq);
  EXPECT_EQ(got.payload, f.payload);
  EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kNeedMore);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(ServiceWire, ParserReassemblesByteDribble) {
  // Three frames delivered one byte at a time: the parser must
  // reassemble every frame across arbitrary recv() boundaries.
  std::vector<std::uint8_t> stream;
  for (std::uint32_t i = 0; i < 3; ++i) {
    service::Frame f;
    f.type = service::FrameType::kData;
    f.channel = i;
    f.seq = i * 10;
    f.payload = service::encode_u32(0xa0b0c0d0u + i);
    service::append_frame(stream, f);
  }

  service::FrameParser parser;
  std::vector<service::Frame> got;
  for (const std::uint8_t byte : stream) {
    parser.feed(&byte, 1);
    service::Frame f;
    while (parser.next(&f) == service::FrameParser::Result::kFrame) {
      got.push_back(f);
    }
  }
  ASSERT_EQ(got.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i].channel, i);
    EXPECT_EQ(got[i].seq, i * 10);
    std::uint32_t v = 0;
    ASSERT_TRUE(service::decode_u32(got[i].payload, &v));
    EXPECT_EQ(v, 0xa0b0c0d0u + i);
  }
}

TEST(ServiceWire, PayloadCodecsRoundTrip) {
  const std::vector<std::int32_t> codes = {-8, -1, 0, 1, 7, 2147483647,
                                           -2147483647 - 1};
  std::vector<std::int32_t> codes2;
  ASSERT_TRUE(service::decode_codes(service::encode_codes(codes), &codes2));
  EXPECT_EQ(codes2, codes);

  const std::vector<std::int64_t> samples = {0, -1, 8191, -8192,
                                             (1ll << 40), -(1ll << 40)};
  std::vector<std::int64_t> samples2;
  ASSERT_TRUE(
      service::decode_samples(service::encode_samples(samples), &samples2));
  EXPECT_EQ(samples2, samples);

  // Misaligned payloads must be rejected, not mis-parsed.
  std::vector<std::uint8_t> odd(5, 0);
  EXPECT_FALSE(service::decode_codes(odd, &codes2));
  EXPECT_FALSE(service::decode_samples(odd, &samples2));
  std::uint32_t v = 0;
  EXPECT_FALSE(service::decode_u32(odd, &v));
}

TEST(ServiceWire, ParserRejectsCorruption) {
  service::Frame f;
  f.type = service::FrameType::kData;
  f.channel = 3;
  f.payload = service::encode_codes(std::vector<std::int32_t>{1, 2, 3, 4});
  const auto good = service::encode_frame(f);

  {  // bad magic
    auto bytes = good;
    bytes[0] ^= 0xff;
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
  {  // flipped payload byte -> CRC mismatch
    auto bytes = good;
    bytes.back() ^= 0x01;
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
  {  // flipped CRC byte
    auto bytes = good;
    bytes[20] ^= 0x10;
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
  {  // unknown frame type
    auto bytes = good;
    bytes[4] = 0x7f;  // type field; CRC now also wrong, either way kBad
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
  {  // oversized payload length
    auto bytes = good;
    bytes[16] = 0xff;
    bytes[17] = 0xff;
    bytes[18] = 0xff;
    bytes[19] = 0x7f;
    service::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    service::Frame got;
    EXPECT_EQ(parser.next(&got), service::FrameParser::Result::kBad);
  }
}

TEST(ServiceWire, Crc32KnownVector) {
  // IEEE 802.3 check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(service::crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xcbf43926u);
}

TEST(ServiceWire, Crc32MatchesBytewiseReferenceAtAllSizes) {
  // The production crc32 dispatches between a bytewise tail, slicing-by-8,
  // and a PCLMULQDQ fold depending on length and CPU; every length around
  // the dispatch thresholds (and several large ones) must agree with the
  // plain bitwise definition.
  const auto reference = [](const std::uint8_t* p, std::size_t n) {
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i) {
      c ^= p[i];
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
    }
    return c ^ 0xffffffffu;
  };
  std::mt19937_64 rng(fuzz_seed(99));
  std::vector<std::uint8_t> buf(5000);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
  for (std::size_t len = 0; len <= 200; ++len) {
    ASSERT_EQ(service::crc32(buf.data(), len), reference(buf.data(), len))
        << "len=" << len;
  }
  for (const std::size_t len : {256u, 1000u, 4096u, 4999u}) {
    for (const std::size_t off : {0u, 1u, 3u}) {
      ASSERT_EQ(service::crc32(buf.data() + off, len - off),
                reference(buf.data() + off, len - off))
          << "len=" << len << " off=" << off;
    }
  }
}

TEST(ServiceWire, ChainConfigRoundTrip) {
  // Full ChainConfig serialization: decode(encode(cfg)) must drive a chain
  // to bit-identical output, and re-encoding the decoded config must give
  // back the same bytes (proving no field is dropped or re-derived).
  decim::ChainConfig cfg = decim::paper_chain_config();
  cfg.scale *= 0.75;            // distinguishable from every preset
  cfg.equalizer_frac_bits = 12;
  const auto blob = service::encode_chain_config(cfg);

  decim::ChainConfig back;
  ASSERT_TRUE(service::decode_chain_config(blob, &back));
  EXPECT_EQ(service::encode_chain_config(back), blob);

  std::mt19937_64 rng(fuzz_seed(5));
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 2048, rng);
  decim::DecimationChain a(cfg);
  decim::DecimationChain b(back);
  EXPECT_EQ(a.process(codes), b.process(codes));

  // A truncated or bit-flipped blob must be rejected, never mis-decoded.
  decim::ChainConfig junk;
  std::vector<std::uint8_t> truncated(blob.begin(), blob.end() - 3);
  EXPECT_FALSE(service::decode_chain_config(truncated, &junk));
  std::vector<std::uint8_t> flipped = blob;
  flipped[0] ^= 0x40;  // breaks the CFG1 magic
  EXPECT_FALSE(service::decode_chain_config(flipped, &junk));
}

TEST(ServiceWire, PresetsAreSharedAndBounded) {
  const auto p0 = service::preset_config(0);
  const auto p1 = service::preset_config(1);
  ASSERT_NE(p0, nullptr);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(service::preset_config(service::kNumPresets), nullptr);
  // Designed once, shared thereafter.
  EXPECT_EQ(service::preset_config(0).get(), p0.get());
  EXPECT_EQ(service::preset_config(1).get(), p1.get());
}

// --- session lifecycle over a live server --------------------------------

TEST_F(ServiceTest, LifecycleOpenStreamReconfigureDrainClose) {
  service::Server server(test_options("life"));
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());

  const std::uint32_t ch = 5;
  std::mt19937_64 rng(fuzz_seed(301));
  const auto part1 =
      stimulus_codes(verify::StimulusClass::kModulator, 2048, rng);
  const auto part2 = stimulus_codes(verify::StimulusClass::kPrbs, 1024, rng);

  // Reference: the exact sequence of chain operations the server performs.
  const auto cfg0 = service::preset_config(0);
  const auto cfg1 = service::preset_config(1);
  std::vector<std::int64_t> ref;
  decim::DecimationChain chain(*cfg0);
  for (auto s : chain.process(part1)) ref.push_back(s);
  decim::DecimationChain chain2(*cfg1);  // reconfigure = fresh chain
  for (auto s : chain2.process(part2)) ref.push_back(s);
  const auto pad = runtime::SessionRuntime::drain_pad_frames(chain2);
  for (auto s : chain2.process(std::vector<std::int32_t>(pad, 0))) {
    ref.push_back(s);
  }

  ASSERT_TRUE(client->open(ch, 0));
  ASSERT_TRUE(client->wait_ack_count(ch, 1, kWait)) << "OPEN not acked";
  ASSERT_TRUE(client->send_data(ch, part1));
  ASSERT_TRUE(client->reconfigure(ch, 1));
  ASSERT_TRUE(client->wait_ack_count(ch, 2, kWait)) << "CONFIG not acked";
  ASSERT_TRUE(client->send_data(ch, part2));
  ASSERT_TRUE(client->drain(ch));
  ASSERT_TRUE(client->wait_drained(ch, 1, kWait)) << "DRAIN marker missing";
  ASSERT_TRUE(client->close_channel(ch));
  ASSERT_TRUE(client->wait_ack_count(ch, 3, kWait)) << "CLOSE not acked";

  EXPECT_EQ(client->samples(ch), ref);
  EXPECT_TRUE(client->errors().empty());

  // The channel is gone: further DATA is answered with NOT_OPEN.
  ASSERT_TRUE(client->send_data(ch, part2));
  EXPECT_TRUE(client->wait_error(service::ErrorCode::kNotOpen, kWait));

  client.reset();
  server.stop();
}

TEST_F(ServiceTest, ServedOutputBitExactAllStimulusClasses) {
  const std::uint32_t seed = fuzz_seed(313);
  constexpr std::size_t kChannels = 3;
  constexpr std::size_t kFrames = 4096;
  constexpr std::size_t kChunk = 512;  // 8 DATA frames/channel: state carry

  for (int ci = 0; ci < verify::kNumStimulusClasses; ++ci) {
    const auto cls = static_cast<verify::StimulusClass>(ci);
    std::mt19937_64 rng(seed + static_cast<std::uint32_t>(ci));
    std::vector<std::vector<std::int32_t>> codes;
    for (std::size_t c = 0; c < kChannels; ++c) {
      codes.push_back(stimulus_codes(cls, kFrames, rng));
    }

    // Reference: scalar chains, counting fx requantization events.
    obs::Registry::instance().reset_all();
    const auto cfg = service::preset_config(0);
    std::vector<std::vector<std::int64_t>> ref;
    for (std::size_t c = 0; c < kChannels; ++c) {
      decim::DecimationChain chain(*cfg);
      ref.push_back(chain.process(codes[c]));
    }
    const auto ref_fx = fx_snapshot();

    obs::Registry::instance().reset_all();
    service::Server server(test_options("exact"));
    server.start();
    auto client = service::Client::connect_unix(server.unix_path());
    for (std::size_t c = 0; c < kChannels; ++c) {
      ASSERT_TRUE(client->open(static_cast<std::uint32_t>(c), 0));
    }
    for (std::size_t off = 0; off < kFrames; off += kChunk) {
      for (std::size_t c = 0; c < kChannels; ++c) {
        ASSERT_TRUE(client->send_data(
            static_cast<std::uint32_t>(c),
            std::span<const std::int32_t>(codes[c]).subspan(off, kChunk)));
      }
    }
    for (std::size_t c = 0; c < kChannels; ++c) {
      ASSERT_TRUE(client->wait_sample_count(static_cast<std::uint32_t>(c),
                                            ref[c].size(), kWait))
          << "class " << verify::stimulus_name(cls) << " channel " << c;
      EXPECT_EQ(client->samples(static_cast<std::uint32_t>(c)), ref[c])
          << "class " << verify::stimulus_name(cls) << " channel " << c;
    }
    EXPECT_TRUE(client->errors().empty());
    client.reset();
    server.stop();

    // Same samples AND the same per-sample saturate/round decisions.
    EXPECT_EQ(fx_snapshot(), ref_fx)
        << "class " << verify::stimulus_name(cls);
  }
}

TEST_F(ServiceTest, DeterministicAcrossRuntimeThreadCounts) {
  const std::uint32_t seed = fuzz_seed(331);
  constexpr std::size_t kChannels = 8;
  constexpr std::size_t kFrames = 2048;
  constexpr std::size_t kChunk = 256;
  std::mt19937_64 rng(seed);
  std::vector<std::vector<std::int32_t>> codes;
  for (std::size_t c = 0; c < kChannels; ++c) {
    codes.push_back(
        stimulus_codes(verify::StimulusClass::kUniform, kFrames, rng));
  }

  std::vector<std::vector<std::vector<std::int64_t>>> results;
  for (const char* threads : {"1", "2", "8"}) {
    ::setenv("DSADC_RUNTIME_THREADS", threads, 1);
    service::ServerOptions o;
    o.unix_path = service::net::unique_socket_path("det");
    o.workers = 0;  // resolve from DSADC_RUNTIME_THREADS
    o.shards = 4;
    service::Server server(o);
    server.start();
    auto client = service::Client::connect_unix(server.unix_path());
    for (std::size_t c = 0; c < kChannels; ++c) {
      ASSERT_TRUE(client->open(static_cast<std::uint32_t>(c), 0));
    }
    for (std::size_t off = 0; off < kFrames; off += kChunk) {
      for (std::size_t c = 0; c < kChannels; ++c) {
        ASSERT_TRUE(client->send_data(
            static_cast<std::uint32_t>(c),
            std::span<const std::int32_t>(codes[c]).subspan(off, kChunk)));
      }
    }
    std::vector<std::vector<std::int64_t>> run;
    for (std::size_t c = 0; c < kChannels; ++c) {
      ASSERT_TRUE(client->wait_sample_count(static_cast<std::uint32_t>(c),
                                            (kFrames / 16), kWait))
          << "threads=" << threads << " channel " << c;
      run.push_back(client->samples(static_cast<std::uint32_t>(c)));
    }
    EXPECT_TRUE(client->errors().empty()) << "threads=" << threads;
    results.push_back(std::move(run));
    client.reset();
    server.stop();
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i], results[0])
        << "worker count must not change served samples";
  }
}

TEST_F(ServiceTest, TcpRoundTrip) {
  service::ServerOptions o;
  o.tcp = true;  // ephemeral port; no unix listener
  o.workers = 2;
  service::Server server(o);
  server.start();
  ASSERT_NE(server.tcp_port(), 0);

  std::mt19937_64 rng(fuzz_seed(347));
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 1024, rng);
  decim::DecimationChain chain(*service::preset_config(0));
  const auto ref = chain.process(codes);

  auto client = service::Client::connect_tcp("127.0.0.1", server.tcp_port());
  const std::uint32_t ch = 9;
  ASSERT_TRUE(client->open(ch, 0));
  ASSERT_TRUE(client->send_data(ch, codes));
  ASSERT_TRUE(client->wait_sample_count(ch, ref.size(), kWait));
  EXPECT_EQ(client->samples(ch), ref);
  EXPECT_TRUE(client->errors().empty());
  client.reset();
  server.stop();
}

TEST_F(ServiceTest, TenantsAreIsolatedByConnection) {
  // Two connections use the SAME channel id with different data; each
  // must get exactly its own stream back (session key includes conn id).
  service::Server server(test_options("iso"));
  server.start();

  std::mt19937_64 rng(fuzz_seed(353));
  const auto codes_a =
      stimulus_codes(verify::StimulusClass::kModulator, 2048, rng);
  const auto codes_b = stimulus_codes(verify::StimulusClass::kPrbs, 2048, rng);
  const auto cfg = service::preset_config(0);
  decim::DecimationChain chain_a(*cfg), chain_b(*cfg);
  const auto ref_a = chain_a.process(codes_a);
  const auto ref_b = chain_b.process(codes_b);

  auto a = service::Client::connect_unix(server.unix_path());
  auto b = service::Client::connect_unix(server.unix_path());
  const std::uint32_t ch = 77;
  ASSERT_TRUE(a->open(ch, 0));
  ASSERT_TRUE(b->open(ch, 0));
  ASSERT_TRUE(a->send_data(ch, codes_a));
  ASSERT_TRUE(b->send_data(ch, codes_b));
  ASSERT_TRUE(a->wait_sample_count(ch, ref_a.size(), kWait));
  ASSERT_TRUE(b->wait_sample_count(ch, ref_b.size(), kWait));
  EXPECT_EQ(a->samples(ch), ref_a);
  EXPECT_EQ(b->samples(ch), ref_b);
  EXPECT_TRUE(a->errors().empty());
  EXPECT_TRUE(b->errors().empty());
  a.reset();
  b.reset();
  server.stop();
}

TEST_F(ServiceTest, PerTenantMetricsAccumulate) {
  service::Server server(test_options("metrics"));
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());

  std::mt19937_64 rng(fuzz_seed(359));
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 512, rng);
  const std::uint32_t ch = 4;
  ASSERT_TRUE(client->open(ch, 0));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(client->send_data(ch, codes));
  ASSERT_TRUE(client->wait_sample_count(ch, 3 * codes.size() / 16, kWait));
  client.reset();
  server.stop();

  auto& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter("service.accepted").value(), 3u);
  EXPECT_EQ(reg.counter("service.accepted.ch4").value(), 3u);
  EXPECT_EQ(reg.counter("service.shed").value(), 0u);
  EXPECT_EQ(reg.counter("service.connections").value(), 1u);
  EXPECT_GT(reg.gauge("service.throughput_sps.ch4").value(), 0.0);
}

TEST_F(ServiceTest, OpenWithSerializedConfigServesBitExact) {
  // OPEN and CONFIG carrying a full serialized ChainConfig (not a preset
  // id): the served stream must match a local chain built from the same
  // config, before and after an over-the-wire reconfigure.
  service::Server server(test_options("cfgwire"));
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());

  decim::ChainConfig cfg = decim::paper_chain_config();
  cfg.scale *= 0.75;
  std::mt19937_64 rng(fuzz_seed(41));
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 1024, rng);
  decim::DecimationChain ref(cfg);
  const auto expect1 = ref.process(codes);

  const std::uint32_t ch = 9;
  ASSERT_TRUE(client->open_config(ch, cfg));
  ASSERT_TRUE(client->send_data(ch, codes));
  ASSERT_TRUE(client->wait_sample_count(ch, expect1.size(), kWait));
  EXPECT_EQ(client->samples(ch), expect1);

  // Reconfigure with another serialized config: fresh chain, new scale.
  decim::ChainConfig cfg2 = cfg;
  cfg2.scale *= 0.5;
  decim::DecimationChain ref2(cfg2);
  const auto expect2 = ref2.process(codes);
  ASSERT_TRUE(client->reconfigure_config(ch, cfg2));
  ASSERT_TRUE(client->send_data(ch, codes));
  ASSERT_TRUE(
      client->wait_sample_count(ch, expect1.size() + expect2.size(), kWait));
  auto got = client->samples(ch);
  got.erase(got.begin(),
            got.begin() + static_cast<std::ptrdiff_t>(expect1.size()));
  EXPECT_EQ(got, expect2);
  EXPECT_TRUE(client->errors().empty());
  client.reset();
  server.stop();
}

TEST_F(ServiceTest, LockstepCohortServesBitExactOverWire) {
  // End-to-end batch path: two connections x 16 lockstep channels on the
  // same config stream equal-length blocks; the server coalesces them
  // into ChainBank rounds, and every channel must still see the exact
  // scalar-chain samples. A mid-stream reconfigure on one channel forces
  // a dissolve; its stream and its former groupmates' streams must stay
  // bit-exact through it.
  service::Server server(test_options("lockstep"));
  server.start();
  constexpr std::size_t kConns = 2;
  constexpr std::size_t kPerConn = 16;
  constexpr std::size_t kBlocks = 4;
  constexpr std::size_t kFrames = 256;

  std::mt19937_64 rng(fuzz_seed(77));
  std::vector<std::vector<std::int32_t>> blocks;
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const auto cls = static_cast<verify::StimulusClass>(
        b % verify::kNumStimulusClasses);
    blocks.push_back(stimulus_codes(cls, kFrames, rng));
  }

  std::vector<std::unique_ptr<service::Client>> clients;
  for (std::size_t c = 0; c < kConns; ++c) {
    clients.push_back(service::Client::connect_unix(server.unix_path()));
    for (std::size_t k = 0; k < kPerConn; ++k) {
      const auto ch = static_cast<std::uint32_t>(c * kPerConn + k);
      ASSERT_TRUE(clients[c]->open(ch, 0, /*lockstep=*/true));
    }
  }
  for (std::size_t b = 0; b < kBlocks; ++b) {
    for (std::size_t c = 0; c < kConns; ++c) {
      for (std::size_t k = 0; k < kPerConn; ++k) {
        const auto ch = static_cast<std::uint32_t>(c * kPerConn + k);
        ASSERT_TRUE(clients[c]->send_data(ch, blocks[b]));
      }
    }
    if (b == 1) {
      // Channel 0 leaves the cohort mid-stream: preset 0 -> preset 0 is
      // still a rebuild, so its group dissolves and replays scalar.
      ASSERT_TRUE(clients[0]->reconfigure(0, 0));
    }
  }

  decim::DecimationChain ref(*service::preset_config(0));
  std::vector<std::int64_t> expect_full;
  std::vector<std::int64_t> expect_reconf;  // chain reset after block 1
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const auto out = ref.process(blocks[b]);
    expect_full.insert(expect_full.end(), out.begin(), out.end());
    if (b <= 1) {
      expect_reconf.insert(expect_reconf.end(), out.begin(), out.end());
    }
  }
  decim::DecimationChain ref2(*service::preset_config(0));
  for (std::size_t b = 2; b < kBlocks; ++b) {
    const auto out = ref2.process(blocks[b]);
    expect_reconf.insert(expect_reconf.end(), out.begin(), out.end());
  }

  for (std::size_t c = 0; c < kConns; ++c) {
    for (std::size_t k = 0; k < kPerConn; ++k) {
      const auto ch = static_cast<std::uint32_t>(c * kPerConn + k);
      const auto& expect = ch == 0 ? expect_reconf : expect_full;
      ASSERT_TRUE(clients[c]->wait_sample_count(ch, expect.size(), kWait))
          << "ch=" << ch;
      EXPECT_EQ(clients[c]->samples(ch), expect) << "ch=" << ch;
    }
    EXPECT_TRUE(clients[c]->errors().empty());
  }
  clients.clear();
  server.stop();
}

}  // namespace
