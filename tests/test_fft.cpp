// FFT correctness: known transforms, linearity, Parseval, inverse round
// trip, and real-signal helper behaviour across sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <random>

#include "src/dsp/fft.h"

namespace {

using dsadc::dsp::fft;
using dsadc::dsp::fft_inplace;
using dsadc::dsp::fft_real;
using dsadc::dsp::is_power_of_two;
using dsadc::dsp::next_power_of_two;
using Cvec = std::vector<std::complex<double>>;

TEST(FftUtil, PowerOfTwoPredicates) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(1023));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
  EXPECT_EQ(next_power_of_two(1025), 2048u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  Cvec x(3, {1.0, 0.0});
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
}

TEST(Fft, ImpulseIsFlat) {
  Cvec x(16, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  const Cvec y = fft(x);
  for (const auto& v : y) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcIsSum) {
  Cvec x(8, {2.5, 0.0});
  const Cvec y = fft(x);
  EXPECT_NEAR(y[0].real(), 20.0, 1e-12);
  for (std::size_t k = 1; k < y.size(); ++k) {
    EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneBin) {
  const std::size_t n = 64;
  Cvec x(n);
  const double f = 5.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 2.0 * std::numbers::pi * f * static_cast<double>(i);
    x[i] = {std::cos(w), std::sin(w)};
  }
  const Cvec y = fft(x);
  EXPECT_NEAR(std::abs(y[5]), static_cast<double>(n), 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == 5) continue;
    EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-8) << "bin " << k;
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Cvec x(n);
  for (auto& v : x) v = {dist(rng), dist(rng)};
  Cvec y = fft(x);
  fft_inplace(y, /*inverse=*/true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Cvec x(n);
  for (auto& v : x) v = {dist(rng), dist(rng)};
  const Cvec y = fft(x);
  double ex = 0.0, ey = 0.0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, ex * static_cast<double>(n), 1e-6 * ex * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 4, 8, 64, 256, 4096));

TEST(Fft, LinearityHolds) {
  const std::size_t n = 32;
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Cvec a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {dist(rng), dist(rng)};
    b[i] = {dist(rng), dist(rng)};
    sum[i] = a[i] + 3.0 * b[i];
  }
  const Cvec fa = fft(a), fb = fft(b), fs = fft(sum);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(fs[k] - (fa[k] + 3.0 * fb[k])), 0.0, 1e-9);
  }
}

TEST(FftReal, PadsToPowerOfTwo) {
  std::vector<double> x(100, 1.0);
  const Cvec y = fft_real(x);
  EXPECT_EQ(y.size(), 128u);
  EXPECT_NEAR(y[0].real(), 100.0, 1e-9);
}

TEST(FftReal, ConjugateSymmetry) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x(64);
  for (auto& v : x) v = dist(rng);
  const Cvec y = fft_real(x);
  for (std::size_t k = 1; k < 32; ++k) {
    EXPECT_NEAR(y[k].real(), y[64 - k].real(), 1e-10);
    EXPECT_NEAR(y[k].imag(), -y[64 - k].imag(), 1e-10);
  }
}

}  // namespace
