// Composite-response utilities behind Figs. 8-11.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/response.h"
#include "src/dsp/freqz.h"

namespace {

using namespace dsadc;

class ResponseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new decim::ChainConfig(decim::paper_chain_config());
  }
  static void TearDownTestSuite() { delete cfg_; }
  static decim::ChainConfig* cfg_;
};

decim::ChainConfig* ResponseTest::cfg_ = nullptr;

TEST_F(ResponseTest, ImpulseAndPointEvaluationsAgree) {
  const auto h = core::composite_impulse_response(*cfg_);
  for (double f_hz : {1e6, 5e6, 15e6, 22e6, 40e6, 100e6}) {
    const double from_taps =
        std::abs(dsp::fir_response_at(h, f_hz / cfg_->input_rate_hz));
    const double direct = core::composite_magnitude(*cfg_, f_hz);
    EXPECT_NEAR(from_taps, direct, 1e-6 * (1.0 + direct)) << f_hz;
  }
}

TEST_F(ResponseTest, CompositeIsLinearPhase) {
  const auto h = core::composite_impulse_response(*cfg_);
  EXPECT_TRUE(dsp::is_symmetric(h, 1e-9));
}

TEST_F(ResponseTest, DcGainNearScale) {
  // All filter stages are unity-gain at DC; the composite DC gain is the
  // scaler constant.
  // The equalizer's equiripple deviation (about +-0.06 for the paper's
  // 65 taps) applies at DC too.
  EXPECT_NEAR(core::composite_magnitude(*cfg_, 0.0), cfg_->scale,
              0.08 * cfg_->scale);
}

TEST_F(ResponseTest, StopbandMeetsTableOne) {
  const double att = core::composite_stopband_atten_db(*cfg_, 23e6);
  EXPECT_GE(att, 85.0);  // Table I: > 85 dB
}

TEST_F(ResponseTest, PassbandRippleWithinTableOne) {
  const double ripple = core::composite_passband_ripple_db(*cfg_, 1e6, 20e6);
  EXPECT_LT(ripple, 1.5);  // 65-tap paper equalizer: ~1 dB (Table I: < 1)
}

TEST_F(ResponseTest, PreEqualizerDroopMatchesPaperFigure10) {
  // Sinc + HBF droop at the band edge: about -10.5 dB (sinc -4.5, HBF -6).
  const double droop20 =
      20.0 * std::log10(core::pre_equalizer_magnitude(*cfg_, 20e6));
  EXPECT_NEAR(droop20, -11.0, 1.5);
  const double droop5 =
      20.0 * std::log10(core::pre_equalizer_magnitude(*cfg_, 5e6));
  EXPECT_GT(droop5, -0.5);
}

TEST_F(ResponseTest, AliasProtectionIdentifiesEdgeLeakage) {
  // The strict all-images metric is limited by the band-edge slots around
  // 80 MHz +- band edge; it must be well below the primary-image figure.
  const double strict = core::composite_alias_protection_db(*cfg_, 17e6, 512);
  const double primary = core::composite_stopband_atten_db(*cfg_, 23e6, 512);
  EXPECT_LT(strict, primary);
  EXPECT_GT(strict, 40.0);
}

TEST_F(ResponseTest, DeepNotchesAtOutputRateImages) {
  // Composite response has Sinc nulls at multiples of 80 MHz.
  for (double f : {80e6, 160e6, 240e6}) {
    EXPECT_LT(core::composite_magnitude(*cfg_, f), 1e-6);
  }
}

}  // namespace
