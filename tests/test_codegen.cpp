// JIT codegen engine: selection, fallback, cache, and bit-exactness.
//
// The codegen backend (src/rtl/codegen.h) must be a pure accelerator:
// engine choice can change throughput only, never results or the public
// API's behavior. Coverage:
//
//   * engine selection and the fallback lattice (kOff, DSADC_CODEGEN=off
//     veto, missing/bogus compiler) -- every fallback must land on the
//     tape engine and stay bit-identical to the interpreter;
//   * the content-hash kernel cache: miss then hit, and eviction +
//     recompile when a cached .so is unloadable;
//   * a reg-of-const netlist (the t==0 const-commit-after-capture
//     ordering that distinguishes the engines' schedules);
//   * the flattened paper chain across all 9 stimulus classes, three
//     engines compared (interpreter reference, tape, codegen);
//   * a seeded random-netlist sweep, each netlist checked in source form
//     and in proof-carrying optimized form, parallelized over a worker
//     pool.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "src/analyze/opt/opt.h"
#include "src/decimator/chain.h"
#include "src/rtl/builders.h"
#include "src/rtl/codegen.h"
#include "src/rtl/compiled_sim.h"
#include "src/rtl/sim.h"
#include "src/verify/parallel.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;
using namespace dsadc::rtl;
using Codegen = CompiledSimOptions::Codegen;

namespace fs = std::filesystem;

/// Scoped environment override (unset when `value` is nullptr).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// Per-process scratch cache directory, shared by all tests in this
/// binary so the paper chain is compiled at most once per run.
const std::string& cache_dir() {
  static const std::string dir = [] {
    std::string tmpl = fs::temp_directory_path() / "dsadc-cg-test-XXXXXX";
    char* p = ::mkdtemp(tmpl.data());
    return std::string(p ? p : "/tmp/dsadc-cg-test");
  }();
  return dir;
}

bool toolchain_available() {
  static const bool ok = [] {
    Module m("probe");
    m.output("y", m.input("in", 4));
    EnvGuard dir("DSADC_CODEGEN_CACHE_DIR", cache_dir().c_str());
    CompiledSimulator sim(m, {.codegen = Codegen::kOn});
    return sim.engine() == SimEngine::kCodegen;
  }();
  return ok;
}

/// Interpreter reference vs one compiled engine: outputs, tick counts,
/// update counts, and toggle counts must all match.
void expect_matches_reference(const SimResult& ref, const Module& m,
                              NodeId in,
                              const std::vector<std::int64_t>& stim,
                              Codegen mode, SimEngine expected_engine,
                              const std::string& what) {
  CompiledSimulator sim(m, {.codegen = mode});
  ASSERT_EQ(sim.engine(), expected_engine)
      << what << ": " << sim.engine_detail();
  const SimResult got =
      sim.run({{in, stim}}, CompiledRunOptions{.activity = true});
  ASSERT_EQ(ref.outputs.size(), got.outputs.size()) << what;
  for (const auto& [id, stream] : ref.outputs) {
    const auto it = got.outputs.find(id);
    ASSERT_NE(it, got.outputs.end()) << what;
    EXPECT_EQ(stream, it->second) << what << ": output node " << id;
  }
  EXPECT_EQ(ref.activity.base_ticks, got.activity.base_ticks) << what;
  EXPECT_EQ(ref.activity.updates, got.activity.updates) << what;
  EXPECT_EQ(ref.activity.bit_toggles, got.activity.bit_toggles) << what;
}

/// Three-way engine agreement on one stimulus.
void expect_three_way(const Module& m, NodeId in,
                      const std::vector<std::int64_t>& stim,
                      const std::string& what) {
  Simulator interp(m);
  const SimResult ref = interp.run({{in, stim}});
  expect_matches_reference(ref, m, in, stim, Codegen::kOff, SimEngine::kTape,
                           what + " [tape]");
  if (toolchain_available()) {
    expect_matches_reference(ref, m, in, stim, Codegen::kOn,
                             SimEngine::kCodegen, what + " [codegen]");
  }
}

std::vector<std::int64_t> ramp(std::size_t n, std::int64_t lo,
                               std::int64_t hi) {
  std::vector<std::int64_t> v(n);
  std::int64_t x = lo;
  for (auto& s : v) {
    s = x;
    if (++x > hi) x = lo;
  }
  return v;
}

struct Built {
  Module m{"small"};
  NodeId in;
};

Built small_module() {
  Built b;
  b.in = b.m.input("in", 6);
  const NodeId d = b.m.decimate(b.in, 2);
  const NodeId s = b.m.add(d, d, 8);
  b.m.output("y", b.m.reg(s));
  return b;
}

TEST(CodegenSelection, OffOptionSelectsTape) {
  const Built b = small_module();
  CompiledSimulator sim(b.m, {.codegen = Codegen::kOff});
  EXPECT_EQ(sim.engine(), SimEngine::kTape);
}

TEST(CodegenSelection, AutoFollowsEnvDefaultOff) {
  EnvGuard env("DSADC_CODEGEN", nullptr);
  const Built b = small_module();
  CompiledSimulator sim(b.m);  // kAuto
  EXPECT_EQ(sim.engine(), SimEngine::kTape);
}

TEST(CodegenSelection, EnvOffVetoesExplicitOn) {
  EnvGuard env("DSADC_CODEGEN", "off");
  const Built b = small_module();
  CompiledSimulator sim(b.m, {.codegen = Codegen::kOn});
  EXPECT_EQ(sim.engine(), SimEngine::kTape);
  EXPECT_NE(sim.engine_detail().find("DSADC_CODEGEN"), std::string::npos)
      << sim.engine_detail();
}

TEST(CodegenSelection, MissingCompilerFallsBackBitIdentical) {
  EnvGuard cxx("DSADC_CODEGEN_CXX", "/nonexistent/definitely-not-a-cxx");
  const Built b = small_module();
  const auto stim = ramp(64, -32, 31);

  Simulator interp(b.m);
  const SimResult ref = interp.run({{b.in, stim}});
  // kOn with a bogus toolchain must degrade to the tape engine and stay
  // bit-identical -- the fallback is transparent to results.
  expect_matches_reference(ref, b.m, b.in, stim, Codegen::kOn,
                           SimEngine::kTape, "missing compiler fallback");
  CompiledSimulator sim(b.m, {.codegen = Codegen::kOn});
  EXPECT_NE(sim.engine_detail().find("DSADC_CODEGEN_CXX"),
            std::string::npos)
      << sim.engine_detail();
}

TEST(CodegenCache, SecondBuildHitsCache) {
  if (!toolchain_available()) GTEST_SKIP() << "no system compiler";
  std::string tmpl = fs::temp_directory_path() / "dsadc-cg-hit-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
  EnvGuard dir("DSADC_CODEGEN_CACHE_DIR", tmpl.c_str());

  const Built b = small_module();
  CompiledSimulator first(b.m, {.codegen = Codegen::kOn});
  ASSERT_EQ(first.engine(), SimEngine::kCodegen) << first.engine_detail();
  EXPECT_FALSE(first.codegen_cache_hit());
  EXPECT_TRUE(fs::exists(first.codegen_so_path())) << first.codegen_so_path();

  CompiledSimulator second(b.m, {.codegen = Codegen::kOn});
  ASSERT_EQ(second.engine(), SimEngine::kCodegen) << second.engine_detail();
  EXPECT_TRUE(second.codegen_cache_hit());
  EXPECT_EQ(second.codegen_so_path(), first.codegen_so_path());
  fs::remove_all(tmpl);
}

TEST(CodegenCache, CorruptSoIsEvictedAndRecompiled) {
  if (!toolchain_available()) GTEST_SKIP() << "no system compiler";
  std::string tmpl = fs::temp_directory_path() / "dsadc-cg-evict-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
  EnvGuard dir("DSADC_CODEGEN_CACHE_DIR", tmpl.c_str());

  const Built b = small_module();
  const std::string so = [&] {
    CompiledSimulator sim(b.m, {.codegen = Codegen::kOn});
    EXPECT_EQ(sim.engine(), SimEngine::kCodegen) << sim.engine_detail();
    return sim.codegen_so_path();
  }();
  ASSERT_FALSE(so.empty());
  {
    // Clobber the cached kernel with garbage that dlopen must reject.
    std::ofstream out(so, std::ios::binary | std::ios::trunc);
    out << "this is not a shared object";
  }

  CompiledSimulator sim(b.m, {.codegen = Codegen::kOn});
  ASSERT_EQ(sim.engine(), SimEngine::kCodegen)
      << "corrupt cache entry was not evicted: " << sim.engine_detail();
  EXPECT_FALSE(sim.codegen_cache_hit());
  const auto stim = ramp(64, -32, 31);
  Simulator interp(b.m);
  const SimResult ref = interp.run({{b.in, stim}});
  expect_matches_reference(ref, b.m, b.in, stim, Codegen::kOn,
                           SimEngine::kCodegen, "recompiled after eviction");
  fs::remove_all(tmpl);
}

TEST(CodegenExactness, RegOfConstAtTickZero) {
  // Registers fed by constants exercise the t==0 ordering: the initial
  // capture must read the pre-commit (zero) value, the const committing
  // only after that tick's captures. Both compiled engines must agree
  // with the interpreter on the full output stream including sample 0.
  EnvGuard dir("DSADC_CODEGEN_CACHE_DIR", cache_dir().c_str());
  Module m("regconst");
  const NodeId in = m.input("in", 4);
  const NodeId c = m.constant(21, 8, 1);
  const NodeId r1 = m.reg(c);
  const NodeId r2 = m.reg(r1);
  const NodeId s = m.add(m.add(in, r1, 9), r2, 10);
  m.output("y", s);
  expect_three_way(m, in, ramp(40, -8, 7), "reg-of-const");
}

TEST(CodegenExactness, PaperChainAllStimulusClasses) {
  EnvGuard dir("DSADC_CODEGEN_CACHE_DIR", cache_dir().c_str());
  const auto cfg = decim::paper_chain_config();
  const auto chain = build_chain(cfg);

  Simulator interp(chain.full);
  CompiledSimulator tape(chain.full, {.codegen = Codegen::kOff});
  const bool cg_ok = toolchain_available();
  CompiledSimulator cg(chain.full,
                       {.codegen = cg_ok ? Codegen::kOn : Codegen::kOff});
  if (cg_ok) {
    ASSERT_EQ(cg.engine(), SimEngine::kCodegen) << cg.engine_detail();
  }

  for (int cls = 0; cls < verify::kNumStimulusClasses; ++cls) {
    const auto c = static_cast<verify::StimulusClass>(cls);
    std::mt19937_64 rng(0xC0DE6E00 + static_cast<std::uint64_t>(cls));
    const auto stim =
        verify::make_stimulus(c, 384, cfg.input_format, rng);
    const std::string what =
        std::string("paper chain / ") + verify::stimulus_name(c);

    const SimResult ref = interp.run({{chain.in, stim}});
    for (CompiledSimulator* sim : {&tape, cg_ok ? &cg : &tape}) {
      const SimResult got =
          sim->run({{chain.in, stim}}, CompiledRunOptions{.activity = true});
      ASSERT_EQ(ref.outputs.size(), got.outputs.size()) << what;
      for (const auto& [id, stream] : ref.outputs) {
        EXPECT_EQ(stream, got.outputs.at(id)) << what << " node " << id;
      }
      EXPECT_EQ(ref.activity.base_ticks, got.activity.base_ticks) << what;
      EXPECT_EQ(ref.activity.updates, got.activity.updates) << what;
      EXPECT_EQ(ref.activity.bit_toggles, got.activity.bit_toggles) << what;
    }
  }
}

TEST(CodegenExactness, RandomNetlistSweepWithOptimizedForms) {
  EnvGuard dir("DSADC_CODEGEN_CACHE_DIR", cache_dir().c_str());
  // 110 seeds x (source + optimized) = 220 netlist checks. Each worker
  // draws an independent CIC spec and stimulus from its seed; the
  // optimized form goes through the proof-carrying rewriter, so the
  // sweep also covers netlists whose op mix differs from any builder's.
  constexpr std::size_t kSeeds = 110;
  std::mutex mu;
  std::vector<std::string> failures;
  verify::parallel_for_index(kSeeds, [&](std::size_t i) {
    std::mt19937_64 rng(0x5EED0000 + i);
    std::uniform_int_distribution<int> order(1, 5);
    std::uniform_int_distribution<int> decim_f(2, 12);
    std::uniform_int_distribution<int> bits(2, 8);
    std::uniform_int_distribution<int> cls(0,
                                           verify::kNumStimulusClasses - 1);
    const design::CicSpec spec{order(rng), decim_f(rng), bits(rng)};
    const auto stage = build_cic(spec);
    const fx::Format fmt{spec.input_bits, 0};
    const auto stim = verify::make_stimulus(
        static_cast<verify::StimulusClass>(cls(rng)), 160, fmt, rng);
    const auto opt = analyze::opt::optimize(stage.module);
    for (const Module* m : {&stage.module, &opt.module}) {
      const std::string what = "seed " + std::to_string(i) +
                               (m == &opt.module ? " optimized" : " source");
      Simulator interp(*m);
      const SimResult ref = interp.run({{stage.in, stim}});
      const Codegen modes[] = {Codegen::kOff, Codegen::kOn};
      for (Codegen mode : modes) {
        if (mode == Codegen::kOn && !toolchain_available()) continue;
        CompiledSimulator sim(*m, {.codegen = mode});
        if (mode == Codegen::kOn &&
            sim.engine() != SimEngine::kCodegen) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(what + ": codegen not selected: " +
                             sim.engine_detail());
          continue;
        }
        const SimResult got = sim.run({{stage.in, stim}},
                                      CompiledRunOptions{.activity = true});
        if (got.outputs != ref.outputs ||
            got.activity.updates != ref.activity.updates ||
            got.activity.bit_toggles != ref.activity.bit_toggles) {
          std::lock_guard<std::mutex> lock(mu);
          failures.push_back(what + ": engines diverge");
        }
      }
    }
  });
  for (const auto& f : failures) ADD_FAILURE() << f;
}

}  // namespace
