// The Fig.-1 top-level ADC object.
#include <gtest/gtest.h>

#include "src/core/adc.h"
#include "src/dsp/spectrum.h"
#include "src/modulator/dsm.h"

namespace {

using namespace dsadc;
using core::DeltaSigmaAdc;

class AdcTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    adc_ = new DeltaSigmaAdc(DeltaSigmaAdc::paper_instance());
  }
  static void TearDownTestSuite() { delete adc_; }
  static DeltaSigmaAdc* adc_;
};

DeltaSigmaAdc* AdcTest::adc_ = nullptr;

TEST_F(AdcTest, RatesAndFormat) {
  EXPECT_NEAR(adc_->input_rate_hz(), 640e6, 1.0);
  EXPECT_NEAR(adc_->output_rate_hz(), 40e6, 1.0);
  EXPECT_EQ(adc_->output_bits(), 14);
  EXPECT_GT(adc_->latency_output_samples(), 20.0);
  EXPECT_LT(adc_->latency_output_samples(), 100.0);
}

TEST_F(AdcTest, ConvertsToneAt14Bits) {
  adc_->reset();
  const auto u = mod::coherent_sine(1 << 16, 5e6, 640e6, 0.81, nullptr);
  const auto out = adc_->convert(u);
  ASSERT_TRUE(adc_->last_conversion_stable());
  ASSERT_EQ(out.size(), (std::size_t{1} << 16) / 16);
  std::vector<double> steady(out.begin() + 512, out.end());
  const auto snr = dsp::measure_tone_snr(steady, 40e6, 20e6,
                                         dsp::WindowKind::kKaiser, 8, 8, 22.0);
  EXPECT_GT(snr.snr_db, 82.0);
  EXPECT_NEAR(snr.signal_freq_hz, 5e6, 0.1e6);
}

TEST_F(AdcTest, RawWordsMatchRealOutputs) {
  adc_->reset();
  const auto u = mod::coherent_sine(4096, 5e6, 640e6, 0.5, nullptr);
  const auto out = adc_->convert(u);
  const auto& raw = adc_->last_raw();
  ASSERT_EQ(out.size(), raw.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], static_cast<double>(raw[i]) / 8192.0, 1e-12);
  }
}

TEST_F(AdcTest, OverdriveReportedUnstable) {
  adc_->reset();
  const auto u = mod::coherent_sine(1 << 14, 5e6, 640e6, 1.2, nullptr);
  (void)adc_->convert(u);
  EXPECT_FALSE(adc_->last_conversion_stable());
  adc_->reset();
  EXPECT_TRUE(adc_->last_conversion_stable());
}

TEST_F(AdcTest, StreamingAcrossCalls) {
  adc_->reset();
  const auto u = mod::coherent_sine(8192, 5e6, 640e6, 0.5, nullptr);
  const auto whole = adc_->convert(u);
  adc_->reset();
  std::vector<double> pieced;
  for (std::size_t pos = 0; pos < u.size(); pos += 2048) {
    const auto part = adc_->convert(
        std::span<const double>(u.data() + pos, 2048));
    pieced.insert(pieced.end(), part.begin(), part.end());
  }
  ASSERT_EQ(pieced.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(pieced[i], whole[i]) << i;
  }
}

}  // namespace
