// Brute-force soundness: the proof-carrying optimizer against randomized
// netlists (exhaustive input sweeps) and the paper chain under every
// stimulus class of the differential-harness library.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <map>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "src/analyze/opt/equiv.h"
#include "src/analyze/opt/opt.h"
#include "src/analyze/opt/proof.h"
#include "src/decimator/chain.h"
#include "src/rtl/builders.h"
#include "src/rtl/ir.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;
using namespace dsadc::analyze;
using namespace dsadc::analyze::opt;
using namespace dsadc::rtl;

// ---------------------------------------------------------------------------
// Randomized netlist generator. Respects every builder invariant: widths in
// [1, 62], operands share a clock domain, at most one decimator (factor 2),
// small requant shifts. Single input so an exhaustive stimulus is feasible.

struct GenNetlist {
  Module m{"fuzz"};
  NodeId in = kInvalidNode;
  int in_width = 0;
};

std::int64_t rand_in(std::mt19937_64& rng, std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  rng() % static_cast<std::uint64_t>(hi - lo + 1));
}

GenNetlist random_netlist(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  GenNetlist g;
  g.in_width = static_cast<int>(rand_in(rng, 1, 4));
  g.in = g.m.input("in", g.in_width);

  // Node pool per clock domain; operands must come from one domain.
  std::map<int, std::vector<NodeId>> pool;
  pool[1].push_back(g.in);
  // A couple of constants (including 0 to seed identity/fold rewrites).
  pool[1].push_back(g.m.constant(0, 4));
  pool[1].push_back(
      g.m.constant(rand_in(rng, -8, 7), static_cast<int>(rand_in(rng, 2, 8))));

  bool used_decimate = false;
  const int ops = static_cast<int>(rand_in(rng, 4, 28));
  for (int i = 0; i < ops; ++i) {
    // Pick a domain (weighted towards the base domain where most nodes are).
    auto it = pool.begin();
    std::advance(it, rand_in(rng, 0, static_cast<std::int64_t>(pool.size()) - 1));
    const int div = it->first;
    const std::vector<NodeId>& nodes = it->second;
    const auto pick = [&]() {
      return nodes[static_cast<std::size_t>(
          rand_in(rng, 0, static_cast<std::int64_t>(nodes.size()) - 1))];
    };
    const int width = static_cast<int>(rand_in(rng, 1, 16));
    NodeId id = kInvalidNode;
    switch (rand_in(rng, 0, 9)) {
      case 0:
        id = g.m.add(pick(), pick(), width);
        break;
      case 1:
        id = g.m.sub(pick(), pick(), width);
        break;
      case 2:
        id = g.m.neg(pick(), width);
        break;
      case 3:
        id = g.m.shl(pick(), static_cast<int>(rand_in(rng, 0, 6)));
        break;
      case 4:
        id = g.m.shr(pick(), static_cast<int>(rand_in(rng, 0, 6)));
        break;
      case 5:
        id = g.m.mux(pick(), pick(), pick(), width);
        break;
      case 6:
        id = g.m.reg(pick());
        break;
      case 7:
        id = g.m.constant(rand_in(rng, -128, 127), width, div);
        break;
      case 8: {
        const int fw = static_cast<int>(rand_in(rng, 3, 12));
        const fx::Format fmt{fw, static_cast<int>(rand_in(rng, 0, 2))};
        const auto r = rand_in(rng, 0, 1) != 0 ? fx::Rounding::kRoundNearest
                                               : fx::Rounding::kTruncate;
        const auto o = rand_in(rng, 0, 1) != 0 ? fx::Overflow::kSaturate
                                               : fx::Overflow::kWrap;
        id = g.m.requant(pick(), static_cast<int>(rand_in(rng, 0, 2)), fmt, r,
                         o);
        break;
      }
      default:
        if (!used_decimate) {
          used_decimate = true;
          id = g.m.decimate(pick(), 2);
        } else {
          id = g.m.reg(pick());
        }
        break;
    }
    pool[g.m.node(id).clock_div].push_back(id);
  }

  // One or two outputs over random nodes (any domain).
  int port = 0;
  for (const auto& [div, nodes] : pool) {
    (void)div;
    const NodeId pick = nodes[static_cast<std::size_t>(
        rand_in(rng, 0, static_cast<std::int64_t>(nodes.size()) - 1))];
    g.m.output("y" + std::to_string(port++), pick);
    if (port >= 2) break;
  }
  return g;
}

/// Exhaustive stimulus for a w-bit input: every ordered value pair appears
/// as consecutive samples, so every single-register transition is covered.
std::vector<std::int64_t> all_pairs(int width) {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  std::vector<std::int64_t> s;
  s.reserve(static_cast<std::size_t>((hi - lo + 1) * (hi - lo + 1) * 2));
  for (std::int64_t x = lo; x <= hi; ++x) {
    for (std::int64_t y = lo; y <= hi; ++y) {
      s.push_back(x);
      s.push_back(y);
    }
  }
  return s;
}

TEST(OptEquivTest, RandomNetlistsProveAndMatchExhaustively) {
  constexpr int kNetlists = 220;
  std::size_t total_rewrites = 0;
  for (int t = 0; t < kNetlists; ++t) {
    const std::uint64_t seed = 0x5eed0000ull + static_cast<std::uint64_t>(t);
    const GenNetlist g = random_netlist(seed);
    const OptResult res = optimize(g.m);
    total_rewrites += res.proofs.size();

    const ProofCheck pc = check_proofs(g.m, res.proofs);
    EXPECT_TRUE(pc.ok) << "seed " << seed;
    for (const auto& e : pc.errors) ADD_FAILURE() << "seed " << seed << ": " << e;

    const std::vector<std::int64_t> stim = all_pairs(g.in_width);
    const std::map<NodeId, std::span<const std::int64_t>> inputs{
        {g.in, std::span<const std::int64_t>(stim)}};
    const EquivResult eq = check_optimized_equivalence(g.m, res, inputs);
    EXPECT_TRUE(eq.ok) << "seed " << seed;
    for (const auto& e : eq.errors) ADD_FAILURE() << "seed " << seed << ": " << e;
    if (!pc.ok || !eq.ok) break;  // first failing seed is the repro
  }
  // The generator must actually exercise the passes, not just echo modules.
  EXPECT_GT(total_rewrites, 200u);
}

// ---------------------------------------------------------------------------
// Paper chain: full decimation chain and every per-stage module, across all
// nine stimulus classes plus extra fuzz seeds.

void expect_chain_equivalence(const Module& m, NodeId in) {
  const OptResult res = optimize(m);
  const ProofCheck pc = check_proofs(m, res.proofs);
  EXPECT_TRUE(pc.ok) << m.name();
  for (const auto& e : pc.errors) ADD_FAILURE() << m.name() << ": " << e;

  const fx::Format fmt{m.node(in).width, 0};
  for (int c = 0; c < verify::kNumStimulusClasses; ++c) {
    const auto cls = static_cast<verify::StimulusClass>(c);
    std::mt19937_64 rng(0xabcdef12u + static_cast<unsigned>(c));
    const std::vector<std::int64_t> stim =
        verify::make_stimulus(cls, 384, fmt, rng);
    const std::map<NodeId, std::span<const std::int64_t>> inputs{
        {in, std::span<const std::int64_t>(stim)}};
    const EquivResult eq = check_optimized_equivalence(m, res, inputs);
    EXPECT_TRUE(eq.ok) << m.name() << " / " << verify::stimulus_name(cls);
    for (const auto& e : eq.errors) {
      ADD_FAILURE() << m.name() << " / " << verify::stimulus_name(cls) << ": "
                    << e;
    }
    if (!eq.ok) return;
  }
}

TEST(OptEquivTest, FullChainAllStimulusClasses) {
  const auto config = decim::paper_chain_config();
  const BuiltChain chain = build_chain(config);
  // The optimizer must find real work on the paper chain.
  const OptResult res = optimize(chain.full);
  EXPECT_LT(res.module.size(), chain.full.size());
  EXPECT_GT(res.stats.widths_shrunk, 0u);
  expect_chain_equivalence(chain.full, chain.in);
}

TEST(OptEquivTest, EveryStageModuleAllStimulusClasses) {
  const auto config = decim::paper_chain_config();
  const BuiltChain chain = build_chain(config);
  for (const BuiltStage& stage : chain.stages) {
    expect_chain_equivalence(stage.module, stage.in);
  }
}

TEST(OptEquivTest, FullChainFuzzSeeds) {
  const auto config = decim::paper_chain_config();
  const BuiltChain chain = build_chain(config);
  const OptResult res = optimize(chain.full);
  const fx::Format fmt{chain.full.node(chain.in).width, 0};
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::mt19937_64 rng(seed);
    const auto cls = verify::random_stimulus_class(rng);
    const std::vector<std::int64_t> stim =
        verify::make_stimulus(cls, 512, fmt, rng);
    const std::map<NodeId, std::span<const std::int64_t>> inputs{
        {chain.in, std::span<const std::int64_t>(stim)}};
    const EquivResult eq = check_optimized_equivalence(chain.full, res, inputs);
    EXPECT_TRUE(eq.ok) << "fuzz seed " << seed << " ("
                       << verify::stimulus_name(cls) << ")";
    for (const auto& e : eq.errors) {
      ADD_FAILURE() << "fuzz seed " << seed << ": " << e;
    }
  }
}

}  // namespace
