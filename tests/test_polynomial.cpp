// Polynomial utilities: root expansion, multiplication, evaluation, and
// rational impulse responses against closed forms.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "src/dsp/polynomial.h"

namespace {

using namespace dsadc::dsp;
using C = std::complex<double>;

TEST(PolyFromRoots, SingleRealRoot) {
  const std::vector<C> roots{{0.5, 0.0}};
  const auto p = poly_from_roots_zinv(roots);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 1.0, 1e-15);
  EXPECT_NEAR(p[1], -0.5, 1e-15);
}

TEST(PolyFromRoots, ConjugatePairIsReal) {
  const std::vector<C> roots{{0.6, 0.3}, {0.6, -0.3}};
  const auto p = poly_from_roots_zinv(roots);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0], 1.0, 1e-15);
  EXPECT_NEAR(p[1], -1.2, 1e-12);           // -2*Re(r)
  EXPECT_NEAR(p[2], 0.36 + 0.09, 1e-12);    // |r|^2
}

TEST(PolyFromRoots, RejectsUnpairedComplex) {
  const std::vector<C> roots{{0.6, 0.3}};
  EXPECT_THROW(poly_from_roots_zinv(roots), std::invalid_argument);
}

TEST(PolyMul, MatchesManualExpansion) {
  const std::vector<double> a{1.0, 2.0};        // 1 + 2x
  const std::vector<double> b{3.0, 0.0, 1.0};   // 3 + x^2
  const auto c = poly_mul(a, b);
  const std::vector<double> expect{3.0, 6.0, 1.0, 2.0};
  ASSERT_EQ(c.size(), expect.size());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], expect[i], 1e-15);
}

TEST(PolyEval, HornerAgainstDirect) {
  const std::vector<double> p{1.0, -2.0, 0.5, 3.0};
  const C x{0.3, -0.7};
  const C direct = 1.0 + -2.0 * x + 0.5 * x * x + 3.0 * x * x * x;
  const C h = poly_eval(p, x);
  EXPECT_NEAR(std::abs(h - direct), 0.0, 1e-12);
}

TEST(RationalImpulse, FirCaseIsNumerator) {
  const std::vector<double> b{1.0, 2.0, 3.0};
  const std::vector<double> a{1.0};
  const auto h = rational_impulse_response(b, a, 6);
  EXPECT_NEAR(h[0], 1.0, 1e-15);
  EXPECT_NEAR(h[1], 2.0, 1e-15);
  EXPECT_NEAR(h[2], 3.0, 1e-15);
  EXPECT_NEAR(h[3], 0.0, 1e-15);
}

TEST(RationalImpulse, OnePoleGeometric) {
  // H = 1 / (1 - 0.5 z^-1): h[k] = 0.5^k.
  const std::vector<double> b{1.0};
  const std::vector<double> a{1.0, -0.5};
  const auto h = rational_impulse_response(b, a, 16);
  for (std::size_t k = 0; k < h.size(); ++k) {
    EXPECT_NEAR(h[k], std::pow(0.5, static_cast<double>(k)), 1e-12);
  }
}

TEST(RationalImpulse, RejectsZeroLeadingDenominator) {
  const std::vector<double> b{1.0};
  const std::vector<double> a{0.0, 1.0};
  EXPECT_THROW(rational_impulse_response(b, a, 4), std::invalid_argument);
}

TEST(RationalImpulse, MatchesLongDivisionSecondOrder) {
  // H = (1 + z^-1) / (1 - 0.9 z^-1 + 0.2 z^-2); verify recursion directly.
  const std::vector<double> b{1.0, 1.0};
  const std::vector<double> a{1.0, -0.9, 0.2};
  const auto h = rational_impulse_response(b, a, 32);
  // y[k] = b[k] + 0.9 y[k-1] - 0.2 y[k-2]
  std::vector<double> ref(32, 0.0);
  for (std::size_t k = 0; k < 32; ++k) {
    double acc = (k < 2) ? b[k] : 0.0;
    if (k >= 1) acc += 0.9 * ref[k - 1];
    if (k >= 2) acc -= 0.2 * ref[k - 2];
    ref[k] = acc;
  }
  for (std::size_t k = 0; k < 32; ++k) EXPECT_NEAR(h[k], ref[k], 1e-12);
}

TEST(PolyDerivative, BasicRule) {
  const std::vector<double> p{5.0, 1.0, -3.0, 2.0};  // 5 + x - 3x^2 + 2x^3
  const auto d = poly_derivative(p);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_NEAR(d[0], 1.0, 1e-15);
  EXPECT_NEAR(d[1], -6.0, 1e-15);
  EXPECT_NEAR(d[2], 6.0, 1e-15);
}

}  // namespace
