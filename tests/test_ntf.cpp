// NTF synthesis: optimal zero placement (Legendre roots, Schreier Table
// 4.1), out-of-band gain control, and SQNR prediction trends.
#include <gtest/gtest.h>

#include <cmath>

#include "src/modulator/ntf.h"

namespace {

using namespace dsadc::mod;

TEST(LegendreRoots, KnownValues) {
  // Schreier's optimal relative zero positions are the Legendre roots.
  const auto r5 = legendre_roots(5);
  ASSERT_EQ(r5.size(), 5u);
  EXPECT_NEAR(r5[0], -0.90618, 1e-4);
  EXPECT_NEAR(r5[1], -0.53847, 1e-4);
  EXPECT_NEAR(r5[2], 0.0, 1e-12);
  EXPECT_NEAR(r5[3], 0.53847, 1e-4);
  EXPECT_NEAR(r5[4], 0.90618, 1e-4);

  const auto r2 = legendre_roots(2);
  EXPECT_NEAR(r2[1], 1.0 / std::sqrt(3.0), 1e-10);

  const auto r4 = legendre_roots(4);
  EXPECT_NEAR(r4[2], 0.33998, 1e-4);
  EXPECT_NEAR(r4[3], 0.86114, 1e-4);
}

TEST(LegendreRoots, SymmetricAndSorted) {
  for (int n = 1; n <= 8; ++n) {
    const auto r = legendre_roots(n);
    for (std::size_t i = 0; i + 1 < r.size(); ++i) EXPECT_LT(r[i], r[i + 1]);
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_NEAR(r[i], -r[r.size() - 1 - i], 1e-12);
    }
  }
}

class NtfSynthesis
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(NtfSynthesis, HitsRequestedObg) {
  const auto [order, osr, obg] = GetParam();
  const Ntf ntf = synthesize_ntf(order, osr, obg, true);
  EXPECT_NEAR(ntf.infinity_norm(), obg, 0.01 * obg);
  // Realizability: monic numerator/denominator, NTF(inf) = 1.
  EXPECT_NEAR(ntf.numerator()[0], 1.0, 1e-12);
  EXPECT_NEAR(ntf.denominator()[0], 1.0, 1e-12);
  // All poles strictly inside the unit circle.
  for (const auto& p : ntf.poles) EXPECT_LT(std::abs(p), 1.0);
  // All zeros on the unit circle within the band.
  for (const auto& z : ntf.zeros) {
    EXPECT_NEAR(std::abs(z), 1.0, 1e-9);
    EXPECT_LE(std::abs(std::arg(z)), M_PI / osr + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NtfSynthesis,
    ::testing::Values(std::make_tuple(2, 16.0, 2.0),
                      std::make_tuple(3, 32.0, 1.5),
                      std::make_tuple(4, 16.0, 2.5),
                      std::make_tuple(5, 16.0, 3.0),   // the paper's design
                      std::make_tuple(6, 12.0, 4.0),
                      std::make_tuple(7, 8.0, 6.0)));

TEST(NtfSynthesis, DeepInBandNulls) {
  const Ntf ntf = synthesize_ntf(5, 16.0, 3.0, true);
  // In-band |NTF| must be tiny; worst in-band well below 1.
  double worst = 0.0;
  for (double f = 0.0; f <= 0.5 / 16.0; f += 1e-4) {
    worst = std::max(worst, ntf.magnitude_at(f));
  }
  EXPECT_LT(worst, 2e-3);
}

TEST(NtfSynthesis, OptimizedZerosBeatDcZeros) {
  const Ntf opt = synthesize_ntf(5, 16.0, 3.0, true);
  const Ntf dc = synthesize_ntf(5, 16.0, 3.0, false);
  EXPECT_LT(opt.inband_noise_power_gain(16.0),
            dc.inband_noise_power_gain(16.0));
}

TEST(NtfSynthesis, InvalidArgsThrow) {
  EXPECT_THROW(synthesize_ntf(0, 16.0, 3.0), std::invalid_argument);
  EXPECT_THROW(synthesize_ntf(9, 16.0, 3.0), std::invalid_argument);
  EXPECT_THROW(synthesize_ntf(5, 16.0, 0.9), std::invalid_argument);
}

TEST(NtfSynthesis, ImpossiblyLowObgThrows) {
  // A 7th-order NTF at high OSR cannot reach Hinf barely above 1.
  EXPECT_THROW(synthesize_ntf(7, 64.0, 1.01), std::runtime_error);
}

TEST(PredictSqnr, PaperBallpark) {
  // The paper's modulator: 5th order, OSR 16, OBG 3, 4-bit quantizer,
  // MSA 0.81 -> simulated 102 dB. The linear prediction for the DT
  // equivalent sits in the same region (roughly 100-115 dB).
  const Ntf ntf = synthesize_ntf(5, 16.0, 3.0, true);
  const double sqnr = predict_sqnr_db(ntf, 16.0, 4, 0.81);
  EXPECT_GT(sqnr, 95.0);
  EXPECT_LT(sqnr, 120.0);
}

TEST(PredictSqnr, MonotoneInOsrAndBits) {
  const Ntf ntf = synthesize_ntf(4, 16.0, 2.5, true);
  EXPECT_GT(predict_sqnr_db(ntf, 32.0, 4, 0.8),
            predict_sqnr_db(ntf, 16.0, 4, 0.8));
  EXPECT_GT(predict_sqnr_db(ntf, 16.0, 5, 0.8),
            predict_sqnr_db(ntf, 16.0, 4, 0.8));
  // ~6 dB per extra quantizer bit.
  EXPECT_NEAR(predict_sqnr_db(ntf, 16.0, 5, 0.8) -
                  predict_sqnr_db(ntf, 16.0, 4, 0.8),
              6.4, 0.8);
}

}  // namespace
