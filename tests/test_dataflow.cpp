// Dataflow framework: netlist index, worklist engine, and the four
// abstract domains (intervals, constants, known bits, liveness).
#include <gtest/gtest.h>

#include <map>

#include "src/analyze/dataflow/domains.h"
#include "src/analyze/dataflow/engine.h"
#include "src/analyze/dataflow/index.h"
#include "src/analyze/interval.h"
#include "src/rtl/builders.h"
#include "src/rtl/ir.h"

namespace {

using namespace dsadc;
using namespace dsadc::analyze;
using namespace dsadc::rtl;

TEST(NetlistIndexTest, UsersFanoutAndKinds) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId c = m.constant(3, 8);
  const NodeId s = m.add(in, c, 9);
  const NodeId d = m.sub(in, c, 9);
  const NodeId r = m.reg(s);
  m.output("y", r);
  m.output("z", d);

  const NetlistIndex idx(m);
  EXPECT_EQ(idx.size(), m.size());
  EXPECT_EQ(idx.fanout(in), 2);
  EXPECT_EQ(idx.fanout(c), 2);
  EXPECT_EQ(idx.fanout(r), 1);
  const auto users = idx.users(in);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0], s);
  EXPECT_EQ(users[1], d);
  EXPECT_EQ(idx.of_kind(OpKind::kOutput).size(), 2u);
  ASSERT_EQ(idx.state_nodes().size(), 1u);
  EXPECT_EQ(idx.state_nodes()[0], r);
}

TEST(NetlistIndexTest, DoubleReadAppearsTwice) {
  Module m("t");
  const NodeId in = m.input("in", 4);
  const NodeId s = m.add(in, in, 5);
  m.output("y", s);
  const NetlistIndex idx(m);
  EXPECT_EQ(idx.fanout(in), 2);  // both operand slots of the adder
}

TEST(EngineTest, IntervalSolveMatchesWrapper) {
  // The migrated analyze_intervals wrapper must equal a raw engine solve.
  const auto stage = build_cic(design::CicSpec{4, 8, 4});
  const Module& m = stage.module;
  const NetlistIndex idx(m);
  IntervalDomain dom;
  const std::map<NodeId, Interval> no_ranges;
  dom.input_ranges = &no_ranges;
  const SolveResult<IntervalDomain> solved = solve(m, idx, dom);
  EXPECT_TRUE(solved.converged);

  const IntervalResult wrapped = analyze_intervals(m, {});
  ASSERT_EQ(wrapped.value.size(), solved.value.size());
  for (std::size_t i = 0; i < solved.value.size(); ++i) {
    EXPECT_EQ(wrapped.value[i], solved.value[i]) << "node " << i;
  }
}

std::vector<ConstValue> const_solve(const Module& m) {
  const NetlistIndex idx(m);
  ConstDomain dom;
  const std::map<NodeId, Interval> no_ranges;
  dom.input_ranges = &no_ranges;
  return solve(m, idx, dom).value;
}

TEST(ConstDomainTest, FoldsConstantSubgraph) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId c2 = m.constant(2, 8);
  const NodeId c3 = m.constant(3, 8);
  const NodeId s = m.add(c2, c3, 8);      // always 5
  const NodeId n = m.neg(c3, 8);          // always -3
  const NodeId mixed = m.add(in, s, 9);   // depends on the input
  m.output("y", mixed);
  m.output("z", n);

  const auto v = const_solve(m);
  EXPECT_EQ(v[static_cast<std::size_t>(s)], ConstValue::constant(5));
  EXPECT_EQ(v[static_cast<std::size_t>(n)], ConstValue::constant(-3));
  EXPECT_FALSE(v[static_cast<std::size_t>(in)].is_const());
  EXPECT_FALSE(v[static_cast<std::size_t>(mixed)].is_const());
}

TEST(ConstDomainTest, RegistersJoinPowerUpZero) {
  Module m("t");
  const NodeId c0 = m.constant(0, 8);
  const NodeId c5 = m.constant(5, 8);
  const NodeId r0 = m.reg(c0);  // captures 0 forever: still constant 0
  const NodeId r5 = m.reg(c5);  // 0 at power-up, then 5: not constant
  m.output("a", r0);
  m.output("b", r5);

  const auto v = const_solve(m);
  EXPECT_EQ(v[static_cast<std::size_t>(r0)], ConstValue::constant(0));
  EXPECT_FALSE(v[static_cast<std::size_t>(r5)].is_const());
}

TEST(ConstDomainTest, PointInputRangeIsConstant) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId s = m.add(in, m.constant(1, 8), 9);
  m.output("y", s);

  const NetlistIndex idx(m);
  ConstDomain dom;
  const std::map<NodeId, Interval> ranges{{in, Interval::point(7)}};
  dom.input_ranges = &ranges;
  const auto v = solve(m, idx, dom).value;
  EXPECT_EQ(v[static_cast<std::size_t>(in)], ConstValue::constant(7));
  EXPECT_EQ(v[static_cast<std::size_t>(s)], ConstValue::constant(8));
}

TEST(ConstDomainTest, MuxWithConstantSelect) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId sel = m.constant(1, 1);
  const NodeId c9 = m.constant(9, 8);
  const NodeId mx = m.mux(sel, c9, in, 8);  // select proven 1: always 9
  m.output("y", mx);

  const auto v = const_solve(m);
  EXPECT_EQ(v[static_cast<std::size_t>(mx)], ConstValue::constant(9));
}

std::vector<KnownBits> kb_solve(const Module& m) {
  const NetlistIndex idx(m);
  KnownBitsDomain dom;
  const std::map<NodeId, Interval> no_ranges;
  dom.input_ranges = &no_ranges;
  return solve(m, idx, dom).value;
}

TEST(KnownBitsTest, ShiftChainsClearLsbs) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId a = m.shl(in, 3);
  const NodeId b = m.shl(in, 5);
  const NodeId s = m.add(a, b, 16);  // both operands have 3 zero LSBs
  m.output("y", s);

  const auto v = kb_solve(m);
  EXPECT_GE(v[static_cast<std::size_t>(a)].trailing_zeros(), 3);
  EXPECT_GE(v[static_cast<std::size_t>(b)].trailing_zeros(), 5);
  EXPECT_GE(v[static_cast<std::size_t>(s)].trailing_zeros(), 3);
}

TEST(KnownBitsTest, ConstantsAreFullyKnown) {
  Module m("t");
  const NodeId c = m.constant(12, 8);
  const NodeId n = m.neg(c, 8);
  m.output("y", n);

  const auto v = kb_solve(m);
  const KnownBits kc = v[static_cast<std::size_t>(c)];
  ASSERT_TRUE(kc.fully_known());
  EXPECT_EQ(kc.ones, 12u);
  const KnownBits kn = v[static_cast<std::size_t>(n)];
  ASSERT_TRUE(kn.fully_known());
  EXPECT_EQ(static_cast<std::int64_t>(kn.ones), -12);
}

TEST(KnownBitsTest, SubPreservesCommonZeroLsbs) {
  Module m("t");
  const NodeId in = m.input("in", 6);
  const NodeId a = m.shl(in, 4);
  const NodeId b = m.shl(in, 6);
  const NodeId d = m.sub(b, a, 16);
  m.output("y", d);

  const auto v = kb_solve(m);
  EXPECT_GE(v[static_cast<std::size_t>(d)].trailing_zeros(), 4);
}

TEST(LivenessTest, BackwardReachability) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId used = m.add(in, in, 9);
  const NodeId dead1 = m.sub(in, in, 9);   // no output reads this
  const NodeId dead2 = m.neg(dead1, 9);    // ... nor this
  const NodeId r = m.reg(used);
  const NodeId out = m.output("y", r);

  const NetlistIndex idx(m);
  LivenessDomain dom;
  const auto v = solve(m, idx, dom).value;
  EXPECT_NE(v[static_cast<std::size_t>(in)], 0);
  EXPECT_NE(v[static_cast<std::size_t>(used)], 0);
  EXPECT_NE(v[static_cast<std::size_t>(r)], 0);
  EXPECT_NE(v[static_cast<std::size_t>(out)], 0);
  EXPECT_EQ(v[static_cast<std::size_t>(dead1)], 0);
  EXPECT_EQ(v[static_cast<std::size_t>(dead2)], 0);
}

TEST(IntervalTransferTest, MuxHullsArmsUnlessSelectIsZero) {
  Module m("t");
  const NodeId sel = m.input("sel", 1);
  const NodeId a = m.constant(5, 8);
  const NodeId b = m.constant(-3, 8);
  const NodeId mx = m.mux(sel, a, b, 8);
  m.output("y", mx);

  const IntervalResult r = analyze_intervals(m, {});
  const Interval iv = r.value[static_cast<std::size_t>(mx)];
  EXPECT_EQ(iv, (Interval{-3, 5}));

  // Select pinned to {0}: only the else-arm remains, hulled with the
  // power-up value 0 every node starts from.
  const IntervalResult r0 =
      analyze_intervals(m, {{sel, Interval::point(0)}});
  EXPECT_EQ(r0.value[static_cast<std::size_t>(mx)], (Interval{-3, 0}));
}

}  // namespace
