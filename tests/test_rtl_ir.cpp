// Hardware IR construction: node semantics, clock-domain rules, CSD
// multiplier expansion and cost accounting.
#include <gtest/gtest.h>

#include <memory_resource>

#include "src/fixedpoint/csd.h"
#include "src/rtl/ir.h"

namespace {

using namespace dsadc;
using namespace dsadc::rtl;

TEST(Ir, BasicConstructionAndCounts) {
  Module m("t");
  const NodeId a = m.input("a", 8);
  const NodeId b = m.input("b", 8);
  const NodeId s = m.add(a, b, 9);
  const NodeId r = m.reg(s);
  const NodeId o = m.output("y", r);
  EXPECT_EQ(m.size(), 5u);
  EXPECT_EQ(m.adder_count(), 1u);
  EXPECT_EQ(m.register_count(), 1u);
  EXPECT_EQ(m.register_bits(), 9u);
  EXPECT_EQ(m.node(o).a, r);
  EXPECT_EQ(m.nodes_of_kind(OpKind::kInput).size(), 2u);
}

TEST(Ir, ClockDomainMismatchThrows) {
  Module m("t");
  const NodeId a = m.input("a", 8, 1);
  const NodeId b = m.input("b", 8, 2);
  EXPECT_THROW(m.add(a, b, 9), std::invalid_argument);
  EXPECT_THROW(m.sub(a, b, 9), std::invalid_argument);
}

TEST(Ir, DecimateMovesDomain) {
  Module m("t");
  const NodeId a = m.input("a", 8, 2);
  const NodeId d = m.decimate(a, 4);
  EXPECT_EQ(m.node(d).clock_div, 8);
  EXPECT_THROW(m.decimate(a, 1), std::invalid_argument);
}

TEST(Ir, RegisterPlaceholderFeedback) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId state = m.reg_placeholder(8, 1);
  const NodeId sum = m.add(in, state, 8);
  m.connect_reg(state, sum);
  EXPECT_EQ(m.node(state).a, sum);
  // connect to a non-register fails.
  EXPECT_THROW(m.connect_reg(sum, in), std::invalid_argument);
  // domain mismatch fails.
  const NodeId other = m.input("o", 8, 4);
  EXPECT_THROW(m.connect_reg(state, other), std::invalid_argument);
}

TEST(Ir, WidthValidation) {
  Module m("t");
  EXPECT_THROW(m.input("a", 0), std::invalid_argument);
  EXPECT_THROW(m.input("a", 63), std::invalid_argument);
}

TEST(Ir, ShiftWidths) {
  Module m("t");
  const NodeId a = m.input("a", 8);
  const NodeId l = m.shl(a, 4);
  EXPECT_EQ(m.node(l).width, 12);
  const NodeId r = m.shr(a, 3);
  EXPECT_EQ(m.node(r).width, 8);
}

TEST(Ir, CsdMultiplyStructure) {
  Module m("t");
  const NodeId a = m.input("a", 12);
  // 0.75 = +2^0 - 2^-2 at frac 4: digits at +4 and +2 -> one shift each,
  // one negate, one add.
  const fx::Csd c = fx::csd_encode(0.75, 4);
  const NodeId p = m.csd_multiply(a, c, 4, 20);
  EXPECT_EQ(m.node(p).kind, OpKind::kAdd);
  EXPECT_EQ(m.adder_count(), 2u);  // the final add + the negate
}

TEST(Ir, CsdMultiplyZeroConstant) {
  Module m("t");
  const NodeId a = m.input("a", 12);
  const NodeId p = m.csd_multiply(a, fx::Csd{}, 4, 20);
  EXPECT_EQ(m.node(p).kind, OpKind::kConst);
  EXPECT_EQ(m.node(p).value, 0);
}

TEST(Ir, CsdMultiplyRejectsSubPrecisionDigit) {
  Module m("t");
  const NodeId a = m.input("a", 12);
  const fx::Csd c = fx::csd_encode(0.5, 8);  // digit at 2^-1
  EXPECT_THROW(m.csd_multiply(a, c, 0, 20), std::invalid_argument);
}

TEST(Ir, DelayChainLength) {
  Module m("t");
  const NodeId a = m.input("a", 6);
  const NodeId d = m.delay(a, 5);
  EXPECT_EQ(m.register_count(), 5u);
  EXPECT_EQ(m.node(d).kind, OpKind::kReg);
  // Zero delay returns the node itself.
  EXPECT_EQ(m.delay(a, 0), a);
}

TEST(Ir, MuxOperandSlotsAndClockRules) {
  Module m("t");
  const NodeId sel = m.input("sel", 1);
  const NodeId a = m.input("a", 8);
  const NodeId b = m.input("b", 8);
  const NodeId mx = m.mux(sel, a, b, 8);
  EXPECT_EQ(m.node(mx).kind, OpKind::kMux);
  EXPECT_EQ(m.node(mx).a, a);   // then-arm
  EXPECT_EQ(m.node(mx).b, b);   // else-arm
  EXPECT_EQ(m.node(mx).c, sel); // select
  EXPECT_EQ(operands(m.node(mx)), (std::array<NodeId, 3>{a, b, sel}));
  // Arms and select must share a clock domain.
  const NodeId slow = m.decimate(a, 2);
  EXPECT_THROW(m.mux(sel, slow, b, 8), std::invalid_argument);
  EXPECT_THROW(m.mux(slow, a, b, 8), std::invalid_argument);
}

TEST(Ir, ArenaConstructionMatchesHeap) {
  // Modules built on a caller-supplied pmr arena must be node-for-node
  // identical to the default-heap build.
  const auto build = [](Module& m) {
    const NodeId in = m.input("in", 8);
    const NodeId c = m.constant(3, 8);
    const NodeId s = m.add(in, c, 9);
    const NodeId r = m.reg(s);
    m.output("y", m.mux(in, r, s, 9));
  };
  std::pmr::monotonic_buffer_resource arena;
  Module on_arena("t", &arena);
  Module on_heap("t");
  build(on_arena);
  build(on_heap);
  ASSERT_EQ(on_arena.size(), on_heap.size());
  for (std::size_t i = 0; i < on_heap.size(); ++i) {
    const Node& x = on_arena.nodes()[i];
    const Node& y = on_heap.nodes()[i];
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.width, y.width);
    EXPECT_EQ(x.a, y.a);
    EXPECT_EQ(x.b, y.b);
    EXPECT_EQ(x.c, y.c);
    EXPECT_EQ(x.value, y.value);
  }
}

TEST(Ir, RequantCarriesParameters) {
  Module m("t");
  const NodeId a = m.input("a", 20);
  const NodeId q = m.requant(a, 10, fx::Format{12, 4},
                             fx::Rounding::kRoundNearest,
                             fx::Overflow::kSaturate);
  EXPECT_EQ(m.node(q).width, 12);
  EXPECT_EQ(m.node(q).src_frac, 10);
  EXPECT_EQ(m.node(q).fmt.frac, 4);
}

}  // namespace
