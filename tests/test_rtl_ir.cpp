// Hardware IR construction: node semantics, clock-domain rules, CSD
// multiplier expansion and cost accounting.
#include <gtest/gtest.h>

#include "src/fixedpoint/csd.h"
#include "src/rtl/ir.h"

namespace {

using namespace dsadc;
using namespace dsadc::rtl;

TEST(Ir, BasicConstructionAndCounts) {
  Module m("t");
  const NodeId a = m.input("a", 8);
  const NodeId b = m.input("b", 8);
  const NodeId s = m.add(a, b, 9);
  const NodeId r = m.reg(s);
  const NodeId o = m.output("y", r);
  EXPECT_EQ(m.size(), 5u);
  EXPECT_EQ(m.adder_count(), 1u);
  EXPECT_EQ(m.register_count(), 1u);
  EXPECT_EQ(m.register_bits(), 9u);
  EXPECT_EQ(m.node(o).a, r);
  EXPECT_EQ(m.nodes_of_kind(OpKind::kInput).size(), 2u);
}

TEST(Ir, ClockDomainMismatchThrows) {
  Module m("t");
  const NodeId a = m.input("a", 8, 1);
  const NodeId b = m.input("b", 8, 2);
  EXPECT_THROW(m.add(a, b, 9), std::invalid_argument);
  EXPECT_THROW(m.sub(a, b, 9), std::invalid_argument);
}

TEST(Ir, DecimateMovesDomain) {
  Module m("t");
  const NodeId a = m.input("a", 8, 2);
  const NodeId d = m.decimate(a, 4);
  EXPECT_EQ(m.node(d).clock_div, 8);
  EXPECT_THROW(m.decimate(a, 1), std::invalid_argument);
}

TEST(Ir, RegisterPlaceholderFeedback) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId state = m.reg_placeholder(8, 1);
  const NodeId sum = m.add(in, state, 8);
  m.connect_reg(state, sum);
  EXPECT_EQ(m.node(state).a, sum);
  // connect to a non-register fails.
  EXPECT_THROW(m.connect_reg(sum, in), std::invalid_argument);
  // domain mismatch fails.
  const NodeId other = m.input("o", 8, 4);
  EXPECT_THROW(m.connect_reg(state, other), std::invalid_argument);
}

TEST(Ir, WidthValidation) {
  Module m("t");
  EXPECT_THROW(m.input("a", 0), std::invalid_argument);
  EXPECT_THROW(m.input("a", 63), std::invalid_argument);
}

TEST(Ir, ShiftWidths) {
  Module m("t");
  const NodeId a = m.input("a", 8);
  const NodeId l = m.shl(a, 4);
  EXPECT_EQ(m.node(l).width, 12);
  const NodeId r = m.shr(a, 3);
  EXPECT_EQ(m.node(r).width, 8);
}

TEST(Ir, CsdMultiplyStructure) {
  Module m("t");
  const NodeId a = m.input("a", 12);
  // 0.75 = +2^0 - 2^-2 at frac 4: digits at +4 and +2 -> one shift each,
  // one negate, one add.
  const fx::Csd c = fx::csd_encode(0.75, 4);
  const NodeId p = m.csd_multiply(a, c, 4, 20);
  EXPECT_EQ(m.node(p).kind, OpKind::kAdd);
  EXPECT_EQ(m.adder_count(), 2u);  // the final add + the negate
}

TEST(Ir, CsdMultiplyZeroConstant) {
  Module m("t");
  const NodeId a = m.input("a", 12);
  const NodeId p = m.csd_multiply(a, fx::Csd{}, 4, 20);
  EXPECT_EQ(m.node(p).kind, OpKind::kConst);
  EXPECT_EQ(m.node(p).value, 0);
}

TEST(Ir, CsdMultiplyRejectsSubPrecisionDigit) {
  Module m("t");
  const NodeId a = m.input("a", 12);
  const fx::Csd c = fx::csd_encode(0.5, 8);  // digit at 2^-1
  EXPECT_THROW(m.csd_multiply(a, c, 0, 20), std::invalid_argument);
}

TEST(Ir, DelayChainLength) {
  Module m("t");
  const NodeId a = m.input("a", 6);
  const NodeId d = m.delay(a, 5);
  EXPECT_EQ(m.register_count(), 5u);
  EXPECT_EQ(m.node(d).kind, OpKind::kReg);
  // Zero delay returns the node itself.
  EXPECT_EQ(m.delay(a, 0), a);
}

TEST(Ir, RequantCarriesParameters) {
  Module m("t");
  const NodeId a = m.input("a", 20);
  const NodeId q = m.requant(a, 10, fx::Format{12, 4},
                             fx::Rounding::kRoundNearest,
                             fx::Overflow::kSaturate);
  EXPECT_EQ(m.node(q).width, 12);
  EXPECT_EQ(m.node(q).src_frac, 10);
  EXPECT_EQ(m.node(q).fmt.frac, 4);
}

}  // namespace
