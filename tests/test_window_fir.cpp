// Kaiser windowed-sinc designer and the single-stage baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/freqz.h"
#include "src/filterdesign/window_fir.h"

namespace {

using namespace dsadc;
using namespace dsadc::design;

TEST(KaiserLowpass, BasicProperties) {
  const auto h = kaiser_lowpass(101, 0.1, 8.0);
  EXPECT_EQ(h.size(), 101u);
  EXPECT_TRUE(dsp::is_symmetric(h, 1e-12));
  EXPECT_NEAR(std::abs(dsp::fir_response_at(h, 0.0)), 1.0, 1e-12);
}

TEST(KaiserLowpass, RejectsBadArgs) {
  EXPECT_THROW(kaiser_lowpass(2, 0.1, 8.0), std::invalid_argument);
  EXPECT_THROW(kaiser_lowpass(31, 0.0, 8.0), std::invalid_argument);
  EXPECT_THROW(kaiser_lowpass(31, 0.5, 8.0), std::invalid_argument);
  EXPECT_THROW(kaiser_lowpass_for_spec(0.3, 0.2, 60.0), std::invalid_argument);
}

class KaiserSpec : public ::testing::TestWithParam<double> {};

TEST_P(KaiserSpec, MeetsAttenuationTarget) {
  const double atten = GetParam();
  const auto h = kaiser_lowpass_for_spec(0.10, 0.15, atten);
  // Kaiser designs land within ~2 dB of the formula target.
  EXPECT_GT(dsp::min_attenuation_db(h, 0.152, 0.5), atten - 3.0);
  EXPECT_LT(dsp::passband_ripple_db(h, 0.0, 0.098), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Targets, KaiserSpec,
                         ::testing::Values(40.0, 60.0, 80.0, 95.0));

TEST(KaiserSpec, LengthGrowsWithAttenuationAndNarrowness) {
  const auto a = kaiser_lowpass_for_spec(0.10, 0.15, 60.0);
  const auto b = kaiser_lowpass_for_spec(0.10, 0.15, 90.0);
  const auto c = kaiser_lowpass_for_spec(0.10, 0.125, 60.0);
  EXPECT_GT(b.size(), a.size());
  EXPECT_GT(c.size(), a.size());
}

TEST(SingleStageBaseline, PaperSpecNeedsOverAThousandTaps) {
  // Table I at 640 MHz in one step: transition 20-23 MHz at the full rate
  // is a relative width of 3/640 - brutally narrow.
  const auto base =
      design_single_stage_baseline(640e6, 40e6, 20e6, 23e6, 85.0);
  EXPECT_EQ(base.decimation, 16u);
  EXPECT_GT(base.taps.size(), 1000u);
  EXPECT_TRUE(dsp::is_symmetric(base.taps, 1e-12));
  // The response really does meet the spec.
  EXPECT_GT(dsp::min_attenuation_db(base.taps, 23e6 / 640e6, 0.5, 4096),
            80.0);
  // MACs per input sample (symmetric polyphase) stay large - the reason
  // multistage wins.
  EXPECT_GT(base.mac_rate_per_sample, 30.0);
}

TEST(SingleStageBaseline, RelaxedSpecShrinks) {
  const auto tight =
      design_single_stage_baseline(640e6, 40e6, 20e6, 23e6, 85.0);
  const auto loose =
      design_single_stage_baseline(640e6, 40e6, 20e6, 60e6, 60.0);
  EXPECT_LT(loose.taps.size(), tight.taps.size() / 4);
}

}  // namespace
