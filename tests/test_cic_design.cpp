// CIC design equations: Eq. (1) transfer function, Eq. (2) register
// widths, alias rejection and the paper's 4/4/6 cascade.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/freqz.h"
#include "src/filterdesign/cic.h"

namespace {

using namespace dsadc;
using namespace dsadc::design;

TEST(CicSpec, RegisterWidthHogenauer) {
  // Width = ceil(K log2 M) + Bin (the paper's Eq. 2 gives the MSB index).
  EXPECT_EQ((CicSpec{4, 2, 4}).register_width(), 8);
  EXPECT_EQ((CicSpec{4, 2, 8}).register_width(), 12);
  EXPECT_EQ((CicSpec{6, 2, 12}).register_width(), 18);
  EXPECT_EQ((CicSpec{3, 8, 4}).register_width(), 13);
}

TEST(CicSpec, DcGain) {
  EXPECT_NEAR((CicSpec{4, 2, 4}).dc_gain(), 16.0, 1e-12);
  EXPECT_NEAR((CicSpec{6, 2, 4}).dc_gain(), 64.0, 1e-12);
  EXPECT_NEAR((CicSpec{2, 8, 4}).dc_gain(), 64.0, 1e-12);
}

class CicMagnitude
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CicMagnitude, ClosedFormMatchesImpulseResponse) {
  const auto [k, m] = GetParam();
  const CicSpec spec{k, m, 4};
  const auto h = cic_impulse_response(spec);
  ASSERT_EQ(h.size(), static_cast<std::size_t>(k * (m - 1) + 1));
  for (double f = 0.0; f <= 0.5; f += 0.01) {
    EXPECT_NEAR(std::abs(dsp::fir_response_at(h, f)), cic_magnitude(spec, f),
                1e-10)
        << "K=" << k << " M=" << m << " f=" << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CicMagnitude,
                         ::testing::Combine(::testing::Values(1, 2, 4, 6),
                                            ::testing::Values(2, 4, 8)));

TEST(CicMagnitude, NullsAtMultiplesOfOutputRate) {
  const CicSpec spec{4, 2, 4};
  EXPECT_LT(cic_magnitude(spec, 0.5), 1e-12);  // null at fs/M
  const CicSpec s8{3, 8, 4};
  for (int m = 1; m < 8; ++m) {
    EXPECT_LT(cic_magnitude(s8, m / 8.0), 1e-10);
  }
}

TEST(CicDroop, MonotoneInBand) {
  const CicSpec spec{6, 2, 12};
  double prev = 0.0;
  for (double f = 0.0; f <= 0.12; f += 0.01) {
    const double d = cic_droop_db(spec, f);
    EXPECT_GE(d, prev - 1e-9);
    prev = d;
  }
  // Sinc6 droop at 20 MHz / 160 MHz = 0.125: about 4.1 dB.
  EXPECT_NEAR(cic_droop_db(spec, 0.125), 4.13, 0.1);
}

TEST(CicAlias, PaperStageNumbers) {
  // Stage 1: Sinc4, M=2, band 20/640: ~80 dB worst-case rejection.
  EXPECT_NEAR(cic_alias_rejection_db(CicSpec{4, 2, 4}, 20e6 / 640e6), 80.5, 1.0);
  // Stage 3: Sinc6, M=2, band 20/160: ~46 dB.
  EXPECT_NEAR(cic_alias_rejection_db(CicSpec{6, 2, 12}, 20e6 / 160e6), 45.9, 1.0);
}

TEST(CicAlias, MoreStagesMoreRejection) {
  double prev = 0.0;
  for (int k = 1; k <= 8; ++k) {
    const double a = cic_alias_rejection_db(CicSpec{k, 2, 4}, 0.03);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(CicAlias, RejectsOutOfRangeBand) {
  EXPECT_THROW(cic_alias_rejection_db(CicSpec{4, 2, 4}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(cic_alias_rejection_db(CicSpec{4, 2, 4}, 0.3),
               std::invalid_argument);
}

TEST(CicMinOrder, FindsSmallestK) {
  const int k = cic_min_order(2, 0.03125, 80.0);
  EXPECT_EQ(k, 4);  // the paper's Sinc4 choice at ~80 dB
  const int k5 = cic_min_order(2, 0.03125, 85.0);
  EXPECT_EQ(k5, 5);
  EXPECT_EQ(cic_min_order(2, 0.2, 300.0), 0);  // unreachable
}

TEST(CicCascade, PaperConfiguration) {
  const auto stages = paper_sinc_cascade();
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].order, 4);
  EXPECT_EQ(stages[1].order, 4);
  EXPECT_EQ(stages[2].order, 6);
  EXPECT_EQ(stages[0].input_bits, 4);
  EXPECT_EQ(stages[1].input_bits, 8);
  EXPECT_EQ(stages[2].input_bits, 12);
}

TEST(CicCascade, CompositeResponseIsProductOfStages) {
  const auto stages = paper_sinc_cascade();
  const auto h = cic_cascade_response(stages);
  for (double f = 0.0; f <= 0.06; f += 0.005) {
    const double expect = cic_magnitude(stages[0], f) *
                          cic_magnitude(stages[1], 2.0 * f) *
                          cic_magnitude(stages[2], 4.0 * f);
    EXPECT_NEAR(std::abs(dsp::fir_response_at(h, f)), expect, 1e-9);
  }
  EXPECT_TRUE(dsp::is_symmetric(h, 1e-12));
}

TEST(CicCascade, DeepAliasNotchesAtOutputImages) {
  // Composite /8 cascade: nulls at 80, 160, 240 MHz (in 640 MHz units).
  const auto h = cic_cascade_response(paper_sinc_cascade());
  for (double f : {0.125, 0.25, 0.375}) {
    EXPECT_LT(std::abs(dsp::fir_response_at(h, f)), 1e-8);
  }
}

}  // namespace
