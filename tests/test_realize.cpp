// CIFF realization: the structural loop filter must reproduce the
// synthesized NTF exactly across orders.
#include <gtest/gtest.h>

#include <cmath>

#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"

namespace {

using namespace dsadc::mod;

class CiffRealization
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(CiffRealization, NtfReconstructedEverywhere) {
  const auto [order, osr, obg] = GetParam();
  const Ntf ntf = synthesize_ntf(order, osr, obg, true);
  const CiffCoeffs c = realize_ciff(ntf);
  ASSERT_EQ(c.a.size(), static_cast<std::size_t>(order));
  ASSERT_EQ(c.g.size(), static_cast<std::size_t>(order / 2));
  for (double f : {0.001, 0.01, 0.5 / osr, 0.1, 0.25, 0.49}) {
    const double want = ntf.magnitude_at(f);
    const double got = ciff_ntf_magnitude(c, f);
    EXPECT_NEAR(got, want, 1e-6 * (1.0 + want) + 1e-9)
        << "order " << order << " f " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CiffRealization,
    ::testing::Values(std::make_tuple(2, 16.0, 2.0),
                      std::make_tuple(3, 16.0, 2.0),
                      std::make_tuple(4, 16.0, 2.5),
                      std::make_tuple(5, 16.0, 3.0),
                      std::make_tuple(6, 12.0, 4.0)));

TEST(CiffRealization, ResonatorFeedbacksMatchZeroAngles) {
  const Ntf ntf = synthesize_ntf(5, 16.0, 3.0, true);
  const CiffCoeffs c = realize_ciff(ntf);
  // g = 2 - 2 cos(theta) for each conjugate zero pair.
  std::vector<double> angles;
  for (const auto& z : ntf.zeros) {
    const double th = std::abs(std::arg(z));
    if (th > 1e-12) angles.push_back(th);
  }
  std::sort(angles.begin(), angles.end());
  ASSERT_EQ(c.g.size(), 2u);
  EXPECT_NEAR(c.g[0], 2.0 - 2.0 * std::cos(angles[0]), 1e-12);
  EXPECT_NEAR(c.g[1], 2.0 - 2.0 * std::cos(angles[2]), 1e-12);
  // Small-angle approximation g ~ theta^2.
  EXPECT_NEAR(c.g[0], angles[0] * angles[0], 0.05 * c.g[0]);
}

TEST(CiffRealization, FeedforwardGainsDecrease) {
  // Later integrators accumulate more gain, so their feedforward taps are
  // smaller - the standard CIFF coefficient profile.
  const Ntf ntf = synthesize_ntf(5, 16.0, 3.0, true);
  const CiffCoeffs c = realize_ciff(ntf);
  for (std::size_t i = 0; i + 1 < c.a.size(); ++i) {
    EXPECT_GT(c.a[i], c.a[i + 1]);
    EXPECT_GT(c.a[i], 0.0);
  }
}

TEST(CiffStateSpace, ResonatorEigenvaluesOnUnitCircle) {
  const std::vector<double> g{0.01, 0.03};
  const CiffStateSpace ss = ciff_state_space(5, g);
  // Check the 2x2 resonator blocks (rows/cols 1-2 and 3-4):
  // trace = 2 - g, det = 1 -> complex pair on the unit circle.
  for (int j = 0; j < 2; ++j) {
    const int h = 1 + 2 * j;
    const double tr = ss.a[h][h] + ss.a[h + 1][h + 1];
    const double det = ss.a[h][h] * ss.a[h + 1][h + 1] -
                       ss.a[h][h + 1] * ss.a[h + 1][h];
    EXPECT_NEAR(tr, 2.0 - g[j], 1e-12);
    EXPECT_NEAR(det, 1.0, 1e-12);
  }
}

TEST(CiffStateSpace, EvenOrderResonatorAtInput) {
  const std::vector<double> g{0.02, 0.04};
  const CiffStateSpace ss = ciff_state_space(4, g);
  // First pair starts at state 0; its tail is driven by the input too.
  EXPECT_NEAR(ss.b[0], 1.0, 1e-15);
  EXPECT_NEAR(ss.b[1], 1.0, 1e-15);
  EXPECT_NEAR(ss.a[0][1], -g[0], 1e-15);
}

TEST(CiffRealization, LoopImpulseResponseStartsWithDelay) {
  // P(z) has at least one sample of delay (realizability).
  const Ntf ntf = synthesize_ntf(3, 16.0, 2.0, true);
  const CiffCoeffs c = realize_ciff(ntf);
  const auto p = ciff_loop_impulse_response(c, 8);
  EXPECT_NEAR(p[0], 0.0, 1e-12);
  EXPECT_GT(std::abs(p[1]), 1e-6);
}

TEST(CiffRealization, RejectsMalformedNtf) {
  Ntf bad;
  EXPECT_THROW(realize_ciff(bad), std::invalid_argument);
  bad.zeros = {{1.0, 0.0}};
  EXPECT_THROW(realize_ciff(bad), std::invalid_argument);  // pole count
}

}  // namespace
