// Tests for the static netlist analyzer (src/analyze): interval transfer
// functions against brute-force enumeration, range-analysis soundness
// against the cycle-accurate simulator, the Hogenauer CIC width proofs,
// and every lint rule on hand-built violation modules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "src/analyze/interval.h"
#include "src/analyze/lint.h"
#include "src/analyze/range.h"
#include "src/analyze/report.h"
#include "src/decimator/chain.h"
#include "src/filterdesign/cic.h"
#include "src/fixedpoint/fixed.h"
#include "src/rtl/builders.h"
#include "src/rtl/ir.h"
#include "src/rtl/sim.h"
#include "src/verify/json.h"

namespace {

using dsadc::analyze::analyze_intervals;
using dsadc::analyze::analyze_ranges;
using dsadc::analyze::Finding;
using dsadc::analyze::Interval;
using dsadc::analyze::lint_module;
using dsadc::analyze::LintOptions;
using dsadc::analyze::ModuleReport;
using dsadc::analyze::proven_min_register_width;
using dsadc::analyze::Severity;
using dsadc::analyze::suppression_matches;
namespace fx = dsadc::fx;
namespace rtl = dsadc::rtl;

bool has_rule(const ModuleReport& r, const std::string& rule,
              bool unsuppressed_only = false) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule &&
                              (!unsuppressed_only || !f.suppressed);
                     });
}

const Finding* find_rule(const ModuleReport& r, const std::string& rule) {
  for (const Finding& f : r.findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Interval transfer functions vs brute force.

// Every (lo, hi) subinterval of a small width, every value pair: the
// abstract result must contain the concrete result.
TEST(IntervalTest, AddSubNegMatchBruteForce) {
  for (int width = 3; width <= 5; ++width) {
    const fx::Format fmt{width, 0};
    const std::int64_t lo_w = fmt.raw_min();
    const std::int64_t hi_w = fmt.raw_max();
    for (std::int64_t alo = lo_w; alo <= hi_w; ++alo) {
      for (std::int64_t ahi = alo; ahi <= hi_w; ++ahi) {
        const Interval a{alo, ahi};
        // Unary: negate.
        const Interval negated = dsadc::analyze::iv_neg(a, width);
        for (std::int64_t v = alo; v <= ahi; ++v) {
          const std::int64_t c = fx::wrap_to(-v, fmt);
          ASSERT_TRUE(negated.contains(c))
              << "neg w=" << width << " [" << alo << "," << ahi << "] v=" << v;
        }
        // Binary ops against a fixed small set of second operands.
        for (const std::int64_t blo : {lo_w, std::int64_t{-1}, std::int64_t{2}}) {
          if (blo < lo_w || blo > hi_w) continue;
          const Interval b{blo, std::min(blo + 2, hi_w)};
          const Interval sum = dsadc::analyze::iv_add(a, b, width);
          const Interval diff = dsadc::analyze::iv_sub(a, b, width);
          for (std::int64_t va = alo; va <= ahi; ++va) {
            for (std::int64_t vb = b.lo; vb <= b.hi; ++vb) {
              ASSERT_TRUE(sum.contains(fx::wrap_to(va + vb, fmt)))
                  << "add w=" << width << " " << va << "+" << vb;
              ASSERT_TRUE(diff.contains(fx::wrap_to(va - vb, fmt)))
                  << "sub w=" << width << " " << va << "-" << vb;
            }
          }
        }
      }
    }
  }
}

TEST(IntervalTest, RequantMatchesBruteForce) {
  // All source values of a 6-bit word at various source fracs, against all
  // rounding/overflow combinations into a 4-bit format.
  for (const int src_frac : {0, 1, 2, 3}) {
    for (const int dst_frac : {0, 1, 4}) {
      const fx::Format dst{4, dst_frac};
      for (const auto rounding :
           {fx::Rounding::kTruncate, fx::Rounding::kRoundNearest}) {
        for (const auto overflow :
             {fx::Overflow::kWrap, fx::Overflow::kSaturate}) {
          for (std::int64_t lo = -32; lo <= 31; ++lo) {
            for (std::int64_t hi = lo; hi <= std::min(lo + 5, std::int64_t{31});
                 ++hi) {
              const Interval image = dsadc::analyze::iv_requant(
                  Interval{lo, hi}, src_frac, dst, rounding, overflow);
              for (std::int64_t v = lo; v <= hi; ++v) {
                const std::int64_t c =
                    fx::requantize(v, src_frac, dst, rounding, overflow);
                ASSERT_TRUE(image.contains(c))
                    << "requant src_frac=" << src_frac << " dst_frac="
                    << dst_frac << " v=" << v << " -> " << c << " not in ["
                    << image.lo << "," << image.hi << "]";
              }
            }
          }
        }
      }
    }
  }
}

TEST(IntervalTest, BitsNeeded) {
  EXPECT_EQ(dsadc::analyze::bits_needed(0, 0), 1);
  EXPECT_EQ(dsadc::analyze::bits_needed(-1, 0), 1);
  EXPECT_EQ(dsadc::analyze::bits_needed(0, 1), 2);
  EXPECT_EQ(dsadc::analyze::bits_needed(-2, 1), 2);
  EXPECT_EQ(dsadc::analyze::bits_needed(-2, 2), 3);
  EXPECT_EQ(dsadc::analyze::bits_needed(0, 127), 8);
  EXPECT_EQ(dsadc::analyze::bits_needed(-128, 127), 8);
  EXPECT_EQ(dsadc::analyze::bits_needed(-129, 0), 9);
}

// ---------------------------------------------------------------------------
// Whole-module analyses vs the cycle-accurate simulator.

// A little multi-rate module exercising every op kind.
rtl::Module make_mixed_module() {
  rtl::Module m("mixed");
  const auto in = m.input("in", 5);
  const auto d = m.reg(in);
  const auto s = m.add(in, d, 6);
  const auto sh = m.shl(s, 2);
  const auto ng = m.neg(sh, 8);
  const auto dec = m.decimate(ng, 2);
  const auto rq = m.requant(dec, 0, fx::Format{5, 0}, fx::Rounding::kTruncate,
                            fx::Overflow::kSaturate);
  const auto sr = m.shr(rq, 1);
  m.output("out", sr);
  return m;
}

TEST(AnalyzeTest, IntervalAndRangeSoundVsSimulator) {
  const rtl::Module m = make_mixed_module();
  const auto iv = analyze_intervals(m);
  ASSERT_TRUE(iv.converged);
  const auto rng = analyze_ranges(m);
  ASSERT_GT(rng.period, 0);

  std::mt19937 gen(1234);
  std::uniform_int_distribution<std::int64_t> dist(-16, 15);
  std::vector<std::int64_t> stream(512);
  for (auto& v : stream) v = dist(gen);

  rtl::Simulator sim(m);
  const auto result = sim.run({{rtl::NodeId{0}, stream}});
  for (const auto& [node, samples] : result.outputs) {
    const auto i = static_cast<std::size_t>(node);
    for (const std::int64_t v : samples) {
      ASSERT_TRUE(iv.value[i].contains(v)) << "interval node " << node;
      ASSERT_TRUE(rng.bounds[i].bounded);
      ASSERT_GE(v, rng.bounds[i].lo) << "range node " << node;
      ASSERT_LE(v, rng.bounds[i].hi) << "range node " << node;
    }
  }
}

// Drive a single CIC stage with extremal inputs and check that no bounded
// node's simulated value ever leaves its proven range.
TEST(AnalyzeTest, RangeBoundsContainCicSimulation) {
  const auto built = rtl::build_cic(dsadc::design::CicSpec{4, 8, 6});
  const auto rng = analyze_ranges(built.module);
  ASSERT_GT(rng.period, 0);

  std::mt19937 gen(99);
  std::uniform_int_distribution<int> coin(0, 3);
  std::vector<std::int64_t> stream(2048);
  for (auto& v : stream) {
    // Extremal-heavy stimulus: mostly rail values to stress the bound.
    const int c = coin(gen);
    v = c == 0 ? -32 : (c == 1 ? 31 : (c == 2 ? 0 : -1));
  }
  rtl::Simulator sim(built.module);
  const auto result = sim.run({{built.in, stream}});
  for (const auto& [node, samples] : result.outputs) {
    const auto& b = rng.bounds[static_cast<std::size_t>(node)];
    ASSERT_TRUE(b.bounded);
    for (const std::int64_t v : samples) {
      ASSERT_GE(v, b.lo);
      ASSERT_LE(v, b.hi);
    }
  }
}

// ---------------------------------------------------------------------------
// Hogenauer width proofs (the paper's Eq. (2)).

TEST(AnalyzeTest, ProvesPaperCicRegisterWidths) {
  int clock_div = 1;
  for (const auto& spec : dsadc::design::paper_sinc_cascade()) {
    const auto built = rtl::build_cic(spec, clock_div);
    const ModuleReport report = lint_module(built.module);
    EXPECT_EQ(report.errors, 0u) << dsadc::analyze::text_report({report});
    EXPECT_EQ(proven_min_register_width(built.module, report.range),
              spec.register_width())
        << "K=" << spec.order << " M=" << spec.decimation
        << " Bin=" << spec.input_bits;
    clock_div *= spec.decimation;
  }
}

// PR 1's injected register-width bug: drive a Sinc4 stage sized for 6-bit
// input with a 10-bit stream. The analyzer must prove the overflow.
TEST(AnalyzeTest, FlagsInjectedRegisterWidthBug) {
  auto built = rtl::build_cic(dsadc::design::CicSpec{4, 8, 6});
  built.module.node(built.in).width = 10;  // the injected bug
  const ModuleReport report = lint_module(built.module);
  EXPECT_GT(report.errors, 0u);
  EXPECT_TRUE(has_rule(report, "range.overflow.proven") ||
              has_rule(report, "range.wrap-underwidth"))
      << dsadc::analyze::text_report({report});
  // The registers really are too narrow now: requirement exceeds them.
  EXPECT_GT(proven_min_register_width(built.module, report.range),
            (dsadc::design::CicSpec{4, 8, 6}.register_width()));
}

// Healthy modules must not lose their overflow-freedom proof when the
// declared input range is narrower than the port.
TEST(AnalyzeTest, NarrowedInputRangeShrinksBounds) {
  const auto built = rtl::build_cic(dsadc::design::CicSpec{2, 4, 4});
  const auto full = analyze_ranges(built.module);
  std::map<rtl::NodeId, Interval> narrow;
  narrow[built.in] = Interval{-1, 1};
  const auto small = analyze_ranges(built.module, narrow);
  const auto out = built.out;
  const auto& bf = full.bounds[static_cast<std::size_t>(out)];
  const auto& bs = small.bounds[static_cast<std::size_t>(out)];
  ASSERT_TRUE(bf.bounded);
  ASSERT_TRUE(bs.bounded);
  EXPECT_LT(bs.hi - bs.lo, bf.hi - bf.lo);
  // DC gain M^K = 16: a constant +1 input accumulates to +16 at the output.
  EXPECT_EQ(bs.hi, 16);
  EXPECT_EQ(bs.lo, -16);
}

// ---------------------------------------------------------------------------
// Structural lints on hand-built violation modules.

TEST(LintTest, FlagsDanglingRegPlaceholder) {
  rtl::Module m("dangling");
  const auto in = m.input("in", 4);
  const auto r = m.reg_placeholder(6, 1);
  const auto s = m.add(in, r, 6);
  m.output("out", s);
  // connect_reg(r, ...) deliberately never called.
  const ModuleReport report = lint_module(m);
  EXPECT_GT(report.errors, 0u);
  EXPECT_TRUE(has_rule(report, "struct.unconnected-reg"));
}

TEST(LintTest, FlagsCdcViolation) {
  rtl::Module m("cdc");
  const auto in = m.input("in", 4);
  const auto r = m.reg(in);
  const auto s = m.add(in, r, 5);
  m.output("out", s);
  // Corrupt the register into a /2 domain: the add now reads across
  // domains without a decimate (the IR builder would have thrown).
  m.node(r).clock_div = 2;
  const ModuleReport report = lint_module(m);
  EXPECT_GT(report.errors, 0u);
  const Finding* f = find_rule(report, "cdc.cross-domain-edge");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
}

TEST(LintTest, FlagsBadDecimateRatio) {
  rtl::Module m("badratio");
  const auto in = m.input("in", 4);
  const auto d = m.decimate(in, 2);
  m.output("out", d);
  m.node(d).clock_div = 3;  // should be src(1) * factor(2)
  const ModuleReport report = lint_module(m);
  EXPECT_TRUE(has_rule(report, "cdc.decimate-ratio"));
  EXPECT_GT(report.errors, 0u);
}

TEST(LintTest, FlagsCombOrderHazardAndCycle) {
  rtl::Module m("cycle");
  const auto in = m.input("in", 4);
  const auto a = m.add(in, in, 5);
  const auto b = m.add(a, in, 5);
  m.output("out", b);
  m.node(a).b = b;  // a now reads b, which reads a: a comb cycle
  const ModuleReport report = lint_module(m);
  EXPECT_TRUE(has_rule(report, "struct.comb-order"));
  EXPECT_TRUE(has_rule(report, "struct.comb-cycle"));
  EXPECT_GT(report.errors, 0u);
}

TEST(LintTest, FlagsDeadLogicAndUnusedInput) {
  rtl::Module m("dead");
  const auto in = m.input("in", 4);
  const auto unused_in = m.input("spare", 4);
  const auto dead = m.add(in, in, 5);
  (void)unused_in;
  (void)dead;
  m.output("out", m.neg(in, 5));
  const ModuleReport report = lint_module(m);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_TRUE(has_rule(report, "struct.dead-node"));
  EXPECT_TRUE(has_rule(report, "struct.unused-input"));
}

TEST(LintTest, FlagsMissingOutput) {
  rtl::Module m("noout");
  m.input("in", 4);
  const ModuleReport report = lint_module(m);
  EXPECT_TRUE(has_rule(report, "struct.no-output"));
  EXPECT_GT(report.errors, 0u);
}

TEST(LintTest, FlagsRequantWidthMismatch) {
  rtl::Module m("badrq");
  const auto in = m.input("in", 8);
  const auto rq = m.requant(in, 4, fx::Format{6, 2}, fx::Rounding::kTruncate,
                            fx::Overflow::kWrap);
  m.output("out", rq);
  m.node(rq).width = 9;  // out of sync with fmt.width
  const ModuleReport report = lint_module(m);
  EXPECT_TRUE(has_rule(report, "width.requant-mismatch"));
}

TEST(LintTest, FlagsIllegalRequantShift) {
  rtl::Module m("badshift");
  const auto in = m.input("in", 8);
  const auto rq = m.requant(in, 0, fx::Format{8, 0}, fx::Rounding::kTruncate,
                            fx::Overflow::kWrap);
  m.output("out", rq);
  m.node(rq).fmt.frac = 63;  // shift = -63: the simulator throws on this
  const ModuleReport report = lint_module(m);
  EXPECT_TRUE(has_rule(report, "width.requant-shift"));
}

TEST(LintTest, FlagsInputRangeExceedingPort) {
  rtl::Module m("wideinput");
  const auto in = m.input("in", 4);
  m.output("out", m.neg(in, 5));
  LintOptions options;
  options.input_ranges[in] = Interval{-100, 100};
  const ModuleReport report = lint_module(m, options);
  EXPECT_TRUE(has_rule(report, "range.input-exceeds-port"));
}

TEST(LintTest, FlagsUnusedMsbs) {
  rtl::Module m("waste");
  const auto in = m.input("in", 3);
  const auto r = m.reg(in);
  m.output("out", r);
  m.node(r).width = 12;  // 9 wasted MSBs
  const ModuleReport report = lint_module(m);
  EXPECT_EQ(report.errors, 0u);
  const Finding* f = find_rule(report, "range.unused-msb");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kInfo);
  EXPECT_EQ(f->data.at("wasted"), 9);
}

// ---------------------------------------------------------------------------
// Suppression.

TEST(LintTest, SuppressionMatching) {
  EXPECT_TRUE(suppression_matches("range.unused-msb", "range.unused-msb", "m"));
  EXPECT_FALSE(suppression_matches("range.unused-msb", "range.overflow.proven",
                                   "m"));
  EXPECT_TRUE(suppression_matches("range.*", "range.overflow.proven", "m"));
  EXPECT_FALSE(suppression_matches("range.*", "struct.dead-node", "m"));
  EXPECT_TRUE(suppression_matches("struct.dead-node@m", "struct.dead-node",
                                  "m"));
  EXPECT_FALSE(suppression_matches("struct.dead-node@other", "struct.dead-node",
                                   "m"));
  EXPECT_TRUE(suppression_matches("range.*@m", "range.unused-msb", "m"));
  EXPECT_FALSE(suppression_matches("", "anything", "m"));
}

TEST(LintTest, SuppressedFindingsDoNotCount) {
  rtl::Module m("dead");
  const auto in = m.input("in", 4);
  (void)m.add(in, in, 5);  // dead
  m.output("out", m.neg(in, 5));
  LintOptions options;
  options.suppress = {"struct.dead-node@dead"};
  const ModuleReport report = lint_module(m, options);
  EXPECT_TRUE(has_rule(report, "struct.dead-node"));
  EXPECT_FALSE(has_rule(report, "struct.dead-node", /*unsuppressed_only=*/true));
  EXPECT_EQ(report.warnings, 0u);
  EXPECT_EQ(report.suppressed, 1u);
}

// ---------------------------------------------------------------------------
// Paper chain: every stage must lint clean (no errors).

TEST(LintTest, PaperChainModulesHaveNoErrors) {
  const auto config = dsadc::decim::paper_chain_config();
  const auto chain = rtl::build_chain(config);
  for (std::size_t s = 0; s < chain.stages.size(); ++s) {
    LintOptions options;
    options.module_name = chain.stage_names[s];
    const ModuleReport report = lint_module(chain.stages[s].module, options);
    EXPECT_EQ(report.errors, 0u)
        << chain.stage_names[s] << ":\n"
        << dsadc::analyze::text_report({report});
  }
  const ModuleReport full = lint_module(chain.full);
  EXPECT_EQ(full.errors, 0u) << dsadc::analyze::text_report({full});
}

// ---------------------------------------------------------------------------
// Report emission.

TEST(ReportTest, JsonRoundTripsThroughParser) {
  rtl::Module m("dead");
  const auto in = m.input("in", 4);
  (void)m.add(in, in, 5);
  m.output("out", m.neg(in, 5));
  const std::vector<ModuleReport> reports{lint_module(m)};
  const auto doc = dsadc::analyze::json_report(reports);
  const auto parsed = dsadc::verify::json_parse(doc.dump(2));
  EXPECT_EQ(parsed.at("version").as_int(), 1);
  const auto& mod = parsed.at("modules").at(std::size_t{0});
  EXPECT_EQ(mod.at("module").as_string(), "dead");
  EXPECT_EQ(mod.at("errors").as_int(), 0);
  ASSERT_GT(mod.at("findings").size(), 0u);
  const auto& f = mod.at("findings").at(std::size_t{0});
  EXPECT_TRUE(f.contains("rule"));
  EXPECT_TRUE(f.contains("severity"));
  EXPECT_EQ(parsed.at("summary").at("modules").as_int(), 1);
}

TEST(ReportTest, TextReportNamesRulesAndModules) {
  rtl::Module m("dangling");
  const auto in = m.input("in", 4);
  const auto r = m.reg_placeholder(6, 1);
  m.output("out", m.add(in, r, 6));
  const std::vector<ModuleReport> reports{lint_module(m)};
  const std::string text = dsadc::analyze::text_report(reports);
  EXPECT_NE(text.find("error[STR01]"), std::string::npos);
  EXPECT_NE(text.find("dangling"), std::string::npos);
  EXPECT_TRUE(dsadc::analyze::has_errors(reports));
}

}  // namespace
