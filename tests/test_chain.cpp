// Integration tests for the assembled decimation chain: rates, probes,
// amplitude bookkeeping and a (shortened) end-to-end SNR check against the
// paper's 14-bit / 86 dB target.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/decimator/chain.h"
#include "src/dsp/spectrum.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;

class ChainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new decim::ChainConfig(decim::paper_chain_config());
    const auto ntf = mod::synthesize_ntf(5, 16.0, 3.0, true);
    coeffs_ = new mod::CiffCoeffs(mod::realize_ciff(ntf));
  }
  static void TearDownTestSuite() {
    delete cfg_;
    delete coeffs_;
  }
  static mod::DsmOutput run_modulator(std::size_t n, double amp) {
    mod::CiffModulator m(*coeffs_, 4);
    const auto u = mod::coherent_sine(n, 5e6, 640e6, amp, nullptr);
    return m.run(u);
  }
  static decim::ChainConfig* cfg_;
  static mod::CiffCoeffs* coeffs_;
};

decim::ChainConfig* ChainTest::cfg_ = nullptr;
mod::CiffCoeffs* ChainTest::coeffs_ = nullptr;

TEST_F(ChainTest, RatesAndDecimation) {
  decim::DecimationChain chain(*cfg_);
  EXPECT_EQ(chain.total_decimation(), 16u);
  EXPECT_NEAR(chain.output_rate_hz(), 40e6, 1.0);
  EXPECT_GT(chain.group_delay_input_samples(), 400u);
  EXPECT_LT(chain.group_delay_input_samples(), 1500u);
}

TEST_F(ChainTest, OutputCountAndProbeLayout) {
  decim::DecimationChain chain(*cfg_);
  const auto dsm = run_modulator(1 << 13, 0.5);
  std::vector<decim::StageProbe> probes;
  const auto out = chain.process(dsm.codes, &probes);
  EXPECT_EQ(out.size(), (std::size_t{1} << 13) / 16);
  ASSERT_EQ(probes.size(), 7u);
  EXPECT_EQ(probes[0].name, "input");
  EXPECT_EQ(probes.back().name, "equalizer");
  // Rates halve through the chain.
  EXPECT_NEAR(probes[0].rate_hz, 640e6, 1.0);
  EXPECT_NEAR(probes[3].rate_hz, 80e6, 1.0);
  EXPECT_NEAR(probes[4].rate_hz, 40e6, 1.0);
}

TEST_F(ChainTest, NoSaturationAtMsa) {
  decim::DecimationChain chain(*cfg_);
  const auto dsm = run_modulator(1 << 14, 0.81);
  const auto out = chain.process(dsm.codes);
  const std::int64_t rail = cfg_->output_format.raw_max();
  std::size_t at_rail = 0;
  for (std::int64_t v : out) {
    if (v >= rail || v <= -rail - 1) ++at_rail;
  }
  EXPECT_EQ(at_rail, 0u);
}

// In-MSA stimuli never clip: the formats carry Hogenauer-style guard bits
// and the scaler maps the MSA peak below full scale, so the per-site
// fx.saturate.* counters must all stay at zero.
TEST_F(ChainTest, SaturationCountersZeroAtMsa) {
  if (!obs::kCompiledOn) GTEST_SKIP() << "instrumentation compiled out";
  obs::set_enabled(true);
  auto& reg = obs::Registry::instance();
  reg.reset_all();
  decim::DecimationChain chain(*cfg_);
  const auto dsm = run_modulator(1 << 14, 0.81);
  chain.process(dsm.codes);
  EXPECT_EQ(reg.counter_total("fx.saturate."), 0u);
  // The instrumentation was live: rounding work was counted.
  EXPECT_GT(reg.counter_total("fx.round."), 0u);
  EXPECT_GT(reg.counter_total("chain.samples."), 0u);
}

// An overload ramp drives the signal past the +-MSA full scale the scaler
// was designed for; the saturating output stages must clip (and count it).
// The ramp's tone frequency is drawn from (0.001, 0.2) cycles/sample, so
// some seeds land in the stopband and get filtered before they can clip --
// sweep a handful of seeds and require that the in-band ones saturate.
TEST_F(ChainTest, OverloadRampTripsSaturationCounters) {
  if (!obs::kCompiledOn) GTEST_SKIP() << "instrumentation compiled out";
  obs::set_enabled(true);
  auto& reg = obs::Registry::instance();
  reg.reset_all();
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    decim::DecimationChain chain(*cfg_);
    std::mt19937_64 rng(seed);
    const std::vector<std::int64_t> raw = verify::make_stimulus(
        verify::StimulusClass::kOverloadRamp, 1 << 14, cfg_->input_format,
        rng);
    std::vector<std::int32_t> codes(raw.begin(), raw.end());
    chain.process(codes);
    if (reg.counter_total("fx.saturate.") > 0) break;
  }
  EXPECT_GT(reg.counter_total("fx.saturate."), 0u);
}

TEST_F(ChainTest, FullScaleMappingNearOne) {
  decim::DecimationChain chain(*cfg_);
  const auto dsm = run_modulator(1 << 14, 0.81);
  const auto out = chain.process_to_real(dsm.codes);
  double peak = 0.0;
  for (std::size_t i = 256; i < out.size(); ++i) {
    peak = std::max(peak, std::abs(out[i]));
  }
  // Scaling restores the MSA signal to most of the +-1 range.
  EXPECT_GT(peak, 0.85);
  EXPECT_LT(peak, 1.0);
}

TEST_F(ChainTest, EndToEndSnrNearArithmeticCap) {
  decim::DecimationChain chain(*cfg_);
  const auto dsm = run_modulator(1 << 16, 0.81);
  ASSERT_TRUE(dsm.stable);
  const auto out = chain.process_to_real(dsm.codes);
  std::vector<double> steady(out.begin() + 512, out.end());
  const auto snr = dsp::measure_tone_snr(steady, 40e6, 20e6,
                                         dsp::WindowKind::kKaiser, 8, 8, 22.0);
  // 14-bit output at ~0.95 FS caps the measurable SNR around 85 dB; the
  // paper's target resolution is 14 bits (86 dB nominal).
  EXPECT_GT(snr.snr_db, 82.0);
  EXPECT_GT(snr.enob_bits, 13.3);
}

TEST_F(ChainTest, WideOutputShowsFilterMargin) {
  // With the final 14-bit rounding removed, the chain itself preserves
  // more than the 86 dB the spec requires of the filtering.
  decim::ChainConfig wide = *cfg_;
  wide.output_format = fx::Format{20, 18};
  wide.scaler_out_format = fx::Format{22, 19};
  decim::DecimationChain chain(wide);
  const auto dsm = run_modulator(1 << 16, 0.81);
  std::vector<std::int64_t> raw = chain.process(dsm.codes);
  std::vector<double> x;
  for (std::size_t i = 512; i < raw.size(); ++i) {
    x.push_back(fx::to_double(raw[i], wide.output_format));
  }
  const auto snr = dsp::measure_tone_snr(x, 40e6, 20e6,
                                         dsp::WindowKind::kKaiser, 8, 8, 22.0);
  EXPECT_GT(snr.snr_db, 88.0);
}

TEST_F(ChainTest, ResetMakesRunsIdentical) {
  decim::DecimationChain chain(*cfg_);
  const auto dsm = run_modulator(1 << 12, 0.6);
  const auto a = chain.process(dsm.codes);
  chain.reset();
  const auto b = chain.process(dsm.codes);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(ChainTest, DcInputMapsThroughGainChain) {
  decim::DecimationChain chain(*cfg_);
  // Constant code 4 at the input: output = 4 * scale (in code units).
  std::vector<std::int32_t> codes(1 << 12, 4);
  const auto out = chain.process_to_real(codes);
  // The equalizer's DC gain deviates from 1 by its equiripple delta.
  const double expect = 4.0 * cfg_->scale;
  EXPECT_NEAR(out.back(), expect, 0.08 * expect);
}

TEST_F(ChainTest, BlockSplitInvariance) {
  // Streaming: processing in arbitrary chunks equals one-shot processing
  // (all stages carry state across process() calls).
  const auto dsm = run_modulator(1 << 12, 0.6);
  decim::DecimationChain one(*cfg_);
  const auto ref = one.process(dsm.codes);
  decim::DecimationChain chunked(*cfg_);
  std::vector<std::int64_t> got;
  std::size_t pos = 0;
  for (std::size_t chunk : {311, 1024, 17, 1500, 1244}) {
    std::vector<std::int32_t> part(dsm.codes.begin() + pos,
                                   dsm.codes.begin() + pos + chunk);
    const auto out = chunked.process(part);
    got.insert(got.end(), out.begin(), out.end());
    pos += chunk;
  }
  ASSERT_EQ(pos, dsm.codes.size());
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(got[i], ref[i]) << i;
  }
}

TEST(ChainConfig, PaperDefaultsSane) {
  const auto cfg = decim::paper_chain_config();
  EXPECT_EQ(cfg.cic_stages.size(), 3u);
  EXPECT_EQ(cfg.hbf.order(), 110u);
  EXPECT_EQ(cfg.equalizer_taps.size(), 65u);
  EXPECT_EQ(cfg.output_format.width, 14);
  EXPECT_NEAR(cfg.input_rate_hz, 640e6, 1.0);
  EXPECT_GT(cfg.scale, 0.1);
  EXPECT_LT(cfg.scale, 0.2);
}

TEST(ChainConfig, NonPowerOfTwoGainRejected) {
  auto cfg = decim::paper_chain_config();
  cfg.cic_stages[0].decimation = 3;  // gain 3^4 is not a power of two
  EXPECT_THROW(decim::DecimationChain{cfg}, std::invalid_argument);
}

}  // namespace
