// Fixed-point FIR machinery: FixedTaps, FirDecimator vs direct
// convolution, and the polyphase half-band specialization's bit-exact
// agreement with the generic path.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/decimator/fir.h"
#include "src/filterdesign/halfband.h"

namespace {

using namespace dsadc;
using decim::FirDecimator;
using decim::FixedTaps;
using decim::PolyphaseHalfbandDecimator;

std::vector<std::int64_t> random_samples(std::size_t n, int bits, unsigned s) {
  std::mt19937 rng(s);
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-hi, hi);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(FixedTaps, RoundTripWithinLsb) {
  const std::vector<double> taps{0.1, -0.25, 0.0317, 0.9999};
  const FixedTaps ft = FixedTaps::from_real(taps, 12);
  const auto back = ft.to_real();
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_LE(std::abs(back[i] - taps[i]), std::ldexp(0.5, -12) + 1e-15);
  }
  EXPECT_THROW(FixedTaps::from_real(taps, -1), std::invalid_argument);
}

TEST(FirDecimator, MatchesDirectConvolution) {
  const std::vector<double> taps{0.25, 0.5, 0.25, -0.125};
  const FixedTaps ft = FixedTaps::from_real(taps, 10);
  FirDecimator fir(ft, 1, fx::Format{12, 0}, fx::Format{24, 10});
  const auto in = random_samples(256, 12, 5);
  const auto out = fir.process(in);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t n = 0; n < in.size(); ++n) {
    std::int64_t acc = 0;
    for (std::size_t k = 0; k < ft.size() && k <= n; ++k) {
      acc += ft.taps[k] * in[n - k];
    }
    // Output format keeps all fractional bits -> exact.
    EXPECT_EQ(out[n], acc) << n;
  }
}

TEST(FirDecimator, DecimationPhase) {
  // Identity filter with decimation 4: keeps samples 0, 4, 8, ...
  FirDecimator fir(FixedTaps{{1}, 0}, 4, fx::Format{8, 0}, fx::Format{8, 0});
  std::vector<std::int64_t> in{10, 11, 12, 13, 14, 15, 16, 17, 18};
  const auto out = fir.process(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 14);
  EXPECT_EQ(out[2], 18);
}

TEST(FirDecimator, OutputRoundingAndSaturation) {
  // Gain-2 filter saturates an almost-full-scale input in a narrow output.
  FirDecimator fir(FixedTaps{{2}, 0}, 1, fx::Format{8, 0}, fx::Format{8, 0});
  std::int64_t y = 0;
  ASSERT_TRUE(fir.push(100, y));
  EXPECT_EQ(y, 127);  // saturated
  FirDecimator fir2(FixedTaps{{1}, 1}, 1, fx::Format{8, 0}, fx::Format{8, 0});
  ASSERT_TRUE(fir2.push(5, y));  // 5 * 0.5 = 2.5 -> rounds to 3
  EXPECT_EQ(y, 3);
}

TEST(FirDecimator, RejectsBadArgs) {
  EXPECT_THROW(FirDecimator(FixedTaps{{}, 0}, 1, fx::Format{8, 0},
                            fx::Format{8, 0}),
               std::invalid_argument);
  EXPECT_THROW(FirDecimator(FixedTaps{{1}, 0}, 0, fx::Format{8, 0},
                            fx::Format{8, 0}),
               std::invalid_argument);
}

class PolyphaseVsDirect : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PolyphaseVsDirect, BitIdenticalToGenericFir) {
  const std::size_t j = GetParam();
  const auto hb = design::design_halfband(j, 0.21);
  const FixedTaps ft = FixedTaps::from_real(hb.taps, 16);
  const fx::Format in_fmt{14, 0}, out_fmt{14, 0};
  FirDecimator generic(ft, 2, in_fmt, out_fmt);
  PolyphaseHalfbandDecimator poly(ft, in_fmt, out_fmt);
  const auto in = random_samples(1024, 14, static_cast<unsigned>(j));
  const auto a = generic.process(in);
  const auto b = poly.process(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "output " << i << " (J=" << j << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PolyphaseVsDirect,
                         ::testing::Values(3, 4, 8, 16, 28));

TEST(Polyphase, MacSavings) {
  const auto hb = design::design_halfband(8, 0.21);
  const FixedTaps ft = FixedTaps::from_real(hb.taps, 16);
  PolyphaseHalfbandDecimator poly(ft, fx::Format{14, 0}, fx::Format{14, 0});
  // 31 taps total, 16 nonzero even-branch + 1 center: about half the MACs.
  EXPECT_LE(poly.macs_per_output(), ft.size() / 2 + 2);
}

TEST(Polyphase, RejectsNonHalfband) {
  // Wrong length.
  EXPECT_THROW(PolyphaseHalfbandDecimator(FixedTaps{{1, 2, 3, 4}, 4},
                                          fx::Format{8, 0}, fx::Format{8, 0}),
               std::invalid_argument);
  // Right length, nonzero even-offset tap.
  FixedTaps bad = FixedTaps::from_real(design::design_halfband(3, 0.2).taps, 12);
  bad.taps[0] = bad.taps[0] ? bad.taps[0] : 1;
  bad.taps[1] = 99;  // offset 4 from center (even) - violates structure
  EXPECT_THROW(PolyphaseHalfbandDecimator(bad, fx::Format{8, 0},
                                          fx::Format{8, 0}),
               std::invalid_argument);
}

TEST(FirDecimator, ResetClearsHistory) {
  const std::vector<double> halves{0.5, 0.5};
  const FixedTaps ft = FixedTaps::from_real(halves, 8);
  FirDecimator fir(ft, 1, fx::Format{10, 0}, fx::Format{20, 8});
  const auto in = random_samples(64, 10, 9);
  const auto a = fir.process(in);
  fir.reset();
  const auto b = fir.process(in);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
