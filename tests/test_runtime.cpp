// Multi-channel runtime + pipelined executor: bit-exactness against the
// scalar DecimationChain (outputs AND fx saturation/round counter totals),
// determinism across worker counts, and the SPSC ring protocol.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/runtime/multichannel.h"
#include "src/runtime/pipeline.h"
#include "src/runtime/spsc.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;

std::uint32_t fuzz_seed(std::uint32_t fallback) {
  if (const char* env = std::getenv("DSADC_FUZZ_SEED")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint32_t>(v);
  }
  return fallback;
}

void set_runtime_threads(const char* value) {
  if (value == nullptr) {
    ::unsetenv("DSADC_RUNTIME_THREADS");
  } else {
    ::setenv("DSADC_RUNTIME_THREADS", value, 1);
  }
}

/// Modulator codes for one channel from the shared stimulus library.
std::vector<std::int32_t> stimulus_codes(verify::StimulusClass c,
                                         std::size_t n,
                                         std::mt19937_64& rng) {
  const auto raw = verify::make_stimulus(c, n, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  return codes;
}

/// The fx event-counter totals the chain's requantization sites produce.
/// Counter names are stable; equality of the whole map proves the bank /
/// pipelined kernels made the identical per-sample round and saturate
/// decisions as the scalar chain.
std::map<std::string, std::uint64_t> fx_snapshot() {
  static const char* kSites[] = {"chain_hbf_in", "hbf_in",     "hbf_product",
                                 "hbf_internal", "hbf_out",    "scaler_out",
                                 "fir_out"};
  static const char* kEvents[] = {"saturate", "round", "wrap"};
  std::map<std::string, std::uint64_t> snap;
  auto& reg = obs::Registry::instance();
  for (const char* site : kSites) {
    for (const char* ev : kEvents) {
      const std::string name =
          std::string("fx.") + ev + "." + site;
      snap[name] = reg.counter(name).value();
    }
  }
  return snap;
}

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::instance().reset_all();
    set_runtime_threads("1");
  }
  void TearDown() override { set_runtime_threads(nullptr); }
};

// --- SPSC ring protocol -------------------------------------------------

TEST(SpscRing, FifoSingleThread) {
  runtime::SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int v = 0;
  EXPECT_FALSE(ring.try_pop(v));
  for (int i = 0; i < 4; ++i) {
    int x = i;
    EXPECT_TRUE(ring.try_push(x));
  }
  int x = 99;
  EXPECT_FALSE(ring.try_push(x)) << "ring should be full";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  runtime::SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, CloseDrainsRemainingElements) {
  runtime::SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) {
    int x = i;
    ASSERT_TRUE(ring.try_push(x));
  }
  ring.close();
  int v = -1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.pop(v)) << "closed and drained";
}

TEST(SpscRing, ThreadedFifoOrder) {
  runtime::SpscRing<std::size_t> ring(4);  // small: forces backpressure
  constexpr std::size_t kN = 20000;
  std::thread producer([&ring] {
    for (std::size_t i = 0; i < kN; ++i) ring.push(i);
    ring.close();
  });
  std::size_t expected = 0;
  std::size_t v = 0;
  while (ring.pop(v)) {
    ASSERT_EQ(v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kN);
}

TEST(SpscRing, ProducerCloseWhileConsumerBlocksDeliversFinalBlock) {
  // The close-flag race the service depends on: a consumer blocked in
  // pop() on an empty ring must receive an element pushed immediately
  // before close() -- the final partial block -- and only then get
  // end-of-stream. No deadlock, no drop, on any interleaving.
  for (int trial = 0; trial < 200; ++trial) {
    runtime::SpscRing<int> ring(8);
    std::atomic<bool> consumer_ready{false};
    std::vector<int> got;
    std::thread consumer([&] {
      consumer_ready.store(true);
      int v = 0;
      while (ring.pop(v)) got.push_back(v);  // blocks on empty
    });
    while (!consumer_ready.load()) std::this_thread::yield();
    int final_block = 41;
    ASSERT_TRUE(ring.try_push(final_block));
    ring.close();  // push-then-close: EOS after the final element
    consumer.join();
    ASSERT_EQ(got, std::vector<int>{41}) << "trial " << trial;
  }
}

TEST(SpscRing, ConsumerCloseUnblocksFullRingProducer) {
  // The other direction: a producer stuck in push() on a full ring whose
  // consumer cancels must return false instead of spinning forever.
  runtime::SpscRing<int> ring(2);
  for (int i = 0; i < 2; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  std::atomic<bool> pushed{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result.store(ring.push(99));  // full: blocks until close
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load()) << "push should be blocked on a full ring";
  ring.close();
  producer.join();
  EXPECT_FALSE(push_result.load()) << "push after close must report failure";
  int v = 0;
  EXPECT_FALSE(ring.try_push(v)) << "pushes fail once closed";
}

// --- MPMC ring (service admission queues) -------------------------------

TEST(MpmcRing, SingleProducerFifoOrder) {
  // The ordering contract the service leans on: one producer's pushes
  // (a connection reader) leave the ring in push order even with
  // concurrent consumers... here checked with one consumer for a strict
  // sequence, under capacity pressure.
  runtime::MpmcRing<std::size_t> ring(4);
  constexpr std::size_t kN = 20000;
  std::thread producer([&ring] {
    for (std::size_t i = 0; i < kN; ++i) ring.push(i);
    ring.close();
  });
  std::size_t expected = 0;
  std::size_t v = 0;
  while (ring.pop(v)) {
    ASSERT_EQ(v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kN);
}

TEST(MpmcRing, ManyProducersManyConsumersLoseNothing) {
  runtime::MpmcRing<std::size_t> ring(16);
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kPerProducer = 5000;

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ring.push(p * kPerProducer + i + 1);  // distinct nonzero values
      }
    });
  }
  std::vector<std::thread> consumers;
  std::vector<std::uint64_t> sums(kConsumers, 0);
  std::vector<std::size_t> counts(kConsumers, 0);
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&ring, &sums, &counts, c] {
      std::size_t v = 0;
      while (ring.pop(v)) {
        sums[c] += v;
        ++counts[c];
      }
    });
  }
  for (auto& t : producers) t.join();
  ring.close();
  for (auto& t : consumers) t.join();

  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  std::uint64_t sum = 0;
  std::size_t count = 0;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    sum += sums[c];
    count += counts[c];
  }
  EXPECT_EQ(count, kTotal);
  EXPECT_EQ(sum, kTotal * (kTotal + 1) / 2) << "every element exactly once";
}

TEST(MpmcRing, CapacityOneRoundsUpToTwo) {
  // Regression: a 1-slot Vyukov ring lets a second push overwrite the
  // unconsumed element and livelocks the consumer; capacity must floor
  // at 2 so a capacity-1 request still yields a correct queue.
  runtime::MpmcRing<int> ring(1);
  EXPECT_EQ(ring.capacity(), 2u);
  int v = 10;
  ASSERT_TRUE(ring.try_push(v));
  v = 20;
  ASSERT_TRUE(ring.try_push(v));
  v = 30;
  EXPECT_FALSE(ring.try_push(v)) << "full at the rounded capacity";
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 10);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 20);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpmcRing, TryPushFailsOnlyWhenFullOrClosed) {
  runtime::MpmcRing<int> ring(2);
  int v = 1;
  EXPECT_TRUE(ring.try_push(v));
  v = 2;
  EXPECT_TRUE(ring.try_push(v));
  v = 3;
  EXPECT_FALSE(ring.try_push(v)) << "full";
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  v = 3;
  EXPECT_TRUE(ring.try_push(v)) << "slot reusable after pop";
  ring.close();
  v = 4;
  EXPECT_FALSE(ring.try_push(v)) << "closed";
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(ring.pop(out)) << "close drains remaining elements";
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(ring.pop(out)) << "closed and drained";
}

// --- Multi-channel SoA runtime ------------------------------------------

TEST_F(RuntimeTest, MultiChannelMatchesScalarChainAllStimuli) {
  const auto cfg = decim::paper_chain_config();
  constexpr std::size_t kChannels = 10;  // spans a group boundary (8 + 2)
  constexpr std::size_t kFrames = 4096;
  const std::uint32_t seed = fuzz_seed(11);

  for (int ci = 0; ci < verify::kNumStimulusClasses; ++ci) {
    const auto cls = static_cast<verify::StimulusClass>(ci);
    std::mt19937_64 rng(seed + static_cast<std::uint32_t>(ci));
    std::vector<std::vector<std::int32_t>> codes;
    for (std::size_t c = 0; c < kChannels; ++c) {
      codes.push_back(stimulus_codes(cls, kFrames, rng));
    }

    // Reference: one scalar chain per channel, counting fx events.
    obs::Registry::instance().reset_all();
    std::vector<std::vector<std::int64_t>> ref;
    for (std::size_t c = 0; c < kChannels; ++c) {
      decim::DecimationChain chain(cfg);
      ref.push_back(chain.process(codes[c]));
    }
    const auto ref_fx = fx_snapshot();

    obs::Registry::instance().reset_all();
    runtime::MultiChannelRuntime rt(cfg, kChannels);
    const auto got = rt.process(codes);
    const auto got_fx = fx_snapshot();

    ASSERT_EQ(got.size(), kChannels);
    for (std::size_t c = 0; c < kChannels; ++c) {
      ASSERT_EQ(got[c].size(), ref[c].size())
          << "class " << verify::stimulus_name(cls) << " channel " << c;
      for (std::size_t i = 0; i < ref[c].size(); ++i) {
        ASSERT_EQ(got[c][i], ref[c][i])
            << "class " << verify::stimulus_name(cls) << " channel " << c
            << " sample " << i;
      }
    }
    EXPECT_EQ(got_fx, ref_fx) << "class " << verify::stimulus_name(cls);
  }
}

TEST_F(RuntimeTest, MultiChannelStreamingMatchesScalarTicks) {
  // Two consecutive process() ticks must carry state exactly like two
  // scalar process() calls on persistent chains.
  const auto cfg = decim::paper_chain_config();
  constexpr std::size_t kChannels = 9;
  const std::uint32_t seed = fuzz_seed(23);
  std::mt19937_64 rng(seed);

  std::vector<std::vector<std::int32_t>> tick1, tick2;
  for (std::size_t c = 0; c < kChannels; ++c) {
    tick1.push_back(
        stimulus_codes(verify::StimulusClass::kModulator, 1000, rng));
    tick2.push_back(stimulus_codes(verify::StimulusClass::kPrbs, 1333, rng));
  }

  std::vector<decim::DecimationChain> chains;
  for (std::size_t c = 0; c < kChannels; ++c) chains.emplace_back(cfg);
  runtime::MultiChannelRuntime rt(cfg, kChannels);

  for (const auto* tick : {&tick1, &tick2}) {
    const auto got = rt.process(*tick);
    for (std::size_t c = 0; c < kChannels; ++c) {
      const auto ref = chains[c].process((*tick)[c]);
      ASSERT_EQ(got[c], ref) << "channel " << c;
    }
  }
}

TEST_F(RuntimeTest, MultiChannelDeterministicAcrossWorkerCounts) {
  const auto cfg = decim::paper_chain_config();
  constexpr std::size_t kChannels = 16;
  const std::uint32_t seed = fuzz_seed(37);
  std::mt19937_64 rng(seed);
  std::vector<std::vector<std::int32_t>> codes;
  for (std::size_t c = 0; c < kChannels; ++c) {
    codes.push_back(
        stimulus_codes(verify::StimulusClass::kUniform, 4096, rng));
  }

  std::vector<std::vector<std::vector<std::int64_t>>> results;
  for (const char* threads : {"1", "2", "8"}) {
    set_runtime_threads(threads);
    runtime::MultiChannelRuntime rt(cfg, kChannels);
    results.push_back(rt.process(codes));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i], results[0])
        << "worker count must not change results";
  }
}

TEST_F(RuntimeTest, MultiChannelFuzzMatchesScalar) {
  const auto cfg = decim::paper_chain_config();
  const std::uint32_t seed = fuzz_seed(101);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> chan_dist(1, 19);
  std::uniform_int_distribution<std::size_t> len_dist(64, 3000);

  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t channels = chan_dist(rng);
    const std::size_t frames = len_dist(rng);
    const auto cls = verify::random_stimulus_class(rng);
    std::vector<std::vector<std::int32_t>> codes;
    for (std::size_t c = 0; c < channels; ++c) {
      codes.push_back(stimulus_codes(cls, frames, rng));
    }
    runtime::MultiChannelRuntime rt(cfg, channels);
    const auto got = rt.process(codes);
    for (std::size_t c = 0; c < channels; ++c) {
      decim::DecimationChain chain(cfg);
      const auto ref = chain.process(codes[c]);
      ASSERT_EQ(got[c], ref)
          << "trial " << trial << " channel " << c << " class "
          << verify::stimulus_name(cls) << " (DSADC_FUZZ_SEED=" << seed
          << ")";
    }
  }
}

// --- Pipelined stage executor -------------------------------------------

TEST_F(RuntimeTest, PipelinedMatchesScalarChainAllStimuli) {
  const auto cfg = decim::paper_chain_config();
  constexpr std::size_t kFrames = 8192;
  const std::uint32_t seed = fuzz_seed(53);

  for (int ci = 0; ci < verify::kNumStimulusClasses; ++ci) {
    const auto cls = static_cast<verify::StimulusClass>(ci);
    std::mt19937_64 rng(seed + static_cast<std::uint32_t>(ci));
    const auto codes = stimulus_codes(cls, kFrames, rng);

    obs::Registry::instance().reset_all();
    decim::DecimationChain chain(cfg);
    const auto ref = chain.process(codes);
    const auto ref_fx = fx_snapshot();

    set_runtime_threads("8");  // one worker per stage (7 stages)
    obs::Registry::instance().reset_all();
    runtime::PipelinedChain pipe(cfg, /*block_frames=*/512);
    const auto got = pipe.process(codes);
    const auto got_fx = fx_snapshot();

    ASSERT_EQ(got, ref) << "class " << verify::stimulus_name(cls);
    EXPECT_EQ(got_fx, ref_fx) << "class " << verify::stimulus_name(cls);
  }
}

TEST_F(RuntimeTest, PipelinedDeterministicAcrossWorkersAndBlockSizes) {
  const auto cfg = decim::paper_chain_config();
  const std::uint32_t seed = fuzz_seed(67);
  std::mt19937_64 rng(seed);
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 10000, rng);

  decim::DecimationChain chain(cfg);
  const auto ref = chain.process(codes);

  for (const char* threads : {"1", "2", "8"}) {
    for (const std::size_t block : {std::size_t{256}, std::size_t{1024}}) {
      set_runtime_threads(threads);
      runtime::PipelinedChain pipe(cfg, block);
      const auto got = pipe.process(codes);
      ASSERT_EQ(got, ref) << "threads=" << threads << " block=" << block;
    }
  }
}

TEST_F(RuntimeTest, PipelinedStreamingCarriesState) {
  // Consecutive process() calls continue the stream (no state reset at
  // call boundaries), exactly like the scalar chain.
  const auto cfg = decim::paper_chain_config();
  const std::uint32_t seed = fuzz_seed(83);
  std::mt19937_64 rng(seed);
  const auto a = stimulus_codes(verify::StimulusClass::kSine, 3000, rng);
  const auto b = stimulus_codes(verify::StimulusClass::kStep, 2049, rng);

  decim::DecimationChain chain(cfg);
  set_runtime_threads("8");
  runtime::PipelinedChain pipe(cfg, /*block_frames=*/512);
  for (const auto* codes : {&a, &b}) {
    const auto ref = chain.process(*codes);
    const auto got = pipe.process(*codes);
    ASSERT_EQ(got, ref);
  }
}

TEST_F(RuntimeTest, PipelinedFuzzMatchesScalar) {
  const auto cfg = decim::paper_chain_config();
  const std::uint32_t seed = fuzz_seed(131);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> len_dist(1, 6000);
  std::uniform_int_distribution<std::size_t> block_dist(16, 2048);

  set_runtime_threads("8");
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t frames = len_dist(rng);
    const auto cls = verify::random_stimulus_class(rng);
    const auto codes = stimulus_codes(cls, frames, rng);
    decim::DecimationChain chain(cfg);
    runtime::PipelinedChain pipe(cfg, block_dist(rng));
    const auto ref = chain.process(codes);
    const auto got = pipe.process(codes);
    ASSERT_EQ(got, ref) << "trial " << trial << " class "
                        << verify::stimulus_name(cls)
                        << " (DSADC_FUZZ_SEED=" << seed << ")";
  }
}

TEST_F(RuntimeTest, QueueDepthHistogramsArePopulated) {
  const auto cfg = decim::paper_chain_config();
  const std::uint32_t seed = fuzz_seed(149);
  std::mt19937_64 rng(seed);
  const auto codes =
      stimulus_codes(verify::StimulusClass::kUniform, 8192, rng);

  set_runtime_threads("4");
  obs::Registry::instance().reset_all();
  runtime::PipelinedChain pipe(cfg, /*block_frames=*/256);
  (void)pipe.process(codes);
  auto& reg = obs::Registry::instance();
  // 4 workers -> rings q0..q4; every block passes through each ring.
  const auto& h = reg.histogram("runtime.queue_depth.q0", {0, 1, 2, 4, 8});
  EXPECT_GT(h.count(), 0u);
}

TEST_F(RuntimeTest, PerChannelThroughputGaugesArePublished) {
  const auto cfg = decim::paper_chain_config();
  const std::uint32_t seed = fuzz_seed(163);
  std::mt19937_64 rng(seed);
  std::vector<std::vector<std::int32_t>> codes;
  for (std::size_t c = 0; c < 3; ++c) {
    codes.push_back(
        stimulus_codes(verify::StimulusClass::kPrbs, 2048, rng));
  }
  obs::Registry::instance().reset_all();
  runtime::MultiChannelRuntime rt(cfg, 3);
  (void)rt.process(codes);
  auto& reg = obs::Registry::instance();
  for (std::size_t c = 0; c < 3; ++c) {
    const std::string ch = std::to_string(c);
    EXPECT_EQ(reg.counter("runtime.samples.ch" + ch).value(), 2048u);
    EXPECT_GT(reg.gauge("runtime.throughput_sps.ch" + ch).value(), 0.0);
  }
}

}  // namespace
