// Proof-carrying optimizer: per-pass behavior, proof-checker rejections,
// and the differential harness catching an injected unsound rewrite.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory_resource>
#include <span>
#include <vector>

#include "src/analyze/opt/equiv.h"
#include "src/analyze/opt/opt.h"
#include "src/analyze/opt/proof.h"
#include "src/rtl/ir.h"
#include "src/rtl/sim.h"

namespace {

using namespace dsadc;
using namespace dsadc::analyze;
using namespace dsadc::analyze::opt;
using namespace dsadc::rtl;

// Drives original vs optimized through the full differential contract with
// a deterministic full-swing stimulus on every input.
void expect_equivalent(const Module& m, const OptResult& res) {
  std::map<NodeId, std::vector<std::int64_t>> storage;
  std::uint64_t s = 0x243f6a8885a308d3ull;
  for (const auto& n : m.nodes()) {
    if (n.kind != OpKind::kInput) continue;
    const NodeId id = static_cast<NodeId>(&n - m.nodes().data());
    std::vector<std::int64_t> vals(256);
    for (auto& v : vals) {
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      const int shift = 64 - n.width;
      v = static_cast<std::int64_t>(s << shift) >> shift;
    }
    storage.emplace(id, std::move(vals));
  }
  std::map<NodeId, std::span<const std::int64_t>> inputs;
  for (const auto& [id, vals] : storage) inputs.emplace(id, vals);
  const EquivResult eq = check_optimized_equivalence(m, res, inputs);
  EXPECT_TRUE(eq.ok);
  for (const auto& e : eq.errors) ADD_FAILURE() << e;
}

void expect_proofs_check(const Module& m, const OptResult& res) {
  const ProofCheck pc = check_proofs(m, res.proofs);
  EXPECT_TRUE(pc.ok);
  for (const auto& e : pc.errors) ADD_FAILURE() << e;
}

OptOptions only(bool fold, bool simplify, bool dead, bool shrink) {
  OptOptions o;
  o.fold_constants = fold;
  o.simplify = simplify;
  o.eliminate_dead = dead;
  o.shrink_widths = shrink;
  return o;
}

TEST(OptTest, ConstFoldReplacesConstantSubgraph) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId c2 = m.constant(2, 8);
  const NodeId c3 = m.constant(3, 8);
  const NodeId s = m.add(c2, c3, 8);  // provably 5
  const NodeId y = m.add(in, s, 9);
  m.output("y", y);

  const OptResult res = optimize(m, only(true, false, true, false));
  EXPECT_GE(res.stats.folded, 1u);
  ASSERT_NE(res.node_map[static_cast<std::size_t>(s)], kInvalidNode);
  const Node& folded =
      res.module.node(res.node_map[static_cast<std::size_t>(s)]);
  EXPECT_EQ(folded.kind, OpKind::kConst);
  EXPECT_EQ(folded.value, 5);
  EXPECT_EQ(folded.width, 8);
  expect_proofs_check(m, res);
  expect_equivalent(m, res);
}

TEST(OptTest, NegAddBecomesSub) {
  Module m("t");
  const NodeId a = m.input("a", 8);
  const NodeId b = m.input("b", 8);
  const NodeId nb = m.neg(b, 10);
  const NodeId s = m.add(a, nb, 10);  // a + (-b) == a - b
  m.output("y", s);

  const OptResult res = optimize(m, only(false, true, true, false));
  EXPECT_GE(res.stats.redirected, 1u);
  const NodeId so = res.node_map[static_cast<std::size_t>(s)];
  ASSERT_NE(so, kInvalidNode);
  EXPECT_EQ(res.module.node(so).kind, OpKind::kSub);
  // The explicit negate is spliced out entirely.
  EXPECT_EQ(res.node_map[static_cast<std::size_t>(nb)], kInvalidNode);
  expect_proofs_check(m, res);
  expect_equivalent(m, res);
}

TEST(OptTest, NegAddKeptWhenNegNarrowerThanAdd) {
  // neg width < add width: the negate's own wrap is observable, so the
  // rewrite's side condition fails and the add must survive untouched.
  Module m("t");
  const NodeId a = m.input("a", 8);
  const NodeId b = m.input("b", 8);
  const NodeId nb = m.neg(b, 4);  // wraps -b into 4 bits first
  const NodeId s = m.add(a, nb, 10);
  m.output("y", s);

  const OptResult res = optimize(m, only(false, true, true, false));
  const NodeId so = res.node_map[static_cast<std::size_t>(s)];
  ASSERT_NE(so, kInvalidNode);
  EXPECT_EQ(res.module.node(so).kind, OpKind::kAdd);
  EXPECT_NE(res.node_map[static_cast<std::size_t>(nb)], kInvalidNode);
  expect_proofs_check(m, res);
  expect_equivalent(m, res);
}

TEST(OptTest, MuxWithConstantSelectForwardsArm) {
  Module m("t");
  const NodeId a = m.input("a", 8);
  const NodeId b = m.input("b", 8);
  const NodeId sel = m.constant(0, 1);
  const NodeId mx = m.mux(sel, a, b, 8);  // select 0: always the else-arm
  m.output("y", mx);

  const OptResult res = optimize(m, only(true, true, true, false));
  EXPECT_EQ(res.node_map[static_cast<std::size_t>(mx)], kInvalidNode);
  // Output now reads the surviving arm directly.
  const NodeId yo = res.node_map[static_cast<std::size_t>(m.size() - 1)];
  ASSERT_NE(yo, kInvalidNode);
  EXPECT_EQ(res.module.node(yo).a,
            res.node_map[static_cast<std::size_t>(b)]);
  expect_proofs_check(m, res);
  expect_equivalent(m, res);
}

TEST(OptTest, IdentityForwardsAreSplicedOut) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId z = m.constant(0, 4);
  const NodeId a0 = m.add(in, z, 8);  // + proven zero
  const NodeId sh = m.shl(a0, 0);     // shift by zero
  m.output("y", sh);

  const OptResult res = optimize(m, only(true, true, true, false));
  EXPECT_EQ(res.node_map[static_cast<std::size_t>(a0)], kInvalidNode);
  EXPECT_EQ(res.node_map[static_cast<std::size_t>(sh)], kInvalidNode);
  const NodeId yo = res.node_map[static_cast<std::size_t>(m.size() - 1)];
  ASSERT_NE(yo, kInvalidNode);
  EXPECT_EQ(res.module.node(yo).a,
            res.node_map[static_cast<std::size_t>(in)]);
  expect_proofs_check(m, res);
  expect_equivalent(m, res);
}

TEST(OptTest, DeadSubgraphRemoved) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId live = m.add(in, in, 9);
  const NodeId dead1 = m.sub(in, in, 9);
  const NodeId dead2 = m.reg(dead1);
  m.output("y", live);

  const OptResult res = optimize(m, only(false, false, true, false));
  EXPECT_EQ(res.stats.dead_removed, 2u);
  EXPECT_EQ(res.node_map[static_cast<std::size_t>(dead1)], kInvalidNode);
  EXPECT_EQ(res.node_map[static_cast<std::size_t>(dead2)], kInvalidNode);
  EXPECT_NE(res.node_map[static_cast<std::size_t>(live)], kInvalidNode);
  EXPECT_EQ(res.module.size(), m.size() - 2);
  expect_proofs_check(m, res);
  expect_equivalent(m, res);
}

TEST(OptTest, WidthShrinkUsesProvenInterval) {
  Module m("t");
  const NodeId in = m.input("in", 4);  // range [-8, 7]
  const NodeId s = m.add(in, in, 20);  // values fit 5 bits
  const NodeId r = m.reg(s);
  m.output("y", r);

  const OptResult res = optimize(m, only(false, false, false, true));
  EXPECT_GE(res.stats.widths_shrunk, 2u);
  EXPECT_GT(res.stats.bits_saved, 0u);
  const NodeId so = res.node_map[static_cast<std::size_t>(s)];
  const NodeId ro = res.node_map[static_cast<std::size_t>(r)];
  ASSERT_NE(so, kInvalidNode);
  ASSERT_NE(ro, kInvalidNode);
  EXPECT_EQ(res.module.node(so).width, 5);
  EXPECT_EQ(res.module.node(ro).width, 5);
  // Input ports keep their declared width.
  EXPECT_EQ(res.module.node(res.node_map[static_cast<std::size_t>(in)]).width,
            4);
  expect_proofs_check(m, res);
  expect_equivalent(m, res);
}

TEST(OptTest, InputRangeAssumptionTightensShrink) {
  Module m("t");
  const NodeId in = m.input("in", 16);
  const NodeId s = m.add(in, in, 20);
  m.output("y", s);

  OptOptions o = only(false, false, false, true);
  o.input_ranges = {{in, Interval{0, 3}}};
  const OptResult res = optimize(m, o);
  const NodeId so = res.node_map[static_cast<std::size_t>(s)];
  ASSERT_NE(so, kInvalidNode);
  EXPECT_EQ(res.module.node(so).width, 4);  // [0, 6] needs 4 signed bits
  // The proof bundle only checks under the same assumption.
  const ProofCheck wrong = check_proofs(m, res.proofs);
  EXPECT_FALSE(wrong.ok);
  const ProofCheck right = check_proofs(m, res.proofs, o.input_ranges);
  EXPECT_TRUE(right.ok);
  for (const auto& e : right.errors) ADD_FAILURE() << e;
}

TEST(OptTest, PortsAreNeverRemoved) {
  Module m("t");
  const NodeId unused = m.input("unused", 8);
  const NodeId in = m.input("in", 8);
  m.output("y", m.add(in, in, 9));
  (void)unused;

  const OptResult res = optimize(m);
  EXPECT_NE(res.node_map[static_cast<std::size_t>(unused)], kInvalidNode);
  expect_proofs_check(m, res);
  expect_equivalent(m, res);
}

// ---------------------------------------------------------------------------
// Proof-checker rejections: hand-built unsound bundles must not verify.

Module shrink_fixture(NodeId* add_out) {
  Module m("t");
  const NodeId in = m.input("in", 4);
  const NodeId s = m.add(in, in, 20);  // derived interval [-16, 14]
  m.output("y", s);
  *add_out = s;
  return m;
}

RewriteProof shrink_proof(NodeId node, int new_width, Interval claimed) {
  RewriteProof p;
  p.kind = RewriteKind::kWidthShrink;
  p.node = node;
  p.old_width = 20;
  p.new_width = new_width;
  p.interval = claimed;
  p.domain = "interval";
  return p;
}

TEST(ProofCheckTest, RejectsShrinkWithLyingInterval) {
  NodeId s = kInvalidNode;
  const Module m = shrink_fixture(&s);
  // Claimed interval [0, 1] does not contain the derived [-16, 14].
  const ProofCheck pc = check_proofs(m, {shrink_proof(s, 1, Interval{0, 1})});
  EXPECT_FALSE(pc.ok);
  ASSERT_FALSE(pc.errors.empty());
}

TEST(ProofCheckTest, RejectsShrinkBelowHonestInterval) {
  NodeId s = kInvalidNode;
  const Module m = shrink_fixture(&s);
  // Honest interval, but 3 bits cannot hold [-16, 14] (needs 5).
  const ProofCheck pc =
      check_proofs(m, {shrink_proof(s, 3, Interval{-16, 14})});
  EXPECT_FALSE(pc.ok);
}

TEST(ProofCheckTest, AcceptsSoundHandWrittenShrink) {
  NodeId s = kInvalidNode;
  const Module m = shrink_fixture(&s);
  const ProofCheck pc =
      check_proofs(m, {shrink_proof(s, 5, Interval{-16, 14})});
  EXPECT_TRUE(pc.ok);
  for (const auto& e : pc.errors) ADD_FAILURE() << e;
}

TEST(ProofCheckTest, RejectsConstFoldWithWrongValue) {
  Module m("t");
  const NodeId s = m.add(m.constant(2, 8), m.constant(3, 8), 8);
  m.output("y", s);

  RewriteProof p;
  p.kind = RewriteKind::kConstFold;
  p.node = s;
  p.value = 7;  // actually 5
  p.domain = "const";
  const ProofCheck pc = check_proofs(m, {p});
  EXPECT_FALSE(pc.ok);

  p.value = 5;
  const ProofCheck good = check_proofs(m, {p});
  EXPECT_TRUE(good.ok);
}

TEST(ProofCheckTest, RejectsLiveNodeClaimedDead) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId s = m.add(in, in, 9);
  m.output("y", s);

  RewriteProof p;
  p.kind = RewriteKind::kDeadNode;
  p.node = s;  // feeds the output: reachable
  p.domain = "liveness";
  const ProofCheck pc = check_proofs(m, {p});
  EXPECT_FALSE(pc.ok);
}

TEST(ProofCheckTest, RejectsDuplicateProofsForOneNode) {
  NodeId s = kInvalidNode;
  const Module m = shrink_fixture(&s);
  const RewriteProof p = shrink_proof(s, 5, Interval{-16, 14});
  const ProofCheck pc = check_proofs(m, {p, p});
  EXPECT_FALSE(pc.ok);
}

// ---------------------------------------------------------------------------
// Differential harness: an unsound width change that no proof covers must
// surface as a concrete output/activity counterexample.

TEST(EquivHarnessTest, CatchesInjectedUnsoundShrink) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId s = m.add(in, in, 9);  // genuinely needs all 9 bits
  m.output("y", s);

  // Identity rebuild (all passes off), then tamper: shrink the adder far
  // below its value range so wrap changes committed values.
  OptResult res = optimize(m, only(false, false, false, false));
  const NodeId so = res.node_map[static_cast<std::size_t>(s)];
  ASSERT_NE(so, kInvalidNode);
  res.module.node(so).width = 3;

  std::vector<std::int64_t> vals;
  for (std::int64_t v = -128; v < 128; ++v) vals.push_back(v);
  const std::map<NodeId, std::span<const std::int64_t>> inputs{
      {in, std::span<const std::int64_t>(vals)}};
  const EquivResult eq = check_optimized_equivalence(m, res, inputs);
  EXPECT_FALSE(eq.ok);
  EXPECT_FALSE(eq.errors.empty());
}

TEST(EquivHarnessTest, PassesOnUntamperedIdentityRebuild) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId s = m.add(in, in, 9);
  m.output("y", s);

  const OptResult res = optimize(m, only(false, false, false, false));
  EXPECT_EQ(res.module.size(), m.size());
  expect_equivalent(m, res);
}

// Arena option: the optimized module's nodes live on the caller's arena
// and the result is still equivalent.
TEST(OptTest, ArenaRebuildMatchesHeapRebuild) {
  Module m("t");
  const NodeId in = m.input("in", 6);
  const NodeId d = m.add(in, m.constant(9, 6), 8);
  const NodeId r = m.reg(d);
  m.output("y", r);

  std::pmr::monotonic_buffer_resource arena;
  OptOptions o;
  o.arena = &arena;
  const OptResult on_arena = optimize(m, o);
  const OptResult on_heap = optimize(m);
  ASSERT_EQ(on_arena.module.size(), on_heap.module.size());
  for (std::size_t i = 0; i < on_arena.module.size(); ++i) {
    const Node& a = on_arena.module.nodes()[i];
    const Node& b = on_heap.module.nodes()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_EQ(a.c, b.c);
  }
  expect_proofs_check(m, on_arena);
  expect_equivalent(m, on_arena);
}

}  // namespace
