// Invariants of the paper's chain configuration (Section III / Fig. 5):
// the fully-designed config returned by decim::paper_chain_config() must
// keep the structural properties the rest of the flow (RTL generation,
// noise budget, verification harness) relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/decimator/chain.h"
#include "src/filterdesign/cic.h"

namespace {

using dsadc::decim::DecimationChain;
using dsadc::decim::paper_chain_config;

TEST(PaperConfig, SincCascadeIsSinc4Sinc4Sinc6) {
  const auto cfg = paper_chain_config();
  ASSERT_EQ(cfg.cic_stages.size(), 3u);
  EXPECT_EQ(cfg.cic_stages[0].order, 4);
  EXPECT_EQ(cfg.cic_stages[1].order, 4);
  EXPECT_EQ(cfg.cic_stages[2].order, 6);
  for (const auto& s : cfg.cic_stages) EXPECT_EQ(s.decimation, 2);
}

TEST(PaperConfig, RegisterWidthsFollowHogenauerBound) {
  // Eq. (2): Bmax = K * log2(M) + Bin - 1, so the register needs
  // ceil(K * log2 M) + Bin bits. With M = 2 throughout that is K + Bin.
  const auto cfg = paper_chain_config();
  for (const auto& s : cfg.cic_stages) {
    const int expected =
        static_cast<int>(std::ceil(
            s.order * std::log2(static_cast<double>(s.decimation)))) +
        s.input_bits;
    EXPECT_EQ(s.register_width(), expected)
        << "K=" << s.order << " M=" << s.decimation << " Bin=" << s.input_bits;
  }
  // The concrete paper numbers: 4+4=8, 4+8=12, 6+12=18 bits.
  EXPECT_EQ(cfg.cic_stages[0].register_width(), 8);
  EXPECT_EQ(cfg.cic_stages[1].register_width(), 12);
  EXPECT_EQ(cfg.cic_stages[2].register_width(), 18);
}

TEST(PaperConfig, StageInputWidthsChain) {
  // Each stage's declared input width must equal the previous stage's
  // register (= output) width; the first stage sees the 4-bit codes.
  const auto cfg = paper_chain_config();
  EXPECT_EQ(cfg.cic_stages.front().input_bits, cfg.input_format.width);
  for (std::size_t i = 1; i < cfg.cic_stages.size(); ++i) {
    EXPECT_EQ(cfg.cic_stages[i].input_bits,
              cfg.cic_stages[i - 1].register_width());
  }
  // The Sinc6 output feeds the halfband at full width.
  EXPECT_EQ(cfg.cic_stages.back().register_width(), cfg.hbf_in_format.width);
}

TEST(PaperConfig, CumulativeDecimationIsSixteen) {
  const auto cfg = paper_chain_config();
  std::size_t m = 2;  // trailing halfband decimates by 2
  for (const auto& s : cfg.cic_stages) {
    m *= static_cast<std::size_t>(s.decimation);
  }
  EXPECT_EQ(m, 16u);

  DecimationChain chain(cfg);
  EXPECT_EQ(chain.total_decimation(), 16u);
  EXPECT_DOUBLE_EQ(chain.output_rate_hz(), cfg.input_rate_hz / 16.0);
}

TEST(PaperConfig, OutputIsFourteenBits) {
  const auto cfg = paper_chain_config();
  EXPECT_EQ(cfg.output_format.width, 14);
  EXPECT_EQ(cfg.output_format.frac, 13);  // +-1.0 full scale
}

TEST(PaperConfig, HbfMatchesPaperParameters) {
  const auto cfg = paper_chain_config();
  EXPECT_EQ(cfg.hbf_coeff_frac_bits, 24);
  // Saramaki tap-cascade with n1=3 outer taps and an n2=6 subfilter.
  EXPECT_EQ(cfg.hbf.n1, 3u);
  EXPECT_EQ(cfg.hbf.n2, 6u);
  EXPECT_EQ(cfg.hbf.f1.size(), cfg.hbf.n1);
  EXPECT_EQ(cfg.hbf.f2.size(), cfg.hbf.n2);
}

TEST(PaperConfig, ScalerMapsMsaToFullScale) {
  // S = headroom / (MSA*7 + 0.5) for MSA = 0.81: peak code amplitude maps
  // to just under +-1.0 at the 14-bit output.
  const auto cfg = paper_chain_config();
  EXPECT_NEAR(cfg.scale, 0.98 / (0.81 * 7.0 + 0.5), 1e-12);
  EXPECT_NEAR(cfg.scale * (0.81 * 7.0 + 0.5), 0.98, 1e-12);
}

TEST(PaperConfig, EqualizerIsSymmetric65Tap) {
  const auto cfg = paper_chain_config();
  ASSERT_EQ(cfg.equalizer_taps.size(), 65u);
  for (std::size_t i = 0; i < cfg.equalizer_taps.size() / 2; ++i) {
    EXPECT_DOUBLE_EQ(cfg.equalizer_taps[i],
                     cfg.equalizer_taps[cfg.equalizer_taps.size() - 1 - i])
        << "tap " << i;
  }
}

}  // namespace
