// Chebyshev polynomial identities used by the Saramaki decomposition.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/chebyshev.h"
#include "src/dsp/polynomial.h"

namespace {

using namespace dsadc::dsp;

TEST(ChebyshevT, BaseCases) {
  EXPECT_NEAR(chebyshev_t(0, 0.3), 1.0, 1e-15);
  EXPECT_NEAR(chebyshev_t(1, 0.3), 0.3, 1e-15);
}

TEST(ChebyshevT, CosineIdentityInsideUnitInterval) {
  for (int n : {2, 3, 5, 8, 13}) {
    for (double th = 0.1; th < 3.1; th += 0.37) {
      const double x = std::cos(th);
      EXPECT_NEAR(chebyshev_t(static_cast<std::size_t>(n), x),
                  std::cos(n * th), 1e-10)
          << "n=" << n << " theta=" << th;
    }
  }
}

TEST(ChebyshevT, RecurrenceOutsideUnitInterval) {
  // T_{n+1} = 2x T_n - T_{n-1} must hold for |x| > 1 too.
  for (double x : {1.5, -1.5, 2.7, -3.1}) {
    for (std::size_t n = 1; n <= 8; ++n) {
      EXPECT_NEAR(chebyshev_t(n + 1, x),
                  2.0 * x * chebyshev_t(n, x) - chebyshev_t(n - 1, x),
                  1e-7 * std::abs(chebyshev_t(n + 1, x)) + 1e-9);
    }
  }
}

TEST(ChebyshevT, BoundedOnUnitInterval) {
  for (std::size_t n = 0; n <= 11; ++n) {
    for (double x = -1.0; x <= 1.0; x += 0.01) {
      EXPECT_LE(std::abs(chebyshev_t(n, x)), 1.0 + 1e-12);
    }
  }
}

TEST(ChebyshevSeries, ClenshawMatchesDirect) {
  const std::vector<double> c{0.5, -0.2, 0.1, 0.7};
  for (double x = -1.0; x <= 1.0; x += 0.13) {
    double direct = 0.0;
    for (std::size_t k = 0; k < c.size(); ++k) direct += c[k] * chebyshev_t(k, x);
    EXPECT_NEAR(chebyshev_series(c, x), direct, 1e-12);
  }
}

TEST(ChebyshevOddSeries, UsesOddOrdersOnly) {
  const std::vector<double> c{1.0, 0.5};  // T1 + 0.5 T3
  const double x = 0.4;
  EXPECT_NEAR(chebyshev_odd_series(c, x),
              chebyshev_t(1, x) + 0.5 * chebyshev_t(3, x), 1e-12);
  // Odd series must be an odd function.
  EXPECT_NEAR(chebyshev_odd_series(c, -x), -chebyshev_odd_series(c, x), 1e-12);
}

class ChebyCoeffs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChebyCoeffs, PolynomialFormMatchesEvaluation) {
  const std::size_t n = GetParam();
  const auto coeffs = chebyshev_t_coeffs(n);
  ASSERT_EQ(coeffs.size(), n + 1);
  for (double x = -1.2; x <= 1.2; x += 0.1) {
    EXPECT_NEAR(poly_eval(coeffs, {x, 0.0}).real(), chebyshev_t(n, x),
                1e-9 * (1.0 + std::abs(chebyshev_t(n, x))));
  }
  // Leading coefficient is 2^(n-1) for n >= 1.
  if (n >= 1) {
    EXPECT_NEAR(coeffs.back(), std::pow(2.0, static_cast<double>(n - 1)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ChebyCoeffs,
                         ::testing::Values(0, 1, 2, 3, 5, 7, 9));

TEST(ChebyCoeffs, KnownT3AndT5) {
  const auto t3 = chebyshev_t_coeffs(3);
  EXPECT_NEAR(t3[1], -3.0, 1e-12);
  EXPECT_NEAR(t3[3], 4.0, 1e-12);
  const auto t5 = chebyshev_t_coeffs(5);
  EXPECT_NEAR(t5[1], 5.0, 1e-12);
  EXPECT_NEAR(t5[3], -20.0, 1e-12);
  EXPECT_NEAR(t5[5], 16.0, 1e-12);
}

}  // namespace
