// Fixed-point semantics: the CIC correctness proof rests on exact
// two's-complement wraparound, and every stage boundary rests on
// requantize; both are exercised exhaustively here.
#include <gtest/gtest.h>

#include <cmath>

#include "src/fixedpoint/fixed.h"

namespace {

using namespace dsadc::fx;

TEST(Format, RangesAndLsb) {
  const Format f{8, 4};
  EXPECT_EQ(f.raw_min(), -128);
  EXPECT_EQ(f.raw_max(), 127);
  EXPECT_EQ(f.integer_bits(), 4);
  EXPECT_NEAR(f.lsb(), 1.0 / 16.0, 1e-15);
  EXPECT_EQ(f.to_string(), "Q3.4 (8b)");
}

TEST(Wrap, ModularIdentities) {
  const Format f{4, 0};  // [-8, 7]
  EXPECT_EQ(wrap_to(7, f), 7);
  EXPECT_EQ(wrap_to(8, f), -8);
  EXPECT_EQ(wrap_to(-9, f), 7);
  EXPECT_EQ(wrap_to(16, f), 0);
  EXPECT_EQ(wrap_to(-8, f), -8);
}

TEST(Wrap, AdditionIsHomomorphic) {
  // wrap(a + b) == wrap(wrap(a) + wrap(b)) - the property Hogenauer needs.
  const Format f{6, 0};
  for (std::int64_t a = -100; a <= 100; a += 7) {
    for (std::int64_t b = -100; b <= 100; b += 11) {
      EXPECT_EQ(wrap_to(a + b, f), wrap_to(wrap_to(a, f) + wrap_to(b, f), f));
    }
  }
}

TEST(Saturate, Clamps) {
  const Format f{4, 0};
  EXPECT_EQ(saturate_to(100, f), 7);
  EXPECT_EQ(saturate_to(-100, f), -8);
  EXPECT_EQ(saturate_to(3, f), 3);
}

TEST(FromDouble, RoundsToNearest) {
  const Format f{8, 4};
  EXPECT_EQ(from_double(0.5, f), 8);
  EXPECT_EQ(from_double(0.49, f), 8);        // 7.84 -> 8
  EXPECT_EQ(from_double(0.47, f), 8);        // 7.52 -> 8
  EXPECT_EQ(from_double(0.40, f), 6);        // 6.4 -> 6
  EXPECT_EQ(from_double(-0.40, f), -6);
  EXPECT_EQ(from_double(100.0, f), f.raw_max());  // saturate default
}

TEST(ToDouble, RoundTrip) {
  const Format f{12, 7};
  for (std::int64_t raw = f.raw_min(); raw <= f.raw_max(); raw += 13) {
    EXPECT_EQ(from_double(to_double(raw, f), f), raw);
  }
}

struct RequantCase {
  int src_frac;
  Format dst;
  Rounding rnd;
  Overflow ovf;
};

TEST(Requantize, ShiftRightTruncates) {
  // 0b0110.11 (frac 2) -> frac 0 truncate = 6 (floor).
  EXPECT_EQ(requantize(27, 2, Format{8, 0}, Rounding::kTruncate, Overflow::kWrap), 6);
  // Negative: -27/4 = -6.75 -> floor = -7 (arithmetic shift).
  EXPECT_EQ(requantize(-27, 2, Format{8, 0}, Rounding::kTruncate, Overflow::kWrap), -7);
}

TEST(Requantize, ShiftRightRoundsNearest) {
  EXPECT_EQ(requantize(27, 2, Format{8, 0}, Rounding::kRoundNearest, Overflow::kWrap), 7);
  EXPECT_EQ(requantize(26, 2, Format{8, 0}, Rounding::kRoundNearest, Overflow::kWrap), 7);  // 6.5 -> 7 (half up)
  EXPECT_EQ(requantize(25, 2, Format{8, 0}, Rounding::kRoundNearest, Overflow::kWrap), 6);
  EXPECT_EQ(requantize(-26, 2, Format{8, 0}, Rounding::kRoundNearest, Overflow::kWrap), -6);  // -6.5 -> -6
}

TEST(Requantize, ShiftLeftIsExact) {
  EXPECT_EQ(requantize(5, 0, Format{16, 4}, Rounding::kTruncate, Overflow::kWrap), 80);
}

TEST(Requantize, OverflowPolicies) {
  // 100 at frac 0 into 6-bit [-32,31]: wrap vs saturate.
  EXPECT_EQ(requantize(100, 0, Format{6, 0}, Rounding::kTruncate, Overflow::kSaturate), 31);
  EXPECT_EQ(requantize(100, 0, Format{6, 0}, Rounding::kTruncate, Overflow::kWrap),
            wrap_to(100, Format{6, 0}));
}

TEST(QuantizeVector, MatchesScalar) {
  const Format f{10, 6};
  const std::vector<double> v{0.1, -0.37, 0.999, -3.0};
  const auto q = quantize_vector(v, f);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(q[i], to_double(from_double(v[i], f), f), 1e-15);
  }
}

TEST(Value, ArithmeticAndFormats) {
  const Format f8{8, 4};
  const Value a = Value::from_real(1.5, f8);
  const Value b = Value::from_real(2.25, f8);
  const Value s = a + b;
  EXPECT_NEAR(s.real(), 3.75, 1e-12);
  EXPECT_EQ(s.format().frac, 4);
  EXPECT_EQ(s.format().width, 9);  // one carry bit

  const Value d = b - a;
  EXPECT_NEAR(d.real(), 0.75, 1e-12);

  const Value p = a * b;
  EXPECT_NEAR(p.real(), 3.375, 1e-12);
  EXPECT_EQ(p.format().frac, 8);
  EXPECT_EQ(p.format().width, 16);
}

TEST(Value, CastAndShift) {
  const Value a = Value::from_real(1.5, Format{12, 8});
  const Value c = a.cast(Format{8, 4}, Rounding::kRoundNearest, Overflow::kSaturate);
  EXPECT_NEAR(c.real(), 1.5, 1e-12);
  const Value h = a.asr(1);
  EXPECT_NEAR(h.real(), 0.75, 1e-12);
}

TEST(AddFormat, TakesWorstCase) {
  const Format a{8, 4}, b{12, 2};
  const Format s = add_format(a, b);
  EXPECT_EQ(s.frac, 4);
  EXPECT_EQ(s.integer_bits(), 11);  // max(4, 10) + 1
}

TEST(Format, RejectsBadWidths) {
  EXPECT_THROW(wrap_to(0, Format{0, 0}), std::invalid_argument);
  EXPECT_THROW(wrap_to(0, Format{63, 0}), std::invalid_argument);
}

class RequantizeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RequantizeSweep, ValuePreservedWithinPrecision) {
  const auto [src_frac, dst_frac] = GetParam();
  const Format dst{20, dst_frac};
  const double max_real = std::ldexp(1.0, 19 - dst_frac) - 1.0;
  for (std::int64_t raw = -1000; raw <= 1000; raw += 37) {
    const double real = static_cast<double>(raw) * std::ldexp(1.0, -src_frac);
    if (std::abs(real) > max_real) continue;  // outside the dst range
    const std::int64_t q = requantize(raw, src_frac, dst,
                                      Rounding::kRoundNearest,
                                      Overflow::kSaturate);
    const double back = static_cast<double>(q) * std::ldexp(1.0, -dst_frac);
    EXPECT_LE(std::abs(back - real), std::ldexp(0.5, -dst_frac) + 1e-15)
        << "raw=" << raw << " src=" << src_frac << " dst=" << dst_frac;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FracPairs, RequantizeSweep,
    ::testing::Combine(::testing::Values(0, 3, 8, 12),
                       ::testing::Values(0, 3, 8, 12)));

}  // namespace
