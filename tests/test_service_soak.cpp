// Soak test (ctest label `soak`): many channels streaming sustained load
// through a live server. Block policy must lose nothing -- every channel
// receives the bit-exact reference stream -- and shed policy must keep
// the books balanced per tenant: accepted + shed == sent.
//
// Scale knobs (env, so CI smoke can shrink the run):
//   DSADC_SOAK_CHANNELS    total channels        (default 256)
//   DSADC_SOAK_CONNS       client connections    (default 8)
//   DSADC_SOAK_BLOCKS      DATA frames/channel   (default 8)
//   DSADC_SOAK_FRAMES      codes per DATA frame  (default 512)
//   DSADC_SOAK_IDLE_CONNS  idle epoll connections (default 1000)
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/service/client.h"
#include "src/service/net.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;
using namespace std::chrono_literals;

constexpr auto kWait = 120000ms;  // whole-soak budget, not per-channel

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return v;
  }
  return fallback;
}

struct SoakScale {
  std::size_t channels = env_size("DSADC_SOAK_CHANNELS", 256);
  std::size_t conns = env_size("DSADC_SOAK_CONNS", 8);
  std::size_t blocks = env_size("DSADC_SOAK_BLOCKS", 8);
  std::size_t frames = env_size("DSADC_SOAK_FRAMES", 512);
};

// CI runs the soak suite once per I/O backend by exporting
// DSADC_SERVICE_IO; tests construct ServerOptions directly, so the env
// override from options_from_env() has to be re-applied here.
void apply_io_env(service::ServerOptions& o) {
  if (const char* io = std::getenv("DSADC_SERVICE_IO")) {
    if (std::string_view(io) == "threads") {
      o.io = service::IoBackend::kThreads;
    } else if (std::string_view(io) == "epoll") {
      o.io = service::IoBackend::kEpoll;
    }
  }
}

class ServiceSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::instance().reset_all();
  }
};

TEST_F(ServiceSoakTest, BlockPolicySustainsAllChannelsZeroLoss) {
  const SoakScale scale;
  ASSERT_GE(scale.channels, scale.conns);

  // Every channel streams the same stimulus, so one scalar reference
  // covers all of them: `blocks` consecutive process() calls.
  std::mt19937_64 rng(4242);
  const auto raw = verify::make_stimulus(verify::StimulusClass::kModulator,
                                         scale.frames, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  decim::DecimationChain chain(*service::preset_config(0));
  std::vector<std::int64_t> ref;
  for (std::size_t b = 0; b < scale.blocks; ++b) {
    const auto out = chain.process(codes);
    ref.insert(ref.end(), out.begin(), out.end());
  }

  service::ServerOptions opts;
  opts.unix_path = service::net::unique_socket_path("soakb");
  opts.shards = 16;
  opts.queue_capacity = 16;  // small on purpose: admission backpressure
  apply_io_env(opts);
  service::Server server(opts);
  server.start();

  // `conns` connections, channels striped across them with globally
  // unique ids so per-tenant counters are 1:1 with channels.
  std::vector<std::unique_ptr<service::Client>> clients;
  for (std::size_t c = 0; c < scale.conns; ++c) {
    clients.push_back(service::Client::connect_unix(server.unix_path()));
  }
  const std::size_t per_conn = scale.channels / scale.conns;
  std::vector<std::thread> senders;
  for (std::size_t c = 0; c < scale.conns; ++c) {
    senders.emplace_back([&, c] {
      auto& client = *clients[c];
      for (std::size_t k = 0; k < per_conn; ++k) {
        const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
        ASSERT_TRUE(client.open(ch, 0));
      }
      for (std::size_t b = 0; b < scale.blocks; ++b) {
        for (std::size_t k = 0; k < per_conn; ++k) {
          const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
          ASSERT_TRUE(client.send_data(ch, codes));
        }
      }
    });
  }
  for (auto& t : senders) t.join();

  std::size_t exact = 0;
  for (std::size_t c = 0; c < scale.conns; ++c) {
    for (std::size_t k = 0; k < per_conn; ++k) {
      const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
      ASSERT_TRUE(clients[c]->wait_sample_count(ch, ref.size(), kWait))
          << "channel " << ch << " lost samples under block policy";
      if (clients[c]->samples(ch) == ref) ++exact;
    }
    EXPECT_TRUE(clients[c]->errors().empty()) << "connection " << c;
  }
  EXPECT_EQ(exact, per_conn * scale.conns)
      << "every channel must be bit-exact";

  clients.clear();
  server.stop();

  auto& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter("service.accepted").value(),
            per_conn * scale.conns * scale.blocks);
  EXPECT_EQ(reg.counter("service.shed").value(), 0u);
  EXPECT_EQ(reg.counter("service.shed_out").value(), 0u);
  EXPECT_EQ(server.inflight(), 0u);
}

TEST_F(ServiceSoakTest, ShedPolicyAccountingBalancesUnderOverload) {
  SoakScale scale;
  // Overload a deliberately under-provisioned server: half the channels,
  // 1-deep admission queues, one worker.
  scale.channels = std::max<std::size_t>(scale.channels / 2, scale.conns);

  std::mt19937_64 rng(4343);
  const auto raw = verify::make_stimulus(verify::StimulusClass::kPrbs,
                                         scale.frames, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  ASSERT_EQ(scale.frames % 16, 0u) << "frames must divide the ratio";
  const std::size_t per_block = scale.frames / 16;

  service::ServerOptions opts;
  opts.unix_path = service::net::unique_socket_path("soaks");
  opts.policy = runtime::SessionRuntime::Overload::kShed;
  opts.shards = 16;
  opts.queue_capacity = 1;
  opts.workers = 1;
  opts.out_queue_capacity = 1 << 15;  // no output-side drops: admission only
  apply_io_env(opts);
  service::Server server(opts);
  server.start();

  std::vector<std::unique_ptr<service::Client>> clients;
  for (std::size_t c = 0; c < scale.conns; ++c) {
    clients.push_back(service::Client::connect_unix(server.unix_path()));
  }
  const std::size_t per_conn = scale.channels / scale.conns;
  std::vector<std::thread> senders;
  for (std::size_t c = 0; c < scale.conns; ++c) {
    senders.emplace_back([&, c] {
      auto& client = *clients[c];
      for (std::size_t k = 0; k < per_conn; ++k) {
        const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
        ASSERT_TRUE(client.open(ch, 0));
      }
      for (std::size_t b = 0; b < scale.blocks; ++b) {
        for (std::size_t k = 0; k < per_conn; ++k) {
          const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
          ASSERT_TRUE(client.send_data(ch, codes));
        }
      }
    });
  }
  for (auto& t : senders) t.join();

  // Every DATA frame must resolve: samples received or a SHED notice.
  std::size_t total_sheds = 0;
  for (std::size_t c = 0; c < scale.conns; ++c) {
    for (std::size_t k = 0; k < per_conn; ++k) {
      const auto ch = static_cast<std::uint32_t>(c * per_conn + k);
      const auto deadline = std::chrono::steady_clock::now() + kWait;
      for (;;) {
        const std::size_t blocks_in =
            clients[c]->sample_count(ch) / per_block;
        const std::size_t sheds = clients[c]->shed_count(ch);
        if (blocks_in + sheds >= scale.blocks) break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "channel " << ch << ": " << blocks_in << " blocks + "
            << sheds << " sheds of " << scale.blocks;
        std::this_thread::sleep_for(1ms);
      }
      const std::size_t blocks_in = clients[c]->sample_count(ch) / per_block;
      const std::size_t sheds = clients[c]->shed_count(ch);
      EXPECT_EQ(blocks_in + sheds, scale.blocks) << "channel " << ch;
      EXPECT_EQ(clients[c]->sample_count(ch) % per_block, 0u)
          << "channel " << ch << ": partial block served";
      // Per-tenant books: the server counted exactly what the client saw.
      auto& reg = obs::Registry::instance();
      EXPECT_EQ(reg.counter("service.accepted.ch" + std::to_string(ch))
                    .value(),
                blocks_in)
          << "channel " << ch;
      EXPECT_EQ(reg.counter("service.shed.ch" + std::to_string(ch)).value(),
                sheds)
          << "channel " << ch;
      total_sheds += sheds;
    }
  }
  auto& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter("service.accepted").value() +
                reg.counter("service.shed").value(),
            per_conn * scale.conns * scale.blocks);
  EXPECT_EQ(reg.counter("service.shed").value(), total_sheds);
  EXPECT_EQ(reg.counter("service.shed_out").value(), 0u);

  clients.clear();
  server.stop();
}

TEST_F(ServiceSoakTest, ThousandIdleConnectionsEpollStaysHealthy) {
#ifndef __linux__
  GTEST_SKIP() << "epoll backend is linux-only";
#else
  // A large herd of connected-but-silent tenants must cost the epoll
  // event loop nothing: a live tenant streams bit-exact through the
  // middle of the herd, half the herd then vanishes abruptly (RDHUP
  // storm), and the stream plus server shutdown stay clean. Idle conns
  // are raw sockets on purpose -- no client threads, just fds parked in
  // the server's epoll sets.
  struct rlimit rl{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
  if (rl.rlim_cur < 4096) {
    rlimit want = rl;
    want.rlim_cur = std::min<rlim_t>(4096, rl.rlim_max);
    (void)setrlimit(RLIMIT_NOFILE, &want);
    ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
  }
  // Each idle connection is one fd here and one in the server, plus
  // headroom for the server's own plumbing and the active client.
  const std::size_t idle =
      std::min(env_size("DSADC_SOAK_IDLE_CONNS", 1000),
               (static_cast<std::size_t>(rl.rlim_cur) - 128) / 2);

  service::ServerOptions opts;
  opts.unix_path = service::net::unique_socket_path("soaki");
  opts.io = service::IoBackend::kEpoll;
  opts.event_threads = 2;
  service::Server server(opts);
  server.start();

  std::vector<int> herd;
  herd.reserve(idle);
  for (std::size_t i = 0; i < idle; ++i) {
    std::string err;
    int fd = service::net::connect_unix(server.unix_path(), &err);
    for (int retry = 0; fd < 0 && retry < 50; ++retry) {
      // The acceptor can momentarily fall behind a connect burst.
      std::this_thread::sleep_for(1ms);
      fd = service::net::connect_unix(server.unix_path(), &err);
    }
    ASSERT_GE(fd, 0) << "idle connect " << i << ": " << err;
    herd.push_back(fd);
  }

  std::mt19937_64 rng(4545);
  const auto raw = verify::make_stimulus(verify::StimulusClass::kModulator,
                                         512, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  decim::DecimationChain chain(*service::preset_config(0));
  const auto block_ref = chain.process(codes);

  auto client = service::Client::connect_unix(server.unix_path());
  ASSERT_TRUE(client->open(1, 0));
  ASSERT_TRUE(client->send_data(1, codes));
  ASSERT_TRUE(client->wait_sample_count(1, block_ref.size(), kWait));
  EXPECT_EQ(client->samples(1), block_ref);

  // Half the herd disconnects at once while the tenant keeps streaming.
  for (std::size_t i = 0; i < herd.size() / 2; ++i) ::close(herd[i]);
  ASSERT_TRUE(client->send_data(1, codes));
  ASSERT_TRUE(client->wait_sample_count(1, 2 * block_ref.size(), kWait));
  EXPECT_TRUE(client->errors().empty());

  for (std::size_t i = herd.size() / 2; i < herd.size(); ++i) {
    ::close(herd[i]);
  }
  client.reset();
  server.stop();

  auto& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter("service.connections").value(), idle + 1);
#endif
}

}  // namespace
