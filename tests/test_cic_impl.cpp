// Bit-true Hogenauer CIC: exactness against reference convolution, the
// wraparound-correctness property, gain, cascade behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "src/decimator/cic.h"
#include "src/dsp/freqz.h"

namespace {

using namespace dsadc;
using decim::CicCascade;
using decim::CicDecimator;
using design::CicSpec;

std::vector<std::int64_t> random_codes(std::size_t n, int bits, unsigned seed) {
  std::mt19937 rng(seed);
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-hi, hi);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Reference: direct convolution with the unnormalized Sinc^K taps (all
/// ones boxcar convolved K times), decimated by M, phase-aligned with the
/// implementation (outputs at input indices M-1, 2M-1, ...).
std::vector<std::int64_t> reference_cic(const CicSpec& spec,
                                        const std::vector<std::int64_t>& in) {
  std::vector<double> h{1.0};
  const std::vector<double> box(static_cast<std::size_t>(spec.decimation), 1.0);
  for (int k = 0; k < spec.order; ++k) h = dsp::convolve(h, box);
  std::vector<std::int64_t> out;
  for (std::size_t n = static_cast<std::size_t>(spec.decimation) - 1;
       n < in.size(); n += static_cast<std::size_t>(spec.decimation)) {
    double acc = 0.0;
    for (std::size_t k = 0; k < h.size() && k <= n; ++k) {
      acc += h[k] * static_cast<double>(in[n - k]);
    }
    out.push_back(static_cast<std::int64_t>(acc));
  }
  return out;
}

class CicExactness
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CicExactness, MatchesReferenceConvolution) {
  const auto [order, decim, bits] = GetParam();
  const CicSpec spec{order, decim, bits};
  CicDecimator cic(spec);
  const auto in = random_codes(2048, bits, 17);
  const auto out = cic.process(in);
  const auto ref = reference_cic(spec, in);
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], ref[i]) << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CicExactness,
    ::testing::Values(std::make_tuple(1, 2, 4), std::make_tuple(4, 2, 4),
                      std::make_tuple(4, 2, 8), std::make_tuple(6, 2, 12),
                      std::make_tuple(3, 4, 4), std::make_tuple(2, 8, 6)));

TEST(CicImpl, DcGainIsMtoK) {
  const CicSpec spec{4, 2, 4};
  CicDecimator cic(spec);
  EXPECT_EQ(cic.dc_gain(), 16);
  // Constant input of 3 -> steady-state output 3 * 16.
  std::vector<std::int64_t> in(256, 3);
  const auto out = cic.process(in);
  EXPECT_EQ(out.back(), 48);
}

TEST(CicImpl, WraparoundStillCorrect) {
  // Full-scale input would overflow the accumulators many times over; the
  // modular arithmetic must still deliver the exact convolution result.
  const CicSpec spec{6, 2, 12};
  CicDecimator cic(spec);
  std::vector<std::int64_t> in(1024, 2047);  // max positive 12-bit
  const auto out = cic.process(in);
  EXPECT_EQ(out.back(), 2047 * 64);
  // And a worst-case alternating pattern.
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = (i % 2) ? 2047 : -2048;
  cic.reset();
  const auto out2 = cic.process(in);
  const auto ref2 = reference_cic(spec, in);
  for (std::size_t i = 0; i < out2.size(); ++i) EXPECT_EQ(out2[i], ref2[i]);
}

TEST(CicImpl, ImpulseResponseMatchesDesignTaps) {
  const CicSpec spec{4, 2, 4};
  CicDecimator cic(spec);
  std::vector<std::int64_t> in(32, 0);
  in[1] = 1;  // impulse at n=1 lands on an output phase
  const auto out = cic.process(in);
  // Unnormalized taps: boxcar^4 (length 5) sampled at the output phases.
  const auto h = design::cic_impulse_response(spec);  // normalized by M^K
  std::vector<double> taps(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) taps[i] = h[i] * spec.dc_gain();
  // Output n sees x[2n+1 - k]: impulse at 1 contributes taps[2n].
  for (std::size_t n = 0; n < 4; ++n) {
    const double expect = (2 * n < taps.size()) ? taps[2 * n] : 0.0;
    EXPECT_EQ(out[n], static_cast<std::int64_t>(expect)) << n;
  }
}

TEST(CicImpl, ResetClearsState) {
  CicDecimator cic(design::CicSpec{4, 2, 8});
  const auto in = random_codes(512, 8, 3);
  const auto a = cic.process(in);
  cic.reset();
  const auto b = cic.process(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(CicImpl, RejectsBadSpecs) {
  EXPECT_THROW(CicDecimator(CicSpec{0, 2, 4}), std::invalid_argument);
  EXPECT_THROW(CicDecimator(CicSpec{4, 1, 4}), std::invalid_argument);
  EXPECT_THROW(CicDecimator(CicSpec{20, 8, 16}), std::invalid_argument);
}

TEST(CicCascadeImpl, PaperChainGainAndDecimation) {
  CicCascade cascade(design::paper_sinc_cascade());
  EXPECT_EQ(cascade.total_decimation(), 8u);
  EXPECT_EQ(cascade.total_dc_gain(), 16384);  // 2^14
  std::vector<std::int64_t> in(2048, 5);
  const auto out = cascade.process(in);
  EXPECT_EQ(out.size(), 256u);
  EXPECT_EQ(out.back(), 5 * 16384);
}

TEST(CicCascadeImpl, MatchesStageByStage) {
  const auto specs = design::paper_sinc_cascade();
  CicCascade cascade(specs);
  const auto in = random_codes(4096, 4, 23);
  const auto out = cascade.process(in);

  CicDecimator s1(specs[0]), s2(specs[1]), s3(specs[2]);
  const auto ref = s3.process(s2.process(s1.process(in)));
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], ref[i]);
}

TEST(CicCascadeImpl, RejectsEmpty) {
  EXPECT_THROW(CicCascade({}), std::invalid_argument);
}

}  // namespace
