// Runtime SIMD dispatch: tier selection and cross-tier bit-exactness.
//
// The bank kernels are compiled once per tier (scalar / AVX2 / AVX-512)
// from the same source; the dispatcher must pick only tiers the CPU
// supports, honour forced tiers, and -- the property everything rests on
// -- produce bit-identical outputs AND fx event-counter totals on every
// tier, so CPU dispatch can never change numerical results.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/decimator/chain.h"
#include "src/decimator/simd.h"
#include "src/obs/metrics.h"
#include "src/runtime/multichannel.h"

namespace {

using namespace dsadc;
using decim::simd::Tier;

std::vector<Tier> supported_tiers() {
  std::vector<Tier> tiers;
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    if (decim::simd::tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

/// Restore the dispatcher's best tier when a test ends.
struct TierGuard {
  ~TierGuard() { decim::simd::set_active_tier(decim::simd::best_tier()); }
};

TEST(SimdDispatch, ScalarTierAlwaysSupported) {
  EXPECT_TRUE(decim::simd::tier_supported(Tier::kScalar));
  const Tier best = decim::simd::best_tier();
  EXPECT_TRUE(decim::simd::tier_supported(best));
}

TEST(SimdDispatch, ForcingSupportedTierSticks) {
  TierGuard guard;
  for (Tier t : supported_tiers()) {
    EXPECT_TRUE(decim::simd::set_active_tier(t))
        << decim::simd::tier_name(t);
    EXPECT_EQ(decim::simd::active_tier(), t);
    // The table must be tier-specific state, not a dangling default.
    EXPECT_NE(decim::simd::kernels().cic_stage, nullptr);
  }
}

TEST(SimdDispatch, ForcingUnsupportedTierIsRefused) {
  TierGuard guard;
  ASSERT_TRUE(decim::simd::set_active_tier(Tier::kScalar));
  for (Tier t : {Tier::kAvx2, Tier::kAvx512}) {
    if (decim::simd::tier_supported(t)) continue;
    EXPECT_FALSE(decim::simd::set_active_tier(t));
    EXPECT_EQ(decim::simd::active_tier(), Tier::kScalar);
  }
}

TEST(SimdDispatch, TierNames) {
  EXPECT_STREQ(decim::simd::tier_name(Tier::kScalar), "scalar");
  EXPECT_STREQ(decim::simd::tier_name(Tier::kAvx2), "avx2");
  EXPECT_STREQ(decim::simd::tier_name(Tier::kAvx512), "avx512");
}

TEST(SimdDispatch, BankBitIdenticalAcrossTiers) {
  TierGuard guard;
  const auto cfg = decim::paper_chain_config();
  constexpr std::size_t kLanes = 16;
  constexpr std::size_t kFrames = 1 << 10;

  std::vector<std::int64_t> input(kFrames * kLanes);
  unsigned s = 0x5111D;
  for (auto& v : input) {
    s = s * 1664525u + 1013904223u;
    v = static_cast<std::int64_t>((s >> 24) % 15) - 7;
  }

  // Reference: the scalar tier's outputs and fx event totals.
  struct TierRun {
    std::vector<std::int64_t> out;
    std::uint64_t rounds = 0;
    std::uint64_t saturates = 0;
  };
  const auto run_tier = [&](Tier t) {
    EXPECT_TRUE(decim::simd::set_active_tier(t));
    obs::Registry::instance().reset_all();
    runtime::ChainBank bank(cfg, kLanes);
    TierRun r;
    r.out = input;
    bank.process_inplace(r.out);
    r.rounds = obs::Registry::instance().counter_total("fx.round.");
    r.saturates = obs::Registry::instance().counter_total("fx.saturate.");
    return r;
  };

  const TierRun ref = run_tier(Tier::kScalar);
  EXPECT_FALSE(ref.out.empty());
  for (Tier t : supported_tiers()) {
    if (t == Tier::kScalar) continue;
    const TierRun got = run_tier(t);
    EXPECT_EQ(ref.out, got.out) << "tier " << decim::simd::tier_name(t);
    EXPECT_EQ(ref.rounds, got.rounds) << decim::simd::tier_name(t);
    EXPECT_EQ(ref.saturates, got.saturates) << decim::simd::tier_name(t);
  }
}

TEST(SimdDispatch, RuntimeBitIdenticalAcrossTiers) {
  TierGuard guard;
  const auto cfg = decim::paper_chain_config();
  constexpr std::size_t kChannels = 40;  // one full group + one partial
  constexpr std::size_t kFrames = 512;

  std::vector<std::vector<std::int32_t>> codes(
      kChannels, std::vector<std::int32_t>(kFrames));
  unsigned s = 0xD15B;
  for (auto& ch : codes) {
    for (auto& v : ch) {
      s = s * 1664525u + 1013904223u;
      v = static_cast<std::int32_t>((s >> 24) % 15) - 7;
    }
  }

  std::vector<std::vector<std::int64_t>> ref;
  bool have_ref = false;
  for (Tier t : supported_tiers()) {
    ASSERT_TRUE(decim::simd::set_active_tier(t));
    runtime::MultiChannelRuntime rt(cfg, kChannels);
    std::vector<std::vector<std::int64_t>> out;
    rt.process_into(codes, out);
    ASSERT_EQ(out.size(), kChannels);
    if (!have_ref) {
      ref = out;
      have_ref = true;
    } else {
      EXPECT_EQ(ref, out) << "tier " << decim::simd::tier_name(t);
    }
  }
}

}  // namespace
