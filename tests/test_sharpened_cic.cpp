// Sharpened comb filters (the ref-[7] alternative comb schemes).
#include <gtest/gtest.h>

#include <cmath>

#include "src/decimator/fir.h"
#include "src/dsp/freqz.h"
#include "src/filterdesign/sharpened_cic.h"

namespace {

using namespace dsadc;
using namespace dsadc::design;

TEST(SharpenedCic, TapsMatchMagnitudeFormula) {
  const CicSpec spec{4, 2, 4};
  const auto taps = sharpened_cic_taps(4, 2);
  // Normalize and compare the FIR response against S(|H|).
  const double gain = sharpened_cic_dc_gain(spec);
  std::vector<double> h(taps.size());
  for (std::size_t i = 0; i < taps.size(); ++i) {
    h[i] = static_cast<double>(taps[i]) / gain;
  }
  for (double f = 0.0; f <= 0.5; f += 0.01) {
    EXPECT_NEAR(std::abs(dsp::fir_response_at(h, f)),
                sharpened_cic_magnitude(spec, f), 1e-10)
        << f;
  }
  EXPECT_TRUE(dsp::is_symmetric(h, 1e-12));
}

TEST(SharpenedCic, FlattensPassbandVersusPlainComb) {
  // The whole point of sharpening: less droop than the plain comb of the
  // same alias-notch multiplicity (Sinc^(3K) here), and even less than
  // the original Sinc^K beyond a small band.
  const CicSpec spec{4, 2, 4};
  const double fb = 0.03125;  // 20 MHz at 640 MHz
  const double sharp = sharpened_cic_droop_db(spec, fb);
  const double plain_3k = cic_droop_db(CicSpec{12, 2, 4}, fb);
  const double plain_k = cic_droop_db(spec, fb);
  EXPECT_LT(sharp, plain_3k);
  EXPECT_LT(sharp, plain_k);
  EXPECT_LT(sharp, 0.05);  // nearly flat at the band edge
}

TEST(SharpenedCic, AliasRejectionBeyondPlainComb) {
  const CicSpec spec{4, 2, 4};
  const double fb = 0.03125;
  const double sharp = sharpened_cic_alias_rejection_db(spec, fb);
  const double plain = cic_alias_rejection_db(spec, fb);
  // Zero multiplicity triples: roughly 2-3x the dB rejection.
  EXPECT_GT(sharp, 1.8 * plain);
}

TEST(SharpenedCic, BitTrueThroughFirDecimator) {
  const auto taps = sharpened_cic_taps(4, 2);
  decim::FixedTaps ft;
  ft.taps = taps;
  ft.frac_bits = 0;
  decim::FirDecimator fir(ft, 2, fx::Format{4, 0}, fx::Format{40, 0});
  std::vector<std::int64_t> in(256, 3);
  const auto out = fir.process(in);
  // Steady-state DC: 3 * M^(3K) = 3 * 4096.
  EXPECT_EQ(out.back(), 3 * 4096);
}

TEST(SharpenedCic, DcGainAndValidation) {
  EXPECT_NEAR(sharpened_cic_dc_gain(CicSpec{4, 2, 4}), 4096.0, 1e-9);
  EXPECT_THROW(sharpened_cic_taps(0, 2), std::invalid_argument);
  EXPECT_THROW(sharpened_cic_taps(3, 2), std::invalid_argument);  // odd K*(M-1)
  EXPECT_NO_THROW(sharpened_cic_taps(3, 3));  // K*(M-1) = 6, even
}

TEST(SharpenedCic, KeepsCombNotches) {
  const CicSpec spec{4, 2, 4};
  EXPECT_LT(sharpened_cic_magnitude(spec, 0.5), 1e-12);
  const CicSpec s8{2, 8, 4};
  for (int m = 1; m < 8; ++m) {
    EXPECT_LT(sharpened_cic_magnitude(s8, m / 8.0), 1e-10) << m;
  }
}

}  // namespace
