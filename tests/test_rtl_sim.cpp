// Cycle-accurate IR simulator: register timing, arithmetic semantics,
// multi-rate decimation, accumulator feedback and toggle accounting.
#include <gtest/gtest.h>

#include "src/rtl/ir.h"
#include "src/rtl/sim.h"

namespace {

using namespace dsadc;
using namespace dsadc::rtl;

TEST(Sim, PassthroughAndRegisterDelay) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId r = m.reg(in);
  const NodeId o1 = m.output("direct", in);
  const NodeId o2 = m.output("delayed", r);
  Simulator sim(m);
  const std::vector<std::int64_t> x{1, 2, 3, 4};
  auto res = sim.run({{in, x}});
  EXPECT_EQ(res.outputs[o1], (std::vector<std::int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(res.outputs[o2], (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(Sim, AdderWrapsAtWidth) {
  Module m("t");
  const NodeId a = m.input("a", 4);
  const NodeId b = m.input("b", 4);
  const NodeId s = m.add(a, b, 4);
  const NodeId o = m.output("y", s);
  Simulator sim(m);
  const std::vector<std::int64_t> xa{7, -8};
  const std::vector<std::int64_t> xb{1, -1};
  auto res = sim.run({{a, xa}, {b, xb}});
  EXPECT_EQ(res.outputs[o][0], -8);  // 7+1 wraps
  EXPECT_EQ(res.outputs[o][1], 7);   // -9 wraps
}

TEST(Sim, AccumulatorFeedback) {
  // y[n] = sum of inputs so far (integrator via placeholder reg).
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId st = m.reg_placeholder(16, 1);
  const NodeId sum = m.add(in, st, 16);
  m.connect_reg(st, sum);
  const NodeId o = m.output("y", sum);
  Simulator sim(m);
  const std::vector<std::int64_t> x{1, 2, 3, 4, 5};
  auto res = sim.run({{in, x}});
  EXPECT_EQ(res.outputs[o], (std::vector<std::int64_t>{1, 3, 6, 10, 15}));
}

TEST(Sim, DecimateSamplesPreviousValue) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId d = m.decimate(in, 2);
  const NodeId o = m.output("y", d);
  Simulator sim(m);
  const std::vector<std::int64_t> x{10, 11, 12, 13, 14, 15};
  auto res = sim.run({{in, x}});
  // Captures at t=0,2,4 the value from the end of the previous tick:
  // 0 (reset), x[1], x[3].
  EXPECT_EQ(res.outputs[o], (std::vector<std::int64_t>{0, 11, 13}));
}

TEST(Sim, SlowDomainLogicEvaluatesAtItsRate) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId d = m.decimate(in, 4);
  const NodeId doubled = m.add(d, d, 10);
  const NodeId o = m.output("y", doubled);
  Simulator sim(m);
  std::vector<std::int64_t> x(8);
  for (std::size_t i = 0; i < 8; ++i) x[i] = static_cast<std::int64_t>(i + 1);
  auto res = sim.run({{in, x}});
  ASSERT_EQ(res.outputs[o].size(), 2u);
  EXPECT_EQ(res.outputs[o][1], 2 * 4);  // 2 * x[3]
}

TEST(Sim, RequantNode) {
  Module m("t");
  const NodeId in = m.input("in", 16);
  const NodeId q = m.requant(in, 4, fx::Format{8, 0},
                             fx::Rounding::kRoundNearest,
                             fx::Overflow::kSaturate);
  const NodeId o = m.output("y", q);
  Simulator sim(m);
  const std::vector<std::int64_t> x{24, 23, -24, 10000};
  auto res = sim.run({{in, x}});
  EXPECT_EQ(res.outputs[o][0], 2);    // 24/16 = 1.5 -> 2
  EXPECT_EQ(res.outputs[o][1], 1);    // 23/16 = 1.44 -> 1
  EXPECT_EQ(res.outputs[o][2], -1);   // -1.5 -> -1 (half up)
  EXPECT_EQ(res.outputs[o][3], 127);  // saturates
}

TEST(Sim, ShiftAndNeg) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId l = m.shl(in, 2);
  const NodeId n = m.neg(l, 10);
  const NodeId r = m.shr(n, 1);
  const NodeId o = m.output("y", r);
  Simulator sim(m);
  const std::vector<std::int64_t> x{3, -5};
  auto res = sim.run({{in, x}});
  EXPECT_EQ(res.outputs[o][0], -6);   // -(3<<2)>>1
  EXPECT_EQ(res.outputs[o][1], 10);
}

TEST(Sim, ConstantsAvailable) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId c = m.constant(42, 8);
  const NodeId s = m.add(in, c, 9);
  const NodeId o = m.output("y", s);
  Simulator sim(m);
  const std::vector<std::int64_t> x{1};
  auto res = sim.run({{in, x}});
  EXPECT_EQ(res.outputs[o][0], 43);
}

TEST(Sim, ToggleCounting) {
  Module m("t");
  const NodeId in = m.input("in", 4);
  const NodeId o = m.output("y", in);
  (void)o;
  Simulator sim(m);
  // 0 -> 1 -> 0 -> 1: input node toggles bit 0 three times.
  const std::vector<std::int64_t> x{1, 0, 1};
  auto res = sim.run({{in, x}});
  EXPECT_EQ(res.activity.bit_toggles[static_cast<std::size_t>(in)], 3u);
  EXPECT_EQ(res.activity.updates[static_cast<std::size_t>(in)], 3u);
  EXPECT_EQ(res.activity.base_ticks, 3u);
}

TEST(Sim, MuxSelectsThenOrElseArm) {
  Module m("t");
  const NodeId sel = m.input("sel", 2);
  const NodeId a = m.input("a", 8);
  const NodeId b = m.input("b", 8);
  const NodeId mx = m.mux(sel, a, b, 8);
  const NodeId o = m.output("y", mx);
  Simulator sim(m);
  const std::vector<std::int64_t> sv{0, 1, -1, 0};  // any nonzero selects a
  const std::vector<std::int64_t> av{10, 11, 12, 13};
  const std::vector<std::int64_t> bv{-1, -2, -3, -4};
  auto res = sim.run({{sel, sv}, {a, av}, {b, bv}});
  EXPECT_EQ(res.outputs[o], (std::vector<std::int64_t>{-1, 11, 12, -4}));
}

TEST(Sim, MuxWrapsSelectedArmToWidth) {
  Module m("t");
  const NodeId sel = m.input("sel", 1);
  const NodeId a = m.constant(9, 8);  // 9 wraps to -7 in 4 bits
  const NodeId b = m.constant(0, 8);
  const NodeId mx = m.mux(sel, a, b, 4);
  const NodeId o = m.output("y", mx);
  Simulator sim(m);
  const std::vector<std::int64_t> sv{1, 0};
  auto res = sim.run({{sel, sv}});
  EXPECT_EQ(res.outputs[o], (std::vector<std::int64_t>{-7, 0}));
}

TEST(Sim, ErrorsOnUnboundOrWrongInputs) {
  Module m("t");
  const NodeId in = m.input("in", 4);
  const NodeId o = m.output("y", in);
  Simulator sim(m);
  EXPECT_THROW(sim.run({}), std::invalid_argument);
  const std::vector<std::int64_t> x{1};
  EXPECT_THROW(sim.run({{o, x}}), std::invalid_argument);
}

}  // namespace
