// Periodogram / SNR measurement: synthetic signals with known SNR must be
// measured back accurately; this validates the instrument used for the
// Fig. 4 and end-to-end SNR reproductions.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "src/dsp/spectrum.h"

namespace {

using namespace dsadc::dsp;

std::vector<double> tone_plus_noise(std::size_t n, double f, double amp,
                                    double noise_sigma, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> gauss(0.0, noise_sigma);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i));
    if (noise_sigma > 0.0) x[i] += gauss(rng);
  }
  return x;
}

TEST(Periodogram, RejectsShortSignals) {
  std::vector<double> x(8, 0.0);
  EXPECT_THROW(periodogram(x, 1.0), std::invalid_argument);
}

TEST(Periodogram, ToneAmplitudeRecovered) {
  // Coherent tone at bin 100 of 4096; peak bin power ~ A^2/2 after the
  // ENBW normalization when integrated over the skirt.
  const std::size_t n = 4096;
  const double f = 100.0 / static_cast<double>(n);
  const auto x = tone_plus_noise(n, f, 0.5, 0.0, 1);
  const Periodogram p = periodogram(x, 1.0);
  double sig = 0.0;
  for (std::size_t k = 95; k <= 105; ++k) sig += p.power[k];
  sig /= p.enbw_bins;
  EXPECT_NEAR(sig, 0.5 * 0.5 / 2.0, 0.01 * 0.125);
}

TEST(Periodogram, BinFrequencyMapping) {
  const auto x = tone_plus_noise(2048, 0.25, 1.0, 0.0, 2);
  const Periodogram p = periodogram(x, 48000.0);
  EXPECT_NEAR(p.bin_hz, 48000.0 / 2048.0, 1e-9);
  EXPECT_EQ(p.bin_of_freq(12000.0), 512u);
  EXPECT_NEAR(p.freq_of_bin(512), 12000.0, 1e-9);
}

class SnrMeasurement : public ::testing::TestWithParam<double> {};

TEST_P(SnrMeasurement, WhiteNoiseSnrRecovered) {
  const double target_snr_db = GetParam();
  const std::size_t n = 1 << 16;
  const double amp = 0.9;
  const double psig = amp * amp / 2.0;
  // In-band measurement covers the whole band here (band = fs/2), so the
  // full noise power counts.
  const double sigma = std::sqrt(psig / std::pow(10.0, target_snr_db / 10.0));
  const auto x = tone_plus_noise(n, 1001.0 / n, amp, sigma, 99);
  const SnrResult r = measure_tone_snr(x, 1.0, 0.5);
  EXPECT_NEAR(r.snr_db, target_snr_db, 1.0);
  EXPECT_NEAR(r.signal_freq_hz, 1001.0 / n, 2.0 / n);
}

INSTANTIATE_TEST_SUITE_P(Levels, SnrMeasurement,
                         ::testing::Values(20.0, 40.0, 60.0, 80.0));

TEST(SnrMeasurement, EnobFollowsSnr) {
  const auto x = tone_plus_noise(1 << 14, 501.0 / (1 << 14), 0.9, 1e-3, 5);
  const SnrResult r = measure_tone_snr(x, 1.0, 0.5);
  EXPECT_NEAR(r.enob_bits, (r.snr_db - 1.76) / 6.02, 1e-9);
}

TEST(SnrMeasurement, BandLimitExcludesOutOfBandNoise) {
  // Tone in-band; a strong interferer far out of band must not count.
  const std::size_t n = 1 << 14;
  auto x = tone_plus_noise(n, 301.0 / n, 0.5, 0.0, 6);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += 0.3 * std::sin(2.0 * std::numbers::pi * 0.45 * i);
  }
  const SnrResult narrow = measure_tone_snr(x, 1.0, 0.1);
  EXPECT_GT(narrow.snr_db, 80.0);  // interferer at 0.45 excluded
  const SnrResult wide = measure_tone_snr(x, 1.0, 0.5);
  EXPECT_LT(wide.snr_db, 10.0);  // interferer dominates in-band noise
}

TEST(BandPower, SplitsSpectrumConsistently) {
  const auto x = tone_plus_noise(1 << 14, 0.1, 1.0, 0.01, 7);
  const Periodogram p = periodogram(x, 1.0);
  const double total = band_power(p, 0.0, 0.5);
  const double lo = band_power(p, 0.0, 0.25);
  const double hi = band_power(p, 0.25 + p.bin_hz, 0.5);
  EXPECT_NEAR(lo + hi, total, 0.02 * total);
}

TEST(DbHelpers, FloorsAndConverts) {
  EXPECT_NEAR(power_db(1.0), 0.0, 1e-12);
  EXPECT_NEAR(power_db(0.01), -20.0, 1e-9);
  EXPECT_EQ(power_db(0.0), -400.0);
  EXPECT_NEAR(amplitude_db(0.1), -20.0, 1e-9);
  EXPECT_EQ(amplitude_db(0.0), -400.0);
}

}  // namespace
