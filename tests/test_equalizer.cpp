// Inverse-droop equalizer design (Section VI).
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/freqz.h"
#include "src/filterdesign/cic.h"
#include "src/filterdesign/equalizer.h"

namespace {

using namespace dsadc;
using namespace dsadc::design;

double sinc_cascade_droop(double f) {
  // The paper's Sinc4/Sinc4/Sinc6 droop referred to the 40 MHz rate.
  double mag = 1.0;
  double ratio = 16.0;
  for (const auto& s : paper_sinc_cascade()) {
    mag *= cic_magnitude(s, f / ratio);
    ratio /= s.decimation;
  }
  return mag;
}

TEST(Equalizer, RejectsBadArgs) {
  EXPECT_THROW(design_droop_equalizer(65, nullptr, 0.4), std::invalid_argument);
  EXPECT_THROW(design_droop_equalizer(65, [](double) { return 1.0; }, 0.0),
               std::invalid_argument);
  EXPECT_THROW(design_droop_equalizer(65, [](double) { return 1e-9; }, 0.4),
               std::runtime_error);
}

TEST(Equalizer, CompensatesSincDroopPaperCase) {
  // Sinc-only droop (-4.5 dB at the edge) with the paper's 65 taps:
  // residual well under the 0.5 dB of Fig. 10.
  const auto eq = design_droop_equalizer(65, sinc_cascade_droop, 0.4999);
  EXPECT_EQ(eq.taps.size(), 65u);
  EXPECT_TRUE(dsp::is_symmetric(eq.taps, 1e-9));
  EXPECT_LT(eq.residual_ripple_db, 0.2);
}

TEST(Equalizer, GainRisesTowardBandEdge) {
  const auto eq = design_droop_equalizer(65, sinc_cascade_droop, 0.4999);
  const double g0 = std::abs(dsp::fir_response_at(eq.taps, 0.01));
  const double g1 = std::abs(dsp::fir_response_at(eq.taps, 0.45));
  EXPECT_GT(g1, g0 * 1.2);  // inverse-sinc boost
  // At the edge the boost approximates 1/droop.
  EXPECT_NEAR(g1, 1.0 / sinc_cascade_droop(0.45), 0.05 / sinc_cascade_droop(0.45));
}

TEST(Equalizer, MoreTapsLessResidual) {
  const auto a = design_droop_equalizer(33, sinc_cascade_droop, 0.4999);
  const auto b = design_droop_equalizer(65, sinc_cascade_droop, 0.4999);
  EXPECT_LE(b.residual_ripple_db, a.residual_ripple_db + 1e-9);
}

TEST(Equalizer, CompensatedResponseSeries) {
  const auto eq = design_droop_equalizer(49, sinc_cascade_droop, 0.48);
  const auto series = compensated_response_db(eq, sinc_cascade_droop, 64);
  ASSERT_EQ(series.size(), 64u);
  for (double v : series) {
    EXPECT_NEAR(v, 0.0, 0.5);  // flat to within half a dB
  }
}

TEST(Equalizer, IdentityDroopGivesAllpassUnity) {
  const auto eq =
      design_droop_equalizer(33, [](double) { return 1.0; }, 0.4999);
  for (double f = 0.0; f <= 0.48; f += 0.06) {
    EXPECT_NEAR(std::abs(dsp::fir_response_at(eq.taps, f)), 1.0, 1e-3);
  }
}

}  // namespace
