// Batch serving fast path: ChainBank lane export and SessionRuntime
// lockstep groups.
//
// The contract under test is bit-exactness of the served stream: whether
// a session's blocks run through the SoA bank rounds, through the scalar
// chain, or through any mix (group forms, seals, dissolves mid-stream),
// the output samples AND the fx saturate/round counter totals must be
// identical to one scalar DecimationChain fed the concatenated stream.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/runtime/multichannel.h"
#include "src/runtime/session.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;

std::vector<std::int32_t> stimulus_codes(verify::StimulusClass c,
                                         std::size_t n,
                                         std::mt19937_64& rng) {
  const auto raw = verify::make_stimulus(c, n, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  return codes;
}

std::map<std::string, std::uint64_t> fx_snapshot() {
  static const char* kSites[] = {"chain_hbf_in", "hbf_in",     "hbf_product",
                                 "hbf_internal", "hbf_out",    "scaler_out",
                                 "fir_out"};
  static const char* kEvents[] = {"saturate", "round", "wrap"};
  std::map<std::string, std::uint64_t> snap;
  auto& reg = obs::Registry::instance();
  for (const char* site : kSites) {
    for (const char* ev : kEvents) {
      const std::string name = std::string("fx.") + ev + "." + site;
      snap[name] = reg.counter(name).value();
    }
  }
  return snap;
}

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::instance().reset_all();
    ::setenv("DSADC_RUNTIME_THREADS", "2", 1);
  }
  void TearDown() override { ::unsetenv("DSADC_RUNTIME_THREADS"); }
};

/// Collects per-session served samples from done callbacks (which run on
/// worker threads; one mutex keeps the test simple).
struct Collector {
  std::mutex mu;
  std::map<std::uint64_t, std::vector<std::int64_t>> samples;
  std::map<std::uint64_t, int> errors;

  std::function<void(runtime::SessionResult)> sink() {
    return [this](runtime::SessionResult r) {
      std::lock_guard<std::mutex> lock(mu);
      if (r.status != runtime::SessionStatus::kOk) {
        ++errors[r.session];
        return;
      }
      auto& dst = samples[r.session];
      dst.insert(dst.end(), r.samples.begin(), r.samples.end());
    };
  }
};

// --- ChainBank lane export -----------------------------------------------

// Run a few bank rounds (deliberately including block lengths that leave
// every stage's phase/cursors mid-cycle), export each lane to a scalar
// chain, continue the stream on the scalar side, and compare against a
// scalar chain that saw the whole stream. Also proves fx totals match.
TEST_F(BatchTest, ExportLaneContinuesStreamBitExact) {
  const auto cfg = decim::paper_chain_config();
  constexpr std::size_t kLanes = 9;  // one stimulus class per lane
  const std::vector<std::size_t> prefix_blocks = {96, 160, 52};
  const std::vector<std::size_t> suffix_blocks = {512, 44};

  // Per-lane stimulus: every class from the library.
  std::mt19937_64 rng(1234);
  std::vector<std::vector<std::int32_t>> prefix(kLanes), suffix(kLanes);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    const auto cls = static_cast<verify::StimulusClass>(lane);
    for (const std::size_t n : prefix_blocks) {
      const auto b = stimulus_codes(cls, n, rng);
      prefix[lane].insert(prefix[lane].end(), b.begin(), b.end());
    }
    for (const std::size_t n : suffix_blocks) {
      const auto b = stimulus_codes(cls, n, rng);
      suffix[lane].insert(suffix[lane].end(), b.begin(), b.end());
    }
  }

  // Reference pass: scalar chains over the concatenated streams.
  std::vector<std::vector<std::int64_t>> want(kLanes);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    decim::DecimationChain ref(cfg);
    std::vector<std::int32_t> all = prefix[lane];
    all.insert(all.end(), suffix[lane].begin(), suffix[lane].end());
    want[lane] = ref.process(all);
  }
  const auto want_fx = fx_snapshot();
  obs::Registry::instance().reset_all();

  // Bank pass over the prefix, block by block.
  runtime::ChainBank bank(cfg, kLanes);
  std::vector<std::vector<std::int64_t>> got(kLanes);
  std::size_t consumed = 0;
  std::vector<std::int64_t> buf;
  for (const std::size_t n : prefix_blocks) {
    buf.resize(n * kLanes);
    for (std::size_t f = 0; f < n; ++f) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        buf[f * kLanes + lane] = prefix[lane][consumed + f];
      }
    }
    bank.process_inplace(buf);
    const std::size_t out_frames = buf.size() / kLanes;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      for (std::size_t f = 0; f < out_frames; ++f) {
        got[lane].push_back(buf[f * kLanes + lane]);
      }
    }
    consumed += n;
  }

  // Export every lane and continue scalar over the suffix.
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    decim::DecimationChain chain(cfg);
    bank.export_lane(lane, chain);
    const auto tail = chain.process(suffix[lane]);
    got[lane].insert(got[lane].end(), tail.begin(), tail.end());
  }

  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(got[lane], want[lane])
        << "lane " << lane << " ("
        << verify::stimulus_name(static_cast<verify::StimulusClass>(lane))
        << ")";
  }
  EXPECT_EQ(fx_snapshot(), want_fx);
}

TEST_F(BatchTest, ExportLaneRejectsBadLane) {
  const auto cfg = decim::paper_chain_config();
  runtime::ChainBank bank(cfg, 4);
  decim::DecimationChain chain(cfg);
  EXPECT_THROW(bank.export_lane(4, chain), std::invalid_argument);
}

// --- SessionRuntime lockstep groups --------------------------------------

// 16 lockstep sessions over 4 shards (4-lane groups), streaming equal
// blocks: every session's served stream and the fx totals must match
// dedicated scalar chains.
TEST_F(BatchTest, LockstepGroupsServeBitExact) {
  const auto cfg =
      std::make_shared<const decim::ChainConfig>(decim::paper_chain_config());
  constexpr std::size_t kSessions = 16;
  constexpr std::size_t kBlocks = 6;
  constexpr std::size_t kFrames = 256;

  std::mt19937_64 rng(77);
  std::vector<std::vector<std::vector<std::int32_t>>> blocks(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto cls = static_cast<verify::StimulusClass>(
        s % verify::kNumStimulusClasses);
    for (std::size_t b = 0; b < kBlocks; ++b) {
      blocks[s].push_back(stimulus_codes(cls, kFrames, rng));
    }
  }

  std::vector<std::vector<std::int64_t>> want(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    decim::DecimationChain ref(*cfg);
    for (const auto& b : blocks[s]) {
      const auto out = ref.process(b);
      want[s].insert(want[s].end(), out.begin(), out.end());
    }
  }
  const auto want_fx = fx_snapshot();
  obs::Registry::instance().reset_all();

  Collector col;
  {
    runtime::SessionRuntime::Options opts;
    opts.shards = 4;
    opts.workers = 2;
    runtime::SessionRuntime rt(opts);
    for (std::size_t s = 0; s < kSessions; ++s) {
      runtime::SessionJob job;
      job.session = s;
      job.op = runtime::SessionOp::kOpen;
      job.config = cfg;
      job.lockstep = true;
      job.done = col.sink();
      ASSERT_TRUE(rt.submit(std::move(job)));
    }
    for (std::size_t b = 0; b < kBlocks; ++b) {
      for (std::size_t s = 0; s < kSessions; ++s) {
        runtime::SessionJob job;
        job.session = s;
        job.op = runtime::SessionOp::kData;
        job.codes = blocks[s][b];
        job.done = col.sink();
        ASSERT_TRUE(rt.submit(std::move(job)));
      }
    }
    rt.stop();  // flushes any still-grouped backlog
  }

  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(col.samples[s], want[s]) << "session " << s;
    EXPECT_EQ(col.errors[s], 0) << "session " << s;
  }
  EXPECT_EQ(fx_snapshot(), want_fx);
}

// A straggler (one silent lane) must dissolve the group once its peers'
// backlog passes the bound -- and the peers' streams must stay bit-exact
// through the bank->scalar transition, as must the straggler's own later
// blocks (served scalar after the dissolve).
TEST_F(BatchTest, StragglerDissolveStaysBitExact) {
  const auto cfg =
      std::make_shared<const decim::ChainConfig>(decim::paper_chain_config());
  constexpr std::size_t kSessions = 4;  // one shard -> one 4-lane group
  constexpr std::size_t kFrames = 128;

  std::mt19937_64 rng(99);
  // Phase 1: 2 lockstep blocks everyone sends. Phase 2: 4 blocks only
  // sessions 1..3 send (session 0 goes quiet; backlog limit 2 forces the
  // dissolve). Phase 3: everyone sends 2 more blocks, now scalar.
  std::vector<std::vector<std::vector<std::int32_t>>> phase(3);
  const std::size_t counts[3] = {2, 4, 2};
  for (std::size_t p = 0; p < 3; ++p) {
    phase[p].resize(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s) {
      if (p == 1 && s == 0) continue;
      for (std::size_t b = 0; b < counts[p]; ++b) {
        phase[p][s].push_back(kFrames);  // lengths; codes drawn below
      }
    }
  }
  std::vector<std::vector<std::vector<std::int32_t>>> codes(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto cls = static_cast<verify::StimulusClass>(
        s % verify::kNumStimulusClasses);
    std::size_t total = 0;
    for (std::size_t p = 0; p < 3; ++p) total += phase[p][s].size();
    for (std::size_t b = 0; b < total; ++b) {
      codes[s].push_back(stimulus_codes(cls, kFrames, rng));
    }
  }

  std::vector<std::vector<std::int64_t>> want(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    decim::DecimationChain ref(*cfg);
    for (const auto& b : codes[s]) {
      const auto out = ref.process(b);
      want[s].insert(want[s].end(), out.begin(), out.end());
    }
  }
  const auto want_fx = fx_snapshot();
  obs::Registry::instance().reset_all();

  Collector col;
  {
    runtime::SessionRuntime::Options opts;
    opts.shards = 1;
    opts.workers = 1;
    opts.batch_max_lane_backlog = 2;
    opts.batch_linger_us = 0;  // only the backlog bound dissolves
    runtime::SessionRuntime rt(opts);
    for (std::size_t s = 0; s < kSessions; ++s) {
      runtime::SessionJob job;
      job.session = s;
      job.op = runtime::SessionOp::kOpen;
      job.config = cfg;
      job.lockstep = true;
      ASSERT_TRUE(rt.submit(std::move(job)));
    }
    std::vector<std::size_t> sent(kSessions, 0);
    for (std::size_t p = 0; p < 3; ++p) {
      for (std::size_t b = 0; b < counts[p]; ++b) {
        for (std::size_t s = 0; s < kSessions; ++s) {
          if (phase[p][s].size() <= b) continue;
          runtime::SessionJob job;
          job.session = s;
          job.op = runtime::SessionOp::kData;
          job.codes = codes[s][sent[s]++];
          job.done = col.sink();
          ASSERT_TRUE(rt.submit(std::move(job)));
        }
      }
    }
    rt.stop();
  }

  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(col.samples[s], want[s]) << "session " << s;
  }
  EXPECT_EQ(fx_snapshot(), want_fx);
}

// Unequal block lengths are a protocol-level loss of lockstep: the group
// dissolves immediately and every queued block replays scalar, bit-exact.
TEST_F(BatchTest, UnequalBlockLengthsDissolveBitExact) {
  const auto cfg =
      std::make_shared<const decim::ChainConfig>(decim::paper_chain_config());
  constexpr std::size_t kSessions = 3;
  std::mt19937_64 rng(5);
  // Session 1's second block has a different length.
  const std::size_t lens[kSessions][3] = {
      {128, 128, 128}, {128, 64, 128}, {128, 128, 128}};

  std::vector<std::vector<std::vector<std::int32_t>>> codes(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    for (std::size_t b = 0; b < 3; ++b) {
      codes[s].push_back(
          stimulus_codes(verify::StimulusClass::kPrbs, lens[s][b], rng));
    }
  }
  std::vector<std::vector<std::int64_t>> want(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    decim::DecimationChain ref(*cfg);
    for (const auto& b : codes[s]) {
      const auto out = ref.process(b);
      want[s].insert(want[s].end(), out.begin(), out.end());
    }
  }
  obs::Registry::instance().reset_all();

  Collector col;
  {
    runtime::SessionRuntime::Options opts;
    opts.shards = 1;
    opts.workers = 1;
    runtime::SessionRuntime rt(opts);
    for (std::size_t s = 0; s < kSessions; ++s) {
      runtime::SessionJob job;
      job.session = s;
      job.op = runtime::SessionOp::kOpen;
      job.config = cfg;
      job.lockstep = true;
      ASSERT_TRUE(rt.submit(std::move(job)));
    }
    for (std::size_t b = 0; b < 3; ++b) {
      for (std::size_t s = 0; s < kSessions; ++s) {
        runtime::SessionJob job;
        job.session = s;
        job.op = runtime::SessionOp::kData;
        job.codes = codes[s][b];
        job.done = col.sink();
        ASSERT_TRUE(rt.submit(std::move(job)));
      }
    }
    rt.stop();
  }
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(col.samples[s], want[s]) << "session " << s;
  }
}

// Reconfigure and drain mid-stream on grouped sessions: each lifecycle op
// dissolves the group first, so its own semantics (fresh chain after
// reconfigure, flush tail on drain) and every peer's continued stream
// match the scalar reference.
TEST_F(BatchTest, LifecycleOpsDissolveBitExact) {
  const auto cfg =
      std::make_shared<const decim::ChainConfig>(decim::paper_chain_config());
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kFrames = 192;
  std::mt19937_64 rng(42);

  std::vector<std::vector<std::vector<std::int32_t>>> codes(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto cls = static_cast<verify::StimulusClass>(
        s % verify::kNumStimulusClasses);
    for (std::size_t b = 0; b < 4; ++b) {
      codes[s].push_back(stimulus_codes(cls, kFrames, rng));
    }
  }

  // Reference: all sessions stream blocks 0-1; session 0 reconfigures
  // (fresh chain, same config); everyone streams blocks 2-3; everyone
  // drains (flush tail = group delay of zeros).
  std::vector<std::vector<std::int64_t>> want(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    decim::DecimationChain ref(*cfg);
    for (std::size_t b = 0; b < 2; ++b) {
      const auto out = ref.process(codes[s][b]);
      want[s].insert(want[s].end(), out.begin(), out.end());
    }
    if (s == 0) ref = decim::DecimationChain(*cfg);
    for (std::size_t b = 2; b < 4; ++b) {
      const auto out = ref.process(codes[s][b]);
      want[s].insert(want[s].end(), out.begin(), out.end());
    }
    const std::vector<std::int32_t> zeros(
        runtime::SessionRuntime::drain_pad_frames(ref), 0);
    const auto tail = ref.process(zeros);
    want[s].insert(want[s].end(), tail.begin(), tail.end());
  }
  const auto want_fx = fx_snapshot();
  obs::Registry::instance().reset_all();

  Collector col;
  {
    runtime::SessionRuntime::Options opts;
    opts.shards = 1;
    opts.workers = 1;
    runtime::SessionRuntime rt(opts);
    auto push = [&](std::uint64_t s, runtime::SessionOp op,
                    std::vector<std::int32_t> data = {}) {
      runtime::SessionJob job;
      job.session = s;
      job.op = op;
      job.codes = std::move(data);
      if (op == runtime::SessionOp::kOpen ||
          op == runtime::SessionOp::kReconfigure) {
        job.config = cfg;
      }
      job.lockstep = (op == runtime::SessionOp::kOpen);
      job.done = col.sink();
      ASSERT_TRUE(rt.submit(std::move(job)));
    };
    for (std::size_t s = 0; s < kSessions; ++s) {
      push(s, runtime::SessionOp::kOpen);
    }
    for (std::size_t b = 0; b < 2; ++b) {
      for (std::size_t s = 0; s < kSessions; ++s) {
        push(s, runtime::SessionOp::kData, codes[s][b]);
      }
    }
    push(0, runtime::SessionOp::kReconfigure);
    for (std::size_t b = 2; b < 4; ++b) {
      for (std::size_t s = 0; s < kSessions; ++s) {
        push(s, runtime::SessionOp::kData, codes[s][b]);
      }
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      push(s, runtime::SessionOp::kDrain);
      push(s, runtime::SessionOp::kClose);
    }
    rt.stop();
  }

  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(col.samples[s], want[s]) << "session " << s;
    EXPECT_EQ(col.errors[s], 0) << "session " << s;
  }
  EXPECT_EQ(fx_snapshot(), want_fx);
}

// The batch path's served samples must be identical for every worker
// count (the shard claim serializes each group; worker count only moves
// scheduling). Mirrors the tier-1 determinism guarantee of the
// multichannel runtime.
TEST_F(BatchTest, DeterministicAcrossWorkerCounts) {
  const auto cfg =
      std::make_shared<const decim::ChainConfig>(decim::paper_chain_config());
  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kBlocks = 4;
  constexpr std::size_t kFrames = 160;

  std::mt19937_64 rng(2026);
  std::vector<std::vector<std::vector<std::int32_t>>> blocks(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto cls = static_cast<verify::StimulusClass>(
        s % verify::kNumStimulusClasses);
    for (std::size_t b = 0; b < kBlocks; ++b) {
      blocks[s].push_back(stimulus_codes(cls, kFrames, rng));
    }
  }
  std::vector<std::vector<std::int64_t>> want(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    decim::DecimationChain ref(*cfg);
    for (const auto& b : blocks[s]) {
      const auto out = ref.process(b);
      want[s].insert(want[s].end(), out.begin(), out.end());
    }
  }

  for (const char* threads : {"1", "2", "8"}) {
    ::setenv("DSADC_RUNTIME_THREADS", threads, 1);
    obs::Registry::instance().reset_all();
    Collector col;
    {
      runtime::SessionRuntime::Options opts;
      opts.shards = 2;
      opts.workers = 0;  // take the env setting
      runtime::SessionRuntime rt(opts);
      for (std::size_t s = 0; s < kSessions; ++s) {
        runtime::SessionJob job;
        job.session = s;
        job.op = runtime::SessionOp::kOpen;
        job.config = cfg;
        job.lockstep = true;
        ASSERT_TRUE(rt.submit(std::move(job)));
      }
      for (std::size_t b = 0; b < kBlocks; ++b) {
        for (std::size_t s = 0; s < kSessions; ++s) {
          runtime::SessionJob job;
          job.session = s;
          job.op = runtime::SessionOp::kData;
          job.codes = blocks[s][b];
          job.done = col.sink();
          ASSERT_TRUE(rt.submit(std::move(job)));
        }
      }
      rt.stop();
    }
    for (std::size_t s = 0; s < kSessions; ++s) {
      EXPECT_EQ(col.samples[s], want[s])
          << "session " << s << " threads=" << threads;
    }
  }
}

}  // namespace
