// Fault injection against a live decimation service: malformed byte
// streams, protocol violations, mid-stream disconnects and slow consumers.
// The invariant under every fault: the server never crashes, and tenants
// on other connections keep streaming bit-exact output.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/service/client.h"
#include "src/service/net.h"
#include "src/service/server.h"
#include "src/service/wire.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;
using namespace std::chrono_literals;

constexpr auto kWait = 30000ms;

std::vector<std::int32_t> stimulus_codes(verify::StimulusClass c,
                                         std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto raw = verify::make_stimulus(c, n, fx::Format{4, 0}, rng);
  std::vector<std::int32_t> codes(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(raw[i]);
  }
  return codes;
}

// Every fault scenario runs against both I/O backends: the blocking
// thread-pair path and the edge-triggered epoll event loop share frame
// semantics but none of their buffer or shutdown machinery.
class ServiceFaultTest
    : public ::testing::TestWithParam<service::IoBackend> {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::instance().reset_all();
  }

  service::ServerOptions test_options(const char* tag) {
    service::ServerOptions o;
    o.unix_path = service::net::unique_socket_path(tag);
    o.workers = 4;
    o.shards = 4;
    o.io = GetParam();
    return o;
  }

  /// A healthy tenant streams and must receive the bit-exact reference.
  void expect_healthy_stream(service::Client& client, std::uint32_t ch) {
    const auto codes =
        stimulus_codes(verify::StimulusClass::kModulator, 1024, 17);
    decim::DecimationChain chain(*service::preset_config(0));
    const auto ref = chain.process(codes);
    ASSERT_TRUE(client.open(ch, 0));
    ASSERT_TRUE(client.send_data(ch, codes));
    ASSERT_TRUE(client.wait_sample_count(ch, ref.size(), kWait));
    EXPECT_EQ(client.samples(ch), ref);
  }
};

TEST_P(ServiceFaultTest, GarbledMagicDropsOnlyThatConnection) {
  service::Server server(test_options("garble"));
  server.start();
  auto victim = service::Client::connect_unix(server.unix_path());
  auto healthy = service::Client::connect_unix(server.unix_path());

  const std::uint8_t junk[32] = {0xde, 0xad, 0xbe, 0xef, 0x55, 0xaa};
  ASSERT_TRUE(victim->send_raw(junk, sizeof(junk)));
  // Server notices the unsynchronized stream, warns the client, drops it.
  for (int i = 0; i < 30000 && !victim->disconnected(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(victim->disconnected());
  EXPECT_GE(obs::Registry::instance().counter("service.bad_frames").value(),
            1u);

  expect_healthy_stream(*healthy, 1);
  victim.reset();
  healthy.reset();
  server.stop();
}

TEST_P(ServiceFaultTest, BadCrcDropsOnlyThatConnection) {
  service::Server server(test_options("crc"));
  server.start();
  auto victim = service::Client::connect_unix(server.unix_path());
  auto healthy = service::Client::connect_unix(server.unix_path());

  service::Frame f;
  f.type = service::FrameType::kOpen;
  f.channel = 2;
  f.payload = service::encode_u32(0);
  auto bytes = service::encode_frame(f);
  bytes.back() ^= 0x40;  // corrupt the payload under the CRC
  ASSERT_TRUE(victim->send_raw(bytes.data(), bytes.size()));
  for (int i = 0; i < 30000 && !victim->disconnected(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(victim->disconnected());

  expect_healthy_stream(*healthy, 2);
  victim.reset();
  healthy.reset();
  server.stop();
}

TEST_P(ServiceFaultTest, TruncatedFrameThenDisconnect) {
  // A client dies mid-frame (header promises more payload than ever
  // arrives). The server must tear the connection down on EOF and keep
  // serving everyone else.
  service::Server server(test_options("trunc"));
  server.start();
  auto victim = service::Client::connect_unix(server.unix_path());
  auto healthy = service::Client::connect_unix(server.unix_path());

  service::Frame f;
  f.type = service::FrameType::kData;
  f.channel = 1;
  f.payload = service::encode_codes(std::vector<std::int32_t>(256, 1));
  const auto bytes = service::encode_frame(f);
  ASSERT_TRUE(victim->send_raw(bytes.data(), bytes.size() / 2));
  victim->shutdown_now();

  expect_healthy_stream(*healthy, 3);
  victim.reset();
  healthy.reset();
  server.stop();
}

TEST_P(ServiceFaultTest, OutOfOrderSequenceRejectedStreamContinues) {
  service::Server server(test_options("seq"));
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());

  const std::uint32_t ch = 6;
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 512, 19);
  decim::DecimationChain chain(*service::preset_config(0));
  auto ref = chain.process(codes);
  const auto ref2 = chain.process(codes);
  ref.insert(ref.end(), ref2.begin(), ref2.end());

  ASSERT_TRUE(client->open(ch, 0));
  ASSERT_TRUE(client->wait_ack_count(ch, 1, kWait));
  // Jump the sequence number: the frame is dropped with BAD_SEQ and the
  // expected sequence number does not advance.
  ASSERT_TRUE(client->send_data_seq(ch, 5, codes));
  ASSERT_TRUE(client->wait_error(service::ErrorCode::kBadSeq, kWait));
  // The in-order stream still works, bit-exact, on the same connection.
  ASSERT_TRUE(client->send_data_seq(ch, 0, codes));
  ASSERT_TRUE(client->send_data_seq(ch, 1, codes));
  ASSERT_TRUE(client->wait_sample_count(ch, ref.size(), kWait));
  EXPECT_EQ(client->samples(ch), ref);
  EXPECT_FALSE(client->disconnected());
  client.reset();
  server.stop();
}

TEST_P(ServiceFaultTest, DataWithoutOpenIsNotOpen) {
  service::Server server(test_options("noopen"));
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());

  const std::uint32_t ch = 8;
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 256, 23);
  ASSERT_TRUE(client->send_data(ch, codes));
  ASSERT_TRUE(client->wait_error(service::ErrorCode::kNotOpen, kWait));
  EXPECT_FALSE(client->disconnected());

  // The same channel opens and streams normally afterwards.
  expect_healthy_stream(*client, ch);
  client.reset();
  server.stop();
}

TEST_P(ServiceFaultTest, DoubleOpenRejectedSessionSurvives) {
  service::Server server(test_options("dopen"));
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());

  const std::uint32_t ch = 2;
  ASSERT_TRUE(client->open(ch, 0));
  ASSERT_TRUE(client->wait_ack_count(ch, 1, kWait));
  ASSERT_TRUE(client->open(ch, 0));
  ASSERT_TRUE(client->wait_error(service::ErrorCode::kAlreadyOpen, kWait));
  EXPECT_FALSE(client->disconnected());

  // The original session is intact and streams bit-exact output.
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 1024, 29);
  decim::DecimationChain chain(*service::preset_config(0));
  const auto ref = chain.process(codes);
  ASSERT_TRUE(client->send_data(ch, codes));
  ASSERT_TRUE(client->wait_sample_count(ch, ref.size(), kWait));
  EXPECT_EQ(client->samples(ch), ref);
  client.reset();
  server.stop();
}

TEST_P(ServiceFaultTest, BadPresetRejected) {
  service::Server server(test_options("preset"));
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());
  ASSERT_TRUE(client->open(1, service::kNumPresets + 7));
  ASSERT_TRUE(client->wait_error(service::ErrorCode::kBadPreset, kWait));
  EXPECT_FALSE(client->disconnected());
  client.reset();
  server.stop();
}

TEST_P(ServiceFaultTest, DisconnectMidStreamLeavesServerHealthy) {
  service::Server server(test_options("dc"));
  server.start();
  auto victim = service::Client::connect_unix(server.unix_path());

  const std::uint32_t ch = 3;
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 2048, 31);
  ASSERT_TRUE(victim->open(ch, 0));
  for (int i = 0; i < 4; ++i) (void)victim->send_data(ch, codes);
  victim->shutdown_now();  // vanish with jobs still in flight

  // The server reaps the dead tenant's sessions and keeps serving.
  auto healthy = service::Client::connect_unix(server.unix_path());
  expect_healthy_stream(*healthy, ch);
  victim.reset();
  healthy.reset();
  server.stop();
}

TEST_P(ServiceFaultTest, SlowConsumerBlockPolicyLosesNothing) {
  // kBlock + tiny queues: a paused consumer exerts backpressure all the
  // way to its own socket, but once it resumes every sample arrives.
  auto opts = test_options("slowb");
  opts.queue_capacity = 2;
  opts.out_queue_capacity = 2;
  service::Server server(opts);
  server.start();
  auto slow = service::Client::connect_unix(server.unix_path());
  auto fast = service::Client::connect_unix(server.unix_path());

  const std::uint32_t ch_slow = 0, ch_fast = 1;  // distinct shards
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, 512, 37);
  decim::DecimationChain chain(*service::preset_config(0));
  std::vector<std::int64_t> ref;
  constexpr int kBlocks = 32;
  for (int i = 0; i < kBlocks; ++i) {
    const auto out = chain.process(codes);
    ref.insert(ref.end(), out.begin(), out.end());
  }

  slow->set_paused(true);
  ASSERT_TRUE(slow->open(ch_slow, 0));
  std::thread pusher([&] {
    for (int i = 0; i < kBlocks; ++i) {
      ASSERT_TRUE(slow->send_data(ch_slow, codes));
    }
  });

  // The stalled tenant must not stall anyone else.
  expect_healthy_stream(*fast, ch_fast);

  slow->set_paused(false);
  pusher.join();
  ASSERT_TRUE(slow->wait_sample_count(ch_slow, ref.size(), kWait));
  EXPECT_EQ(slow->samples(ch_slow), ref);
  EXPECT_EQ(slow->shed_count(ch_slow), 0u) << "block policy must not shed";
  EXPECT_EQ(obs::Registry::instance().counter("service.shed").value(), 0u);
  slow.reset();
  fast.reset();
  server.stop();
}

TEST_P(ServiceFaultTest, ShedPolicyAccountsEveryDroppedFrame) {
  // kShed + a 1-deep admission queue + a paused consumer: overload must
  // shed DATA frames (never lifecycle frames), notify the client of each
  // drop, and keep the books balanced: accepted + shed == sent.
  auto opts = test_options("shed");
  opts.policy = runtime::SessionRuntime::Overload::kShed;
  opts.queue_capacity = 1;
  opts.workers = 1;
  opts.out_queue_capacity = 4096;  // ample: no output-side drops
  service::Server server(opts);
  server.start();
  auto client = service::Client::connect_unix(server.unix_path());

  const std::uint32_t ch = 5;
  constexpr std::size_t kChunk = 512;  // divisible by the decimation ratio
  constexpr std::size_t kSent = 64;
  const auto codes =
      stimulus_codes(verify::StimulusClass::kModulator, kChunk, 41);

  ASSERT_TRUE(client->open(ch, 0));
  ASSERT_TRUE(client->wait_ack_count(ch, 1, kWait)) << "OPEN must not shed";
  client->set_paused(true);  // don't let DATA_OUT drain to keep load up
  for (std::size_t i = 0; i < kSent; ++i) {
    ASSERT_TRUE(client->send_data(ch, codes));
  }
  client->set_paused(false);

  // Every sent frame resolves as either samples or a SHED notice.
  constexpr std::size_t kPerBlock = kChunk / 16;
  const auto deadline = std::chrono::steady_clock::now() + kWait;
  while (std::chrono::steady_clock::now() < deadline) {
    if (client->sample_count(ch) / kPerBlock + client->shed_count(ch) >=
        kSent) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  const std::size_t got_blocks = client->sample_count(ch) / kPerBlock;
  const std::size_t sheds = client->shed_count(ch);
  EXPECT_EQ(got_blocks + sheds, kSent);
  EXPECT_EQ(client->sample_count(ch) % kPerBlock, 0u);

  auto& reg = obs::Registry::instance();
  EXPECT_EQ(reg.counter("service.accepted.ch5").value(), got_blocks);
  EXPECT_EQ(reg.counter("service.shed.ch5").value(), sheds);
  EXPECT_EQ(reg.counter("service.accepted").value() +
                reg.counter("service.shed").value(),
            kSent);
  EXPECT_FALSE(client->disconnected());
  client.reset();
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(
    IoBackends, ServiceFaultTest,
    ::testing::Values(service::IoBackend::kThreads,
                      service::IoBackend::kEpoll),
    [](const ::testing::TestParamInfo<service::IoBackend>& info) {
      return info.param == service::IoBackend::kEpoll ? "epoll" : "threads";
    });

}  // namespace
