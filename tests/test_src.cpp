// Fractional sample-rate converter (Farrow cubic Lagrange).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/decimator/src.h"
#include "src/dsp/spectrum.h"

namespace {

using namespace dsadc;
using decim::FarrowResampler;
using decim::resample;

std::vector<double> tone(std::size_t n, double f, double amp) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i));
  }
  return x;
}

TEST(Farrow, RejectsBadRatios) {
  EXPECT_THROW(FarrowResampler(0.0), std::invalid_argument);
  EXPECT_THROW(FarrowResampler(-1.0), std::invalid_argument);
  EXPECT_THROW(FarrowResampler(8.0), std::invalid_argument);
}

TEST(Farrow, InterpolateIsExactOnCubics) {
  // Cubic Lagrange reproduces any cubic polynomial exactly.
  const auto poly = [](double t) {
    return 0.3 * t * t * t - 1.1 * t * t + 0.7 * t + 2.0;
  };
  for (double mu = 0.0; mu < 1.0; mu += 0.07) {
    const double got = FarrowResampler::interpolate(
        poly(-1.0), poly(0.0), poly(1.0), poly(2.0), mu);
    EXPECT_NEAR(got, poly(mu), 1e-12) << mu;
  }
}

TEST(Farrow, EndpointsReproduceSamples) {
  EXPECT_NEAR(FarrowResampler::interpolate(1.0, 5.0, -2.0, 3.0, 0.0), 5.0,
              1e-12);
  // mu -> 1 approaches x1.
  EXPECT_NEAR(FarrowResampler::interpolate(1.0, 5.0, -2.0, 3.0, 1.0), -2.0,
              1e-12);
}

TEST(Farrow, OutputCountTracksRatio) {
  const auto x = tone(10000, 0.01, 1.0);
  for (double ratio : {0.5, 0.75, 1.0, 1.302083, 2.0}) {
    FarrowResampler src(ratio);
    const auto y = src.process(x);
    // The 3-sample window fill is lost at startup.
    EXPECT_NEAR(static_cast<double>(y.size()), 10000.0 / ratio,
                4.0 + 3.0 / ratio)
        << ratio;
  }
}

class FarrowToneSnr
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FarrowToneSnr, ResampledToneIsClean) {
  const auto [ratio, f_in] = GetParam();
  const auto x = tone(1 << 15, f_in, 0.9);
  FarrowResampler src(ratio);
  auto y = src.process(x);
  y.erase(y.begin(), y.begin() + 64);
  y.resize(y.size() / 2 * 2);
  const auto snr =
      dsp::measure_tone_snr(y, 1.0 / ratio, 0.5 / ratio,
                            dsp::WindowKind::kKaiser, 16, 8, 22.0);
  // Cubic interpolation distortion grows ~ f^4: generous floor for the
  // low-frequency tones used here.
  EXPECT_GT(snr.snr_db, 55.0) << "ratio " << ratio << " f " << f_in;
  // Absolute frequency is preserved (the measurement used the output rate
  // 1/ratio for an input rate of 1).
  EXPECT_NEAR(snr.signal_freq_hz, f_in, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FarrowToneSnr,
    ::testing::Values(std::make_tuple(40.0 / 30.72, 0.02),
                      std::make_tuple(0.8, 0.03),
                      std::make_tuple(1.25, 0.05),
                      std::make_tuple(2.0, 0.04)));

TEST(Farrow, IdentityRatioDelaysOnly) {
  const auto x = tone(4096, 0.013, 1.0);
  FarrowResampler src(1.0);
  const auto y = src.process(x);
  // With ratio exactly 1 and mu = 0, output i is input i+1 (the window
  // interpolates at hist_[1] when it first fills).
  for (std::size_t i = 64; i + 8 < y.size(); ++i) {
    EXPECT_NEAR(y[i], x[i + 1], 1e-9) << i;
  }
}

TEST(Farrow, ResetRestartsCleanly) {
  const auto x = tone(2048, 0.02, 1.0);
  FarrowResampler src(1.3);
  const auto a = src.process(x);
  src.reset();
  const auto b = src.process(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ResampleHelper, LteRateFromChainOutput) {
  // 40 MS/s chain output to the 30.72 MS/s LTE baseband rate.
  const auto x = tone(1 << 14, 1e6 / 40e6, 0.9);
  const auto y = resample(x, 40e6, 30.72e6);
  EXPECT_NEAR(static_cast<double>(y.size()),
              static_cast<double>(x.size()) * 30.72 / 40.0, 4.0);
  std::vector<double> trimmed(y.begin() + 64, y.end());
  trimmed.resize(trimmed.size() / 2 * 2);
  const auto snr = dsp::measure_tone_snr(trimmed, 30.72e6, 15e6,
                                         dsp::WindowKind::kKaiser, 16, 8, 22.0);
  EXPECT_NEAR(snr.signal_freq_hz, 1e6, 5e3);
  EXPECT_GT(snr.snr_db, 70.0);
}

}  // namespace
