// Minimum-adder CSD allocation.
#include <gtest/gtest.h>

#include "src/dsp/freqz.h"
#include "src/filterdesign/remez.h"
#include "src/fixedpoint/csd_optimize.h"

namespace {

using namespace dsadc;

class CsdOptimize : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    taps_ = new std::vector<double>(
        design::remez_lowpass(63, 0.10, 0.16, 1.0, 20.0).taps);
  }
  static void TearDownTestSuite() { delete taps_; }
  static std::vector<double>* taps_;
};

std::vector<double>* CsdOptimize::taps_ = nullptr;

TEST_F(CsdOptimize, MeetsTargetWithFewerDigits) {
  const auto full = fx::csd_encode_taps(*taps_, 20);
  const auto opt = fx::optimize_csd_taps(*taps_, 0.16, 55.0, 20);
  EXPECT_GE(opt.stopband_atten_db, 55.0);
  std::size_t full_digits = 0;
  for (const auto& c : full) full_digits += c.nonzero_count();
  EXPECT_LT(opt.digits, full_digits / 2);
  // The realized taps really deliver the attenuation.
  EXPECT_GE(dsp::min_attenuation_db(opt.values, 0.16, 0.5), 54.0);
}

TEST_F(CsdOptimize, TighterTargetCostsMoreDigits) {
  const auto loose = fx::optimize_csd_taps(*taps_, 0.16, 40.0, 20);
  const auto tight = fx::optimize_csd_taps(*taps_, 0.16, 60.0, 20);
  EXPECT_GE(loose.stopband_atten_db, 40.0);
  EXPECT_GE(tight.stopband_atten_db, 60.0);
  EXPECT_LT(loose.digits, tight.digits);
  EXPECT_LE(loose.adders, tight.adders);
}

TEST_F(CsdOptimize, KeepsSymmetryOfValues) {
  const auto opt = fx::optimize_csd_taps(*taps_, 0.16, 50.0, 20);
  // The optimizer removes digits pairwise on symmetric inputs, so linear
  // phase is preserved EXACTLY.
  for (std::size_t i = 0; i < opt.values.size() / 2; ++i) {
    EXPECT_EQ(opt.values[i], opt.values[opt.values.size() - 1 - i]);
  }
}

TEST_F(CsdOptimize, ArgumentsValidated) {
  EXPECT_THROW(fx::optimize_csd_taps({}, 0.2, 40.0), std::invalid_argument);
  EXPECT_THROW(fx::optimize_csd_taps(*taps_, 0.0, 40.0),
               std::invalid_argument);
  const std::vector<double> zero_dc{0.5, -0.5};
  EXPECT_THROW(fx::optimize_csd_taps(zero_dc, 0.2, 40.0),
               std::invalid_argument);
}

TEST_F(CsdOptimize, UnreachableTargetKeepsFullPrecision) {
  // If the float design only reaches ~60 dB, asking for 300 dB removes
  // nothing (or almost nothing) and reports the achievable figure.
  const auto opt = fx::optimize_csd_taps(*taps_, 0.16, 300.0, 20);
  const double full_atten = dsp::min_attenuation_db(*taps_, 0.16, 0.5);
  EXPECT_NEAR(opt.stopband_atten_db, full_atten, 1.0);
}

}  // namespace
