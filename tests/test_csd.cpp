// Canonical signed digit encoding: exactness, canonicity, minimality and
// hardware cost metrics (Section V of the paper).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "src/fixedpoint/csd.h"

namespace {

using namespace dsadc::fx;

TEST(CsdInt, ZeroIsEmpty) {
  const Csd c = csd_encode_int(0);
  EXPECT_TRUE(c.digits.empty());
  EXPECT_EQ(c.to_double(), 0.0);
  EXPECT_EQ(c.adder_cost(), 0u);
}

TEST(CsdInt, KnownEncodings) {
  // 7 = 8 - 1 (two digits, not three).
  const Csd seven = csd_encode_int(7);
  EXPECT_EQ(seven.nonzero_count(), 2u);
  EXPECT_NEAR(seven.to_double(), 7.0, 1e-15);
  // 15 = 16 - 1.
  EXPECT_EQ(csd_encode_int(15).nonzero_count(), 2u);
  // 5 = 4 + 1.
  EXPECT_EQ(csd_encode_int(5).nonzero_count(), 2u);
  // 1 is a bare shift: zero adders.
  EXPECT_EQ(csd_encode_int(1).adder_cost(), 0u);
}

class CsdIntSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CsdIntSweep, RangeProperties) {
  const std::int64_t base = GetParam();
  for (std::int64_t n = base; n < base + 200; ++n) {
    const Csd c = csd_encode_int(n);
    EXPECT_NEAR(c.to_double(), static_cast<double>(n), 1e-9) << n;
    EXPECT_TRUE(is_canonical(c)) << n;
    // CSD is minimal: never more nonzeros than the binary representation.
    const auto bin_ones =
        std::popcount(static_cast<std::uint64_t>(std::llabs(n)));
    EXPECT_LE(c.nonzero_count(), static_cast<std::size_t>(bin_ones) + 1) << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, CsdIntSweep,
                         ::testing::Values(-5000, -100, 0, 1000, 123456));

TEST(Csd, FractionalEncoding) {
  const Csd c = csd_encode(0.40625, 8);  // 104/256 = 0.0110100_2
  EXPECT_NEAR(c.to_double(), 0.40625, 1e-12);
  EXPECT_TRUE(is_canonical(c));
}

TEST(Csd, RoundsToPrecision) {
  const Csd c = csd_encode(1.0 / 3.0, 8);
  EXPECT_NEAR(c.to_double(), std::nearbyint(256.0 / 3.0) / 256.0, 1e-12);
}

TEST(Csd, RejectsBadFracBits) {
  EXPECT_THROW(csd_encode(0.5, -1), std::invalid_argument);
  EXPECT_THROW(csd_encode(0.5, 61), std::invalid_argument);
}

TEST(CsdLimited, RespectsDigitBudget) {
  for (double v : {0.7071067, 0.3333333, 0.9, -0.456789}) {
    for (std::size_t d = 1; d <= 5; ++d) {
      const Csd c = csd_encode_limited(v, 16, d);
      EXPECT_LE(c.nonzero_count(), d);
      // Greedy best-approximation error bound: next digit magnitude.
      if (!c.digits.empty()) {
        const int last = c.digits.back().position;
        EXPECT_LE(std::abs(c.to_double() - v),
                  std::ldexp(1.0, last));
      }
    }
  }
}

TEST(CsdLimited, ConvergesToExactWithEnoughDigits) {
  const double v = 0.15625;  // 0.00101_2: 2 digits suffice
  const Csd c = csd_encode_limited(v, 8, 8);
  EXPECT_NEAR(c.to_double(), v, 1e-12);
  EXPECT_LE(c.nonzero_count(), 2u);
}

TEST(CsdError, BoundedByHalfLsb) {
  const std::vector<double> coeffs{0.123, -0.456, 0.999, 0.001};
  const double err = csd_quantization_error(coeffs, 12);
  EXPECT_LE(err, std::ldexp(0.5, -12) + 1e-15);
}

TEST(CsdTaps, CostAccounting) {
  const std::vector<double> taps{0.5, 0.25, 0.75, 0.0};
  const auto enc = csd_encode_taps(taps, 8);
  ASSERT_EQ(enc.size(), 4u);
  // 0.5, 0.25 are single digits (0 adders); 0.75 = 1 - 0.25 (1 adder).
  EXPECT_EQ(enc[0].adder_cost(), 0u);
  EXPECT_EQ(enc[1].adder_cost(), 0u);
  EXPECT_EQ(enc[2].adder_cost(), 1u);
  EXPECT_EQ(enc[3].adder_cost(), 0u);
  EXPECT_EQ(total_adder_cost(enc), 1u);
}

TEST(Csd, ToStringReadable) {
  const Csd c = csd_encode(0.75, 4);
  EXPECT_EQ(c.to_string(), "+2^0 -2^-2");
  EXPECT_EQ(Csd{}.to_string(), "0");
}

// Round-trip stability on the paper's scaler constant S ~ 1.0825 (the
// MSA = 0.81 gain correction): once encoded, re-encoding the realized
// value must reproduce the identical digit set, and the nonzero-digit
// count must equal the Horner shift-add adder count plus one.
TEST(CsdScalerConstant, RoundTripIsStable) {
  const double s = 1.0825;
  for (std::size_t max_digits : {4u, 6u, 8u}) {
    const Csd first = csd_encode_limited(s, 14, max_digits);
    const double realized = first.to_double();
    const Csd again = csd_encode_limited(realized, 14, max_digits);
    ASSERT_EQ(again.digits.size(), first.digits.size()) << max_digits;
    for (std::size_t i = 0; i < first.digits.size(); ++i) {
      EXPECT_EQ(again.digits[i].sign, first.digits[i].sign);
      EXPECT_EQ(again.digits[i].position, first.digits[i].position);
    }
    EXPECT_NEAR(again.to_double(), realized, 1e-15);
    EXPECT_TRUE(is_canonical(first));
  }
}

TEST(CsdScalerConstant, DigitCountMatchesHornerAdders) {
  // Each nonzero digit is one term of the Horner shift-add network; N
  // terms need N-1 adders. Checked on the scaler constant at the chain's
  // production precision (frac=14, 8 digits).
  const Csd c = csd_encode_limited(1.0825, 14, 8);
  ASSERT_GE(c.nonzero_count(), 2u);
  EXPECT_EQ(c.adder_cost(), c.nonzero_count() - 1);
  // The approximation is within the greedy bound of the target.
  EXPECT_NEAR(c.to_double(), 1.0825, std::ldexp(1.0, c.digits.back().position));
}

TEST(Csd, NegativeValuesMirrorPositive) {
  for (double v : {0.3, 0.62, 0.111}) {
    const Csd p = csd_encode(v, 14);
    const Csd n = csd_encode(-v, 14);
    EXPECT_EQ(p.nonzero_count(), n.nonzero_count());
    EXPECT_NEAR(p.to_double(), -n.to_double(), 1e-12);
  }
}

}  // namespace
