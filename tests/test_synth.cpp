// Synthesis cost model: cell mapping, activity-driven power behaviour and
// the per-stage chain profile (Table II machinery).
#include <gtest/gtest.h>

#include <random>

#include "src/decimator/chain.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/rtl/builders.h"
#include "src/rtl/sim.h"
#include "src/synth/estimate.h"

namespace {

using namespace dsadc;

std::vector<std::int64_t> random_samples(std::size_t n, int bits, unsigned s) {
  std::mt19937 rng(s);
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-hi, hi);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(MapCells, CountsMatchModule) {
  rtl::Module m("t");
  const auto a = m.input("a", 8);
  const auto b = m.input("b", 8);
  const auto s = m.add(a, b, 9);
  const auto r = m.reg(s);
  (void)m.output("y", r);
  const auto c = synth::map_cells(m);
  EXPECT_EQ(c.adders, 1u);
  EXPECT_EQ(c.adder_bits, 9u);
  EXPECT_EQ(c.registers, 1u);
  EXPECT_EQ(c.register_bits, 9u);
}

TEST(EstimateArea, ScalesWithCells) {
  const auto lib = synth::default_45nm();
  const auto small = rtl::build_cic(design::CicSpec{2, 2, 4});
  const auto big = rtl::build_cic(design::CicSpec{6, 2, 12});
  const auto ea = synth::estimate_area(small.module, lib);
  const auto eb = synth::estimate_area(big.module, lib);
  EXPECT_GT(eb.area_mm2, ea.area_mm2);
  EXPECT_GT(eb.leakage_power_w, ea.leakage_power_w);
  EXPECT_GT(ea.area_mm2, 0.0);
}

TEST(Estimate, MoreActivityMorePower) {
  const auto lib = synth::default_45nm();
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 8});
  rtl::Simulator sim(stage.module);
  const auto quiet = std::vector<std::int64_t>(2048, 0);
  auto busy = random_samples(2048, 8, 3);
  const auto rq = sim.run({{stage.in, quiet}});
  const auto rb = sim.run({{stage.in, busy}});
  const auto eq = synth::estimate(stage.module, rq.activity, 640e6, lib, {});
  const auto eb = synth::estimate(stage.module, rb.activity, 640e6, lib, {});
  EXPECT_GT(eb.dynamic_power_w, eq.dynamic_power_w);
  // Even a quiet stage pays clock power.
  EXPECT_GT(eq.dynamic_power_w, 0.0);
}

TEST(Estimate, PowerScalesWithClockRate) {
  const auto lib = synth::default_45nm();
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 8});
  rtl::Simulator sim(stage.module);
  const auto in = random_samples(2048, 8, 5);
  const auto res = sim.run({{stage.in, in}});
  const auto fast = synth::estimate(stage.module, res.activity, 640e6, lib, {});
  const auto slow = synth::estimate(stage.module, res.activity, 40e6, lib, {});
  EXPECT_NEAR(fast.dynamic_power_w / slow.dynamic_power_w, 16.0, 0.01);
}

TEST(Estimate, RetimingReducesAdderPower) {
  const auto lib = synth::default_45nm();
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 8});
  rtl::Simulator sim(stage.module);
  const auto in = random_samples(2048, 8, 7);
  const auto res = sim.run({{stage.in, in}});
  rtl::BuildOptions retimed;
  retimed.retimed = true;
  rtl::BuildOptions glitchy;
  glitchy.retimed = false;
  const auto a = synth::estimate(stage.module, res.activity, 640e6, lib, retimed);
  const auto b = synth::estimate(stage.module, res.activity, 640e6, lib, glitchy);
  EXPECT_GT(b.dynamic_power_w, a.dynamic_power_w);
}

TEST(Estimate, MismatchedActivityThrows) {
  const auto lib = synth::default_45nm();
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 8});
  rtl::Activity bad;
  bad.bit_toggles.assign(3, 0);
  bad.updates.assign(3, 0);
  bad.base_ticks = 10;
  EXPECT_THROW(synth::estimate(stage.module, bad, 640e6, lib, {}),
               std::invalid_argument);
}

class ChainProfile : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto ntf = mod::synthesize_ntf(5, 16.0, 3.0, true);
    const auto coeffs = mod::realize_ciff(ntf);
    mod::CiffModulator m(coeffs, 4);
    const auto u = mod::coherent_sine(1 << 13, 5e6, 640e6, 0.81, nullptr);
    codes_ = new std::vector<std::int32_t>(m.run(u).codes);
    profile_ = new synth::PowerProfile(synth::profile_chain(
        decim::paper_chain_config(), *codes_, 640e6, synth::default_45nm(),
        {}));
  }
  static void TearDownTestSuite() {
    delete codes_;
    delete profile_;
  }
  static std::vector<std::int32_t>* codes_;
  static synth::PowerProfile* profile_;
};

std::vector<std::int32_t>* ChainProfile::codes_ = nullptr;
synth::PowerProfile* ChainProfile::profile_ = nullptr;

TEST_F(ChainProfile, SixStagesNamed) {
  ASSERT_EQ(profile_->stages.size(), 6u);
  EXPECT_EQ(profile_->stages[0].name, "sinc4_1");
  EXPECT_EQ(profile_->stages[1].name, "sinc4_2");
  EXPECT_EQ(profile_->stages[2].name, "sinc6_3");
  EXPECT_EQ(profile_->stages[3].name, "halfband");
  EXPECT_EQ(profile_->stages[4].name, "scaler");
  EXPECT_EQ(profile_->stages[5].name, "equalizer");
}

TEST_F(ChainProfile, TableTwoShape) {
  // The distribution the paper reports: the 640 MHz first Sinc stage is
  // the largest dynamic consumer; the halfband is a mid-pack consumer;
  // the scaler is the smallest; leakage is dominated by the coefficient-
  // heavy halfband + equalizer.
  const auto& s = profile_->stages;
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GT(s[0].dynamic_power_w, s[i].dynamic_power_w) << s[i].name;
  }
  EXPECT_LT(s[4].dynamic_power_w, 0.2 * s[0].dynamic_power_w);
  EXPECT_GT(s[3].leakage_power_w + s[5].leakage_power_w,
            0.5 * profile_->total_leakage_w);
}

TEST_F(ChainProfile, TotalsInPaperBallpark) {
  // Order-of-magnitude agreement with Table II / Fig. 12: mW-scale
  // dynamic power, sub-mW leakage, ~0.1 mm^2 area.
  EXPECT_GT(profile_->total_dynamic_w, 1e-3);
  EXPECT_LT(profile_->total_dynamic_w, 50e-3);
  EXPECT_GT(profile_->total_leakage_w, 0.1e-3);
  EXPECT_LT(profile_->total_leakage_w, 5e-3);
  EXPECT_GT(profile_->total_area_mm2, 0.02);
  EXPECT_LT(profile_->total_area_mm2, 1.0);
}

TEST_F(ChainProfile, DecimatedStagesCheaperPerOp) {
  // Sinc stages get cheaper down the chain despite growing widths,
  // because the clock rate halves.
  const auto& s = profile_->stages;
  EXPECT_GT(s[0].dynamic_power_w, s[1].dynamic_power_w);
  EXPECT_GT(s[1].dynamic_power_w, s[2].dynamic_power_w);
}

}  // namespace
