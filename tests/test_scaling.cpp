// Dynamic-range scaling of the CIFF states (the scaleABCD step of the
// flow): swings hit the target, the NTF is invariant, and the scaled
// modulator still delivers the SQNR.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/spectrum.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"

namespace {

using namespace dsadc;
using namespace dsadc::mod;

class CiffScalingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ntf_ = new Ntf(synthesize_ntf(5, 16.0, 3.0, true));
    raw_ = new CiffCoeffs(realize_ciff(*ntf_));
    scaled_ = new CiffScaling(scale_ciff_states(*raw_, 4, 0.81, 0.9));
  }
  static void TearDownTestSuite() {
    delete ntf_;
    delete raw_;
    delete scaled_;
  }
  static Ntf* ntf_;
  static CiffCoeffs* raw_;
  static CiffScaling* scaled_;
};

Ntf* CiffScalingTest::ntf_ = nullptr;
CiffCoeffs* CiffScalingTest::raw_ = nullptr;
CiffScaling* CiffScalingTest::scaled_ = nullptr;

TEST_F(CiffScalingTest, SwingsReachTarget) {
  ASSERT_EQ(scaled_->swings_after.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    // Each state swing lands near the 0.9 target (the quantized loop makes
    // the re-measured swing wander slightly).
    EXPECT_NEAR(scaled_->swings_after[i], 0.9, 0.25) << "state " << i;
  }
}

TEST_F(CiffScalingTest, UnscaledSwingsAreUneven) {
  double lo = 1e300, hi = 0.0;
  for (double s : scaled_->swings_before) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  // The raw realization has wildly different integrator swings - the
  // reason the Active-RC implementation needs this step at all.
  EXPECT_GT(hi / lo, 3.0);
}

TEST_F(CiffScalingTest, NtfInvariantUnderScaling) {
  for (double f : {0.001, 0.01, 0.03125, 0.1, 0.25, 0.49}) {
    EXPECT_NEAR(ciff_ntf_magnitude(scaled_->coeffs, f),
                ntf_->magnitude_at(f),
                1e-6 * (1.0 + ntf_->magnitude_at(f)) + 1e-9)
        << "f " << f;
  }
}

TEST_F(CiffScalingTest, ScaledModulatorKeepsSqnr) {
  CiffModulator m(scaled_->coeffs, 4);
  const auto u = coherent_sine(1 << 15, 5e6, 640e6, 0.81, nullptr);
  const auto out = m.run(u);
  ASSERT_TRUE(out.stable);
  const auto snr = dsp::measure_tone_snr(out.levels, 640e6, 20e6);
  EXPECT_GT(snr.snr_db, 95.0);
}

TEST_F(CiffScalingTest, StageGainsCompensateEachOther) {
  // The product of inter-stage gains times the feedforward taps must
  // reproduce the raw loop gain: check via the loop impulse response.
  const auto p_raw = ciff_loop_impulse_response(*raw_, 24);
  const auto p_scl = ciff_loop_impulse_response(scaled_->coeffs, 24);
  for (std::size_t k = 0; k < p_raw.size(); ++k) {
    EXPECT_NEAR(p_scl[k], p_raw[k], 1e-9 * (1.0 + std::abs(p_raw[k])));
  }
}

TEST(CiffScalingEven, WorksForEvenOrders) {
  const auto ntf = synthesize_ntf(4, 16.0, 2.5, true);
  const auto raw = realize_ciff(ntf);
  const auto scaled = scale_ciff_states(raw, 4, 0.7, 0.8);
  for (double s : scaled.swings_after) EXPECT_NEAR(s, 0.8, 0.25);
  for (double f : {0.01, 0.1, 0.4}) {
    EXPECT_NEAR(ciff_ntf_magnitude(scaled.coeffs, f), ntf.magnitude_at(f),
                1e-6 * (1.0 + ntf.magnitude_at(f)));
  }
}

}  // namespace
