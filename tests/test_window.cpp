// Window function properties: normalization, known gains, Kaiser design
// formulas, and parameterized structural sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/window.h"

namespace {

using dsadc::dsp::coherent_gain;
using dsadc::dsp::enbw_bins;
using dsadc::dsp::kaiser_beta_for_attenuation;
using dsadc::dsp::kaiser_order_for;
using dsadc::dsp::make_window;
using dsadc::dsp::WindowKind;

TEST(Window, RejectsEmpty) {
  EXPECT_THROW(make_window(WindowKind::kHann, 0), std::invalid_argument);
}

TEST(Window, RectangularProperties) {
  const auto w = make_window(WindowKind::kRectangular, 17);
  EXPECT_NEAR(coherent_gain(w), 1.0, 1e-12);
  EXPECT_NEAR(enbw_bins(w), 1.0, 1e-12);
}

TEST(Window, HannKnownGains) {
  // Large-N asymptotics: CG = 0.5, ENBW = 1.5 bins.
  const auto w = make_window(WindowKind::kHann, 4096);
  EXPECT_NEAR(coherent_gain(w), 0.5, 1e-3);
  EXPECT_NEAR(enbw_bins(w), 1.5, 2e-3);
}

TEST(Window, BlackmanHarrisKnownGains) {
  const auto w = make_window(WindowKind::kBlackmanHarris4, 4096);
  EXPECT_NEAR(coherent_gain(w), 0.35875, 1e-3);
  EXPECT_NEAR(enbw_bins(w), 2.0044, 5e-3);
}

struct WindowCase {
  WindowKind kind;
  double beta;
};

class WindowShape : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowShape, SymmetricAndBounded) {
  const auto& p = GetParam();
  const auto w = make_window(p.kind, 257, p.beta);
  for (std::size_t i = 0; i < w.size() / 2; ++i) {
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << "index " << i;
  }
  for (double v : w) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
  // Peak at the center.
  EXPECT_NEAR(w[w.size() / 2], 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, WindowShape,
    ::testing::Values(WindowCase{WindowKind::kHann, 0.0},
                      WindowCase{WindowKind::kHamming, 0.0},
                      WindowCase{WindowKind::kBlackman, 0.0},
                      WindowCase{WindowKind::kBlackmanHarris4, 0.0},
                      WindowCase{WindowKind::kKaiser, 8.0},
                      WindowCase{WindowKind::kKaiser, 16.0}));

TEST(Kaiser, BetaFormulaRegions) {
  EXPECT_NEAR(kaiser_beta_for_attenuation(20.0), 0.0, 1e-12);
  EXPECT_GT(kaiser_beta_for_attenuation(40.0), 2.0);
  EXPECT_NEAR(kaiser_beta_for_attenuation(60.0), 0.1102 * (60.0 - 8.7), 1e-9);
  // Monotone in attenuation.
  double prev = 0.0;
  for (double a = 25.0; a <= 120.0; a += 5.0) {
    const double b = kaiser_beta_for_attenuation(a);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(Kaiser, OrderEstimateScalesInverselyWithWidth) {
  const auto n1 = kaiser_order_for(60.0, 0.05);
  const auto n2 = kaiser_order_for(60.0, 0.025);
  EXPECT_GT(n2, n1);
  EXPECT_NEAR(static_cast<double>(n2) / static_cast<double>(n1), 2.0, 0.2);
  EXPECT_THROW(kaiser_order_for(60.0, 0.0), std::invalid_argument);
}

TEST(Kaiser, LargerBetaSmallerEnbwInverse) {
  // Higher beta -> wider main lobe -> larger ENBW.
  const auto w8 = make_window(WindowKind::kKaiser, 1024, 8.0);
  const auto w16 = make_window(WindowKind::kKaiser, 1024, 16.0);
  EXPECT_GT(enbw_bins(w16), enbw_bins(w8));
}

}  // namespace
