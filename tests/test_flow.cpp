// The end-to-end design flow (the paper's contribution): given Table I,
// produce a verified, synthesizable decimation filter - and retarget it.
#include <gtest/gtest.h>

#include "src/core/flow.h"
#include "src/core/response.h"

namespace {

using namespace dsadc;
using core::DesignFlow;
using core::FlowOptions;
using core::FlowResult;

class PaperFlow : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new FlowResult(DesignFlow::design(mod::paper_modulator_spec(),
                                                mod::paper_decimator_spec()));
  }
  static void TearDownTestSuite() { delete result_; }
  static FlowResult* result_;
};

FlowResult* PaperFlow::result_ = nullptr;

TEST_F(PaperFlow, SpecChecksPass) {
  EXPECT_TRUE(result_->ripple_ok) << result_->passband_ripple_db;
  EXPECT_TRUE(result_->attenuation_ok) << result_->alias_protection_db;
  EXPECT_GE(result_->alias_protection_db, 85.0);
  EXPECT_LE(result_->passband_ripple_db, 1.0);
}

TEST_F(PaperFlow, ModulatorModelMatchesPaper) {
  EXPECT_NEAR(result_->ntf.infinity_norm(), 3.0, 0.05);
  EXPECT_GT(result_->predicted_sqnr_db, 95.0);
  EXPECT_EQ(result_->ciff.order(), 5);
  EXPECT_NEAR(result_->msa, 0.81, 1e-12);  // spec value carried through
}

TEST_F(PaperFlow, ChainStructureMatchesPaper) {
  ASSERT_EQ(result_->chain.cic_stages.size(), 3u);
  EXPECT_EQ(result_->chain.cic_stages[0].order, 4);
  EXPECT_EQ(result_->chain.cic_stages[1].order, 4);
  EXPECT_EQ(result_->chain.cic_stages[2].order, 6);
  EXPECT_EQ(result_->chain.cic_stages[0].input_bits, 4);
  EXPECT_EQ(result_->chain.cic_stages[1].input_bits, 8);
  EXPECT_EQ(result_->chain.cic_stages[2].input_bits, 12);
  EXPECT_GE(result_->chain.hbf.stopband_atten_db, 90.0);
}

TEST_F(PaperFlow, ReportMentionsKeyFacts) {
  const std::string rep = core::flow_report(*result_);
  EXPECT_NE(rep.find("order 5"), std::string::npos);
  EXPECT_NE(rep.find("Sinc4(/2)"), std::string::npos);
  EXPECT_NE(rep.find("Sinc6(/2)"), std::string::npos);
  EXPECT_NE(rep.find("OK"), std::string::npos);
}

TEST_F(PaperFlow, VerifyMeetsTargets) {
  const auto v = DesignFlow::verify(*result_, 5e6, 1 << 15);
  EXPECT_TRUE(v.snr_ok);
  EXPECT_GT(v.snr_db, 80.0);               // 14-bit output, short run
  EXPECT_GT(v.snr_unquantized_db, 86.0);   // the filtering itself
  EXPECT_NEAR(v.tone_freq_hz, 5e6, 0.2e6);
}

TEST_F(PaperFlow, RtlArtifactsGenerated) {
  const auto art = DesignFlow::generate_rtl(*result_);
  EXPECT_EQ(art.verilog.size(), 6u);
  EXPECT_NE(art.verilog.find("halfband"), art.verilog.end());
  EXPECT_NE(art.full_chain_verilog.find("module decimation_chain"),
            std::string::npos);
  EXPECT_NE(art.testbench.find("_tb"), std::string::npos);
}

TEST_F(PaperFlow, SynthesisProfileShape) {
  const auto prof = DesignFlow::synthesize(*result_, 5e6, 1 << 12);
  ASSERT_EQ(prof.stages.size(), 6u);
  // First Sinc stage dominates dynamic power (Fig. 13).
  for (std::size_t i = 1; i < prof.stages.size(); ++i) {
    EXPECT_GE(prof.stages[0].dynamic_power_w,
              prof.stages[i].dynamic_power_w);
  }
}

TEST(FlowOptionsTest, ExplicitCicOrdersHonoured) {
  FlowOptions opt;
  opt.cic_orders = {5, 5, 6};
  const auto r = DesignFlow::design(mod::paper_modulator_spec(),
                                    mod::paper_decimator_spec(), opt);
  EXPECT_EQ(r.chain.cic_stages[0].order, 5);
  EXPECT_EQ(r.chain.cic_stages[1].order, 5);
  FlowOptions bad;
  bad.cic_orders = {4};
  EXPECT_THROW(DesignFlow::design(mod::paper_modulator_spec(),
                                  mod::paper_decimator_spec(), bad),
               std::invalid_argument);
}

TEST(FlowRetarget, Osr32NarrowbandStandard) {
  // SDR reconfiguration: a W-CDMA-like 5 MHz band at OSR 32.
  mod::ModulatorSpec m;
  m.order = 4;
  m.osr = 32.0;
  m.obg = 2.5;
  m.sample_rate_hz = 320e6;
  m.bandwidth_hz = 5e6;
  m.quantizer_bits = 4;
  m.msa = 0.85;
  mod::DecimatorSpec d;
  d.passband_edge_hz = 5e6;
  d.stopband_edge_hz = 5.75e6;
  d.output_rate_hz = 10e6;
  d.stopband_atten_db = 85.0;
  d.target_snr_db = 86.0;
  const auto r = DesignFlow::design(m, d);
  EXPECT_EQ(r.chain.cic_stages.size(), 4u);  // OSR 32: four /2 Sinc stages
  EXPECT_TRUE(r.attenuation_ok) << r.alias_protection_db;
  EXPECT_TRUE(r.ripple_ok) << r.passband_ripple_db;
}

class FlowOsrSweep : public ::testing::TestWithParam<double> {};

TEST_P(FlowOsrSweep, DesignsMeetSpecsAcrossOsr) {
  const double osr = GetParam();
  mod::ModulatorSpec m;
  m.order = osr >= 16 ? 4 : 5;
  m.osr = osr;
  m.obg = osr >= 32 ? 2.0 : 3.0;
  m.bandwidth_hz = 10e6;
  m.sample_rate_hz = 2.0 * m.bandwidth_hz * osr;
  m.quantizer_bits = 4;
  m.msa = 0.8;
  mod::DecimatorSpec d;
  d.passband_edge_hz = 10e6;
  d.stopband_edge_hz = 11.5e6;
  d.output_rate_hz = 20e6;
  d.stopband_atten_db = 80.0;
  d.target_snr_db = 80.0;
  const auto r = core::DesignFlow::design(m, d);
  std::size_t n_cic = 0;
  for (double v = osr / 2.0; v > 1.0; v /= 2.0) ++n_cic;
  EXPECT_EQ(r.chain.cic_stages.size(), n_cic);
  EXPECT_TRUE(r.attenuation_ok) << "OSR " << osr << ": "
                                << r.alias_protection_db;
  EXPECT_TRUE(r.ripple_ok) << "OSR " << osr << ": " << r.passband_ripple_db;
}

INSTANTIATE_TEST_SUITE_P(Grid, FlowOsrSweep,
                         ::testing::Values(4.0, 8.0, 16.0, 32.0, 64.0));

TEST(FlowRetarget, RejectsNonPowerOfTwoOsr) {
  mod::ModulatorSpec m = mod::paper_modulator_spec();
  m.osr = 12.0;
  EXPECT_THROW(DesignFlow::design(m, mod::paper_decimator_spec()),
               std::invalid_argument);
}

TEST(FlowRetarget, RejectsIncompatibleHalfbandEdge) {
  mod::DecimatorSpec d = mod::paper_decimator_spec();
  d.stopband_edge_hz = 45e6;  // beyond what a final /2 halfband can do
  EXPECT_THROW(DesignFlow::design(mod::paper_modulator_spec(), d),
               std::invalid_argument);
}

}  // namespace
