// Saramaki tapped-cascade halfband (Fig. 7): structure, basis conversion,
// response consistency, attenuation and hardware cost.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/chebyshev.h"
#include "src/dsp/freqz.h"
#include "src/filterdesign/halfband.h"
#include "src/filterdesign/saramaki.h"

namespace {

using namespace dsadc;
using namespace dsadc::design;

TEST(ChebyshevToPower, KnownConversions) {
  // c1 T1 -> p1 = c1.
  auto p = chebyshev_to_power_basis({0.7});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p[0], 0.7, 1e-15);
  // T3 = 4y^3 - 3y.
  p = chebyshev_to_power_basis({0.0, 1.0});
  EXPECT_NEAR(p[0], -3.0, 1e-12);
  EXPECT_NEAR(p[1], 4.0, 1e-12);
  // General identity check by evaluation.
  const std::vector<double> c{0.6, -0.08, 0.02};
  p = chebyshev_to_power_basis(c);
  for (double y = -1.0; y <= 1.0; y += 0.1) {
    double want = 0.0, got = 0.0, yp = y;
    for (std::size_t i = 1; i <= c.size(); ++i) {
      want += c[i - 1] * dsp::chebyshev_t(2 * i - 1, y);
      got += p[i - 1] * yp;
      yp *= y * y;
    }
    EXPECT_NEAR(got, want, 1e-12);
  }
}

class PaperHbf : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hbf_ = new SaramakiHbf(design_saramaki_hbf(3, 6, 0.2125, 24, 0));
  }
  static void TearDownTestSuite() {
    delete hbf_;
    hbf_ = nullptr;
  }
  static SaramakiHbf* hbf_;
};

SaramakiHbf* PaperHbf::hbf_ = nullptr;

TEST_F(PaperHbf, PaperStructureNumbers) {
  EXPECT_EQ(hbf_->n1, 3u);
  EXPECT_EQ(hbf_->n2, 6u);
  EXPECT_EQ(hbf_->order(), 110u);   // "The 110th order filter"
  EXPECT_EQ(hbf_->taps.size(), 111u);
  // ">= 90 dB stopband attenuation"
  EXPECT_GE(hbf_->stopband_atten_db, 90.0);
  // "... uses only 124 adders": same ballpark for our CSD encoding.
  EXPECT_GT(hbf_->adder_count, 60u);
  EXPECT_LT(hbf_->adder_count, 160u);
}

TEST_F(PaperHbf, CompositeIsExactHalfband) {
  EXPECT_TRUE(is_halfband(hbf_->taps, 1e-9));
  EXPECT_TRUE(dsp::is_symmetric(hbf_->taps, 1e-9));
}

TEST_F(PaperHbf, ZeroPhaseMatchesImpulseResponse) {
  // The taps are composed from the CSD-quantized coefficients, so compare
  // against the zero-phase evaluation of those quantized values.
  std::vector<double> f1q, f2q;
  for (const auto& c : hbf_->f1_csd) f1q.push_back(c.to_double());
  for (const auto& c : hbf_->f2_csd) f2q.push_back(c.to_double());
  const std::size_t d = hbf_->taps.size() / 2;
  for (double f = 0.0; f <= 0.5; f += 0.013) {
    const auto resp = dsp::fir_response_at(hbf_->taps, f);
    const double w = 2.0 * M_PI * f * static_cast<double>(d);
    const double zero_phase = resp.real() * std::cos(w) - resp.imag() * std::sin(w);
    EXPECT_NEAR(zero_phase, saramaki_zero_phase(f1q, f2q, f), 1e-9)
        << "f=" << f;
  }
}

TEST_F(PaperHbf, PassbandRippleTiny) {
  EXPECT_LT(hbf_->passband_ripple_db, 0.01);
}

TEST_F(PaperHbf, SubfilterBounded) {
  // |F2hat| <= ~0.5 everywhere (Chebyshev argument domain).
  for (double f = 0.0; f <= 0.5; f += 0.002) {
    EXPECT_LE(std::abs(f2_zero_phase(hbf_->f2, f)), 0.52);
  }
}

TEST(Saramaki, F2AntisymmetryAroundQuarter) {
  const auto h = design_saramaki_hbf(3, 6, 0.21, 24, 0);
  for (double f = 0.0; f <= 0.25; f += 0.01) {
    EXPECT_NEAR(f2_zero_phase(h.f2, f), -f2_zero_phase(h.f2, 0.5 - f), 1e-10);
  }
}

class SaramakiStructures
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SaramakiStructures, OrderFormulaAndHalfbandness) {
  const auto [n1, n2] = GetParam();
  const auto h = design_saramaki_hbf(n1, n2, 0.21, 24, 0);
  EXPECT_EQ(h.taps.size(), 2 * (2 * n1 - 1) * (2 * n2 - 1) + 1);
  EXPECT_TRUE(is_halfband(h.taps, 1e-9));
  EXPECT_GT(h.stopband_atten_db, 20.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SaramakiStructures,
    ::testing::Values(std::make_tuple(std::size_t{2}, std::size_t{4}),
                      std::make_tuple(std::size_t{2}, std::size_t{6}),
                      std::make_tuple(std::size_t{3}, std::size_t{5}),
                      std::make_tuple(std::size_t{3}, std::size_t{6}),
                      std::make_tuple(std::size_t{4}, std::size_t{7})));

TEST(Saramaki, CsdBudgetTradesAttenuationForAdders) {
  const auto full = design_saramaki_hbf(3, 6, 0.2125, 24, 0);
  const auto lean = design_saramaki_hbf(3, 6, 0.2125, 24, 3);
  EXPECT_LT(lean.adder_count, full.adder_count);
  EXPECT_LE(lean.stopband_atten_db, full.stopband_atten_db + 1.0);
}

TEST(Saramaki, QuantizedTapsMatchCsdValues) {
  const auto h = design_saramaki_hbf(3, 6, 0.2125, 24, 4);
  for (std::size_t i = 0; i < h.f2.size(); ++i) {
    EXPECT_LE(h.f2_csd[i].nonzero_count(), 4u);
  }
  // The composite taps are built from the CSD values, so recomposing must
  // reproduce them exactly.
  std::vector<double> f1q, f2q;
  for (const auto& c : h.f1_csd) f1q.push_back(c.to_double());
  for (const auto& c : h.f2_csd) f2q.push_back(c.to_double());
  const auto taps = saramaki_impulse_response(f1q, f2q);
  ASSERT_EQ(taps.size(), h.taps.size());
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_NEAR(taps[i], h.taps[i], 1e-12);
  }
}

TEST(Saramaki, AutoSearchMeetsTargetCheaply) {
  const auto h = design_saramaki_hbf_auto(0.2125, 90.0, 24);
  EXPECT_GE(h.stopband_atten_db, 90.0);
  // The auto search must not be more expensive than the default structure
  // at full precision.
  const auto fixed = design_saramaki_hbf(3, 6, 0.2125, 24, 0);
  EXPECT_LE(h.adder_count, fixed.adder_count + 5);
}

TEST(Saramaki, StructuralAdderFormula) {
  EXPECT_EQ(saramaki_structural_adders(3, 6), 5u * 11u + 3u);
  EXPECT_EQ(saramaki_structural_adders(2, 4), 3u * 7u + 2u);
}

TEST(Saramaki, RejectsBadArgs) {
  EXPECT_THROW(design_saramaki_hbf(0, 6, 0.2), std::invalid_argument);
  EXPECT_THROW(design_saramaki_hbf(3, 1, 0.2), std::invalid_argument);
  EXPECT_THROW(design_saramaki_hbf(3, 6, 0.3), std::invalid_argument);
  EXPECT_THROW(design_saramaki_hbf_auto(0.24, 200.0), std::runtime_error);
}

}  // namespace
