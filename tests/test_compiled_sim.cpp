// Compiled-vs-interpreted simulator equivalence.
//
// The compiled engine (src/rtl/compiled_sim.h) must be bit-exact against
// the interpreted reference (src/rtl/sim.h) on every netlist the flow
// produces: identical output streams always, and identical per-node
// toggle/update counts in activity mode. Coverage here is three-layered:
//
//   * direct semantics checks on small hand-built modules (multi-rate
//     phases, feedback registers, non-power-of-two periods);
//   * every paper-chain stage netlist plus the flattened full chain,
//     driven by all 9 property-stimulus classes;
//   * randomized fuzz configurations (DSADC_FUZZ_SEED-style seeds) over
//     CIC specs and stimulus draws.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "src/decimator/chain.h"
#include "src/rtl/builders.h"
#include "src/rtl/compiled_sim.h"
#include "src/rtl/sim.h"
#include "src/verify/stimulus.h"

namespace {

using namespace dsadc;
using namespace dsadc::rtl;

/// Run both engines on the same single-input stimulus and require equal
/// outputs and (activity mode) equal toggle accounting.
void expect_engines_agree(const Module& m, NodeId in,
                          const std::vector<std::int64_t>& stimulus,
                          const std::string& what) {
  Simulator interp(m);
  const SimResult ref = interp.run({{in, stimulus}});

  CompiledSimulator compiled(m);
  const SimResult fast =
      compiled.run({{in, stimulus}}, CompiledRunOptions{.activity = true});

  ASSERT_EQ(ref.outputs.size(), fast.outputs.size()) << what;
  for (const auto& [id, stream] : ref.outputs) {
    const auto it = fast.outputs.find(id);
    ASSERT_NE(it, fast.outputs.end()) << what;
    EXPECT_EQ(stream, it->second) << what << ": output node " << id;
  }
  EXPECT_EQ(ref.activity.base_ticks, fast.activity.base_ticks) << what;
  EXPECT_EQ(ref.activity.bit_toggles, fast.activity.bit_toggles) << what;
  EXPECT_EQ(ref.activity.updates, fast.activity.updates) << what;

  // Default (pure dataflow) mode: same outputs, zeroed counters.
  const SimResult plain = compiled.run({{in, stimulus}});
  for (const auto& [id, stream] : ref.outputs) {
    EXPECT_EQ(stream, plain.outputs.at(id)) << what << " (dataflow mode)";
  }
}

std::vector<std::int64_t> iota_stimulus(std::size_t n, std::int64_t lo,
                                        std::int64_t hi) {
  std::vector<std::int64_t> v(n);
  std::int64_t x = lo;
  for (auto& s : v) {
    s = x;
    if (++x > hi) x = lo;
  }
  return v;
}

TEST(CompiledSim, MatchesInterpreterOnMultiRatePipeline) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId d2 = m.decimate(in, 2);
  const NodeId sum = m.add(d2, d2, 10);
  const NodeId d3 = m.decimate(sum, 3);  // period lcm(2, 6) = 6
  const NodeId r = m.reg(d3);
  m.output("fast", sum);
  m.output("slow", r);
  EXPECT_EQ(CompiledSimulator(m).period(), 6);
  expect_engines_agree(m, in, iota_stimulus(97, -128, 127), "multirate");
}

TEST(CompiledSim, MatchesInterpreterOnAccumulatorFeedback) {
  Module m("t");
  const NodeId in = m.input("in", 8);
  const NodeId st = m.reg_placeholder(16, 1);
  const NodeId sum = m.add(in, st, 16);
  m.connect_reg(st, sum);
  m.output("y", sum);
  expect_engines_agree(m, in, iota_stimulus(64, -8, 7), "feedback");
}

TEST(CompiledSim, MatchesInterpreterOnRequantShiftNegConst) {
  Module m("t");
  const NodeId in = m.input("in", 12);
  const NodeId c = m.constant(-37, 12, 2);
  const NodeId d = m.decimate(in, 2);
  const NodeId s = m.sub(d, c, 13);
  const NodeId l = m.shl(s, 3);
  const NodeId n = m.neg(l, 16);
  const NodeId q = m.requant(n, 4, fx::Format{9, 0},
                             fx::Rounding::kRoundNearest,
                             fx::Overflow::kSaturate);
  m.output("y", q);
  m.output("raw", m.shr(n, 2));
  expect_engines_agree(m, in, iota_stimulus(80, -2048, 2047), "ops");
}

TEST(CompiledSim, ErrorsMatchInterpreter) {
  Module m("t");
  const NodeId in = m.input("in", 4);
  const NodeId o = m.output("y", in);
  CompiledSimulator sim(m);
  EXPECT_THROW(sim.run({}), std::invalid_argument);
  const std::vector<std::int64_t> x{1};
  EXPECT_THROW(sim.run({{o, x}}), std::invalid_argument);
}

TEST(CompiledSim, ScheduleIsSmallerThanFullWalk) {
  const auto stage = build_cic(design::CicSpec{4, 8, 4});
  CompiledSimulator sim(stage.module);
  EXPECT_EQ(sim.period(), 8);
  // The whole point: the schedule fires fewer node-evaluations per period
  // than the interpreted all-nodes-every-tick walk.
  EXPECT_LT(sim.scheduled_ops_per_period(),
            stage.module.size() * static_cast<std::size_t>(sim.period()));
}

/// All 9 stimulus classes against one built stage.
void sweep_stimulus_classes(const Module& m, NodeId in, const fx::Format& fmt,
                            std::size_t len, const std::string& what,
                            std::uint64_t seed) {
  for (int c = 0; c < verify::kNumStimulusClasses; ++c) {
    const auto cls = static_cast<verify::StimulusClass>(c);
    std::mt19937_64 rng(seed + static_cast<std::uint64_t>(c));
    const auto stim = verify::make_stimulus(cls, len, fmt, rng);
    expect_engines_agree(m, in, stim,
                         what + " / " + verify::stimulus_name(cls));
  }
}

TEST(CompiledSim, PaperChainStagesAllStimulusClasses) {
  const auto cfg = decim::paper_chain_config();

  int clock_div = 1;
  int in_bits = cfg.input_format.width;
  for (std::size_t i = 0; i < cfg.cic_stages.size(); ++i) {
    auto spec = cfg.cic_stages[i];
    spec.input_bits = in_bits;
    const auto stage = build_cic(spec, clock_div);
    sweep_stimulus_classes(stage.module, stage.in,
                           fx::Format{spec.input_bits, 0}, 256,
                           "cic stage " + std::to_string(i), 0xC1C0 + i);
    clock_div *= spec.decimation;
    in_bits = spec.register_width();
  }

  const auto hbf =
      build_saramaki_hbf(cfg.hbf, cfg.hbf_in_format, cfg.hbf_out_format,
                         cfg.hbf_coeff_frac_bits, 6, 1);
  sweep_stimulus_classes(hbf.module, hbf.in, cfg.hbf_in_format, 256, "hbf",
                         0x4BF);

  const decim::ScalingStage scaler(cfg.scale, cfg.hbf_out_format,
                                   cfg.scaler_out_format, 14, 8);
  const auto sc = build_scaler(scaler.csd(), 14, cfg.hbf_out_format,
                               cfg.scaler_out_format, 1);
  sweep_stimulus_classes(sc.module, sc.in, cfg.hbf_out_format, 256, "scaler",
                         0x5CA1E);

  const auto eq =
      build_symmetric_fir(cfg.equalizer_taps, cfg.equalizer_frac_bits,
                          cfg.scaler_out_format, cfg.output_format, 1);
  sweep_stimulus_classes(eq.module, eq.in, cfg.scaler_out_format, 192,
                         "equalizer", 0xE0);
}

TEST(CompiledSim, FlattenedPaperChainAllStimulusClasses) {
  const auto cfg = decim::paper_chain_config();
  const auto chain = build_chain(cfg);
  EXPECT_EQ(CompiledSimulator(chain.full).period(), 16);
  sweep_stimulus_classes(chain.full, chain.in, cfg.input_format, 512,
                         "full chain", 0xC4A13);
}

TEST(CompiledSim, FuzzSeedsRandomCicConfigs) {
  std::uint64_t seed = 20260807;
  if (const char* env = std::getenv("DSADC_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> order(1, 6);
  std::uniform_int_distribution<int> decim_f(2, 16);
  std::uniform_int_distribution<int> bits(2, 8);
  std::uniform_int_distribution<int> cls(0, verify::kNumStimulusClasses - 1);
  for (int i = 0; i < 8; ++i) {
    const design::CicSpec spec{order(rng), decim_f(rng), bits(rng)};
    const auto stage = build_cic(spec);
    const fx::Format fmt{spec.input_bits, 0};
    const auto stim = verify::make_stimulus(
        static_cast<verify::StimulusClass>(cls(rng)), 192, fmt, rng);
    expect_engines_agree(stage.module, stage.in, stim,
                         "fuzz seed " + std::to_string(seed) + " case " +
                             std::to_string(i));
  }
}

}  // namespace
