// Bit-true Saramaki halfband decimator: impulse response against the
// design taps, agreement with the direct-form composite implementation,
// and numeric behaviour of the guarded internal formats.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/decimator/fir.h"
#include "src/decimator/hbf.h"
#include "src/filterdesign/saramaki.h"

namespace {

using namespace dsadc;
using decim::FixedTaps;
using decim::PolyphaseHalfbandDecimator;
using decim::SaramakiHbfDecimator;

class HbfImpl : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    design_ = new design::SaramakiHbf(
        design::design_saramaki_hbf(3, 6, 0.2125, 24, 0));
  }
  static void TearDownTestSuite() {
    delete design_;
    design_ = nullptr;
  }
  static design::SaramakiHbf* design_;
};

design::SaramakiHbf* HbfImpl::design_ = nullptr;

TEST_F(HbfImpl, GroupDelayIs55) {
  SaramakiHbfDecimator hbf(*design_, fx::Format{18, 14}, fx::Format{18, 14});
  EXPECT_EQ(hbf.group_delay(), 55u);
}

TEST_F(HbfImpl, ImpulseResponseMatchesDesignTaps) {
  const fx::Format fmt{18, 14};
  SaramakiHbfDecimator hbf(*design_, fmt, fmt);
  // Drive with a scaled impulse; collect outputs and compare with the even
  // phases of the composite taps (the decimated impulse response).
  std::vector<std::int64_t> in(256, 0);
  const std::int64_t amp = 1 << 10;  // small enough to avoid saturation
  in[0] = amp;
  const auto out = hbf.process(in);
  for (std::size_t n = 0; n < 60; ++n) {
    // Output n corresponds to input index 2n; tap index 2n.
    const double expect =
        (2 * n < design_->taps.size()) ? design_->taps[2 * n] : 0.0;
    const double got = static_cast<double>(out[n]) / static_cast<double>(amp);
    EXPECT_NEAR(got, expect, 2e-3) << "output " << n;
  }
}

TEST_F(HbfImpl, SecondPolyphaseViaShiftedImpulse) {
  const fx::Format fmt{18, 14};
  SaramakiHbfDecimator hbf(*design_, fmt, fmt);
  std::vector<std::int64_t> in(256, 0);
  const std::int64_t amp = 1 << 10;
  in[1] = amp;  // odd-phase impulse exercises the 0.5 delay path
  const auto out = hbf.process(in);
  for (std::size_t n = 0; n < 60; ++n) {
    const std::size_t k = 2 * n;  // input index at output n
    const double expect =
        (k >= 1 && k - 1 < design_->taps.size()) ? design_->taps[k - 1] : 0.0;
    const double got = static_cast<double>(out[n]) / static_cast<double>(amp);
    EXPECT_NEAR(got, expect, 2e-3) << "output " << n;
  }
  // The center 0.5 tap must appear exactly (it is a pure shift).
  // Output at 2n = 56 -> tap index 55 = 0.5.
  const double center = static_cast<double>(out[28]) / static_cast<double>(amp);
  EXPECT_NEAR(center, 0.5, 1e-4);
}

TEST_F(HbfImpl, AgreesWithDirectFormComposite) {
  // The tapped cascade and a direct-form FIR of the composite taps differ
  // only by internal rounding; on realistic signals the outputs must agree
  // to a few LSB-scale counts.
  const fx::Format fmt{18, 14};
  SaramakiHbfDecimator cascade(*design_, fmt, fmt);
  const FixedTaps composite = FixedTaps::from_real(design_->taps, 24);
  PolyphaseHalfbandDecimator direct(composite, fmt, fmt);
  std::mt19937 rng(77);
  std::uniform_int_distribution<std::int64_t> dist(-80000, 80000);
  std::vector<std::int64_t> in(2048);
  for (auto& v : in) v = dist(rng);
  const auto a = cascade.process(in);
  const auto b = direct.process(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 100; i < a.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(a[i]), static_cast<double>(b[i]), 24.0)
        << "output " << i;
  }
}

TEST_F(HbfImpl, DcGainIsUnity) {
  const fx::Format fmt{18, 14};
  SaramakiHbfDecimator hbf(*design_, fmt, fmt);
  std::vector<std::int64_t> in(2048, 50000);
  const auto out = hbf.process(in);
  EXPECT_NEAR(static_cast<double>(out.back()), 50000.0, 30.0);
}

TEST_F(HbfImpl, SaturatesGracefullyAtExtremes) {
  const fx::Format fmt{18, 14};
  SaramakiHbfDecimator hbf(*design_, fmt, fmt);
  std::vector<std::int64_t> in(512, fmt.raw_max());
  const auto out = hbf.process(in);
  for (std::int64_t v : out) {
    EXPECT_LE(v, fmt.raw_max());
    EXPECT_GE(v, fmt.raw_min());
  }
}

TEST_F(HbfImpl, ResetIsDeterministic) {
  const fx::Format fmt{18, 14};
  SaramakiHbfDecimator hbf(*design_, fmt, fmt);
  std::mt19937 rng(5);
  std::uniform_int_distribution<std::int64_t> dist(-10000, 10000);
  std::vector<std::int64_t> in(512);
  for (auto& v : in) v = dist(rng);
  const auto a = hbf.process(in);
  hbf.reset();
  const auto b = hbf.process(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(HbfImpl, MacCountMatchesStructure) {
  SaramakiHbfDecimator hbf(*design_, fx::Format{18, 14}, fx::Format{18, 14});
  EXPECT_EQ(hbf.macs_per_output(), 5u * 6u + 3u);
}

TEST(HbfImplErrors, RejectsEmptyDesignAndWideFormats) {
  design::SaramakiHbf empty;
  EXPECT_THROW(SaramakiHbfDecimator(empty, fx::Format{18, 14},
                                    fx::Format{18, 14}),
               std::invalid_argument);
  const auto d = design::design_saramaki_hbf(2, 4, 0.2, 24, 0);
  EXPECT_THROW(SaramakiHbfDecimator(d, fx::Format{55, 0}, fx::Format{18, 14}),
               std::invalid_argument);
}

}  // namespace
