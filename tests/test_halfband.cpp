// Half-band prototype designs (single-band Remez trick).
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/freqz.h"
#include "src/filterdesign/halfband.h"

namespace {

using namespace dsadc;
using namespace dsadc::design;

TEST(Halfband, RejectsBadArgs) {
  EXPECT_THROW(design_halfband(1, 0.2), std::invalid_argument);
  EXPECT_THROW(design_halfband(4, 0.0), std::invalid_argument);
  EXPECT_THROW(design_halfband(4, 0.25), std::invalid_argument);
}

class HalfbandSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(HalfbandSweep, StructureAndSymmetry) {
  const auto [j, fp] = GetParam();
  const HalfbandResult r = design_halfband(j, fp);
  ASSERT_EQ(r.taps.size(), 4 * j - 1);
  EXPECT_TRUE(is_halfband(r.taps, 1e-12));
  EXPECT_TRUE(dsp::is_symmetric(r.taps, 1e-10));
  // Complementarity: H(f) + H(0.5 - f) = 1 for exact half-band filters.
  for (double f = 0.0; f <= 0.25; f += 0.02) {
    const auto zero_phase = [&](double ff) {
      const auto h = dsp::fir_response_at(r.taps, ff);
      const double w = 2.0 * M_PI * ff * (2.0 * j - 1);
      return h.real() * std::cos(w) - h.imag() * std::sin(w);
    };
    EXPECT_NEAR(zero_phase(f) + zero_phase(0.5 - f), 1.0, 1e-9) << "f=" << f;
  }
}

TEST_P(HalfbandSweep, PassbandStopbandDuality) {
  const auto [j, fp] = GetParam();
  const HalfbandResult r = design_halfband(j, fp);
  // delta_pass == delta_stop for half-band filters.
  const double ds =
      std::pow(10.0, -dsp::min_attenuation_db(r.taps, 0.5 - fp, 0.5) / 20.0);
  EXPECT_NEAR(r.ripple, ds, 0.2 * std::max(r.ripple, ds) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HalfbandSweep,
    ::testing::Values(std::make_tuple(std::size_t{4}, 0.20),
                      std::make_tuple(std::size_t{8}, 0.2125),
                      std::make_tuple(std::size_t{16}, 0.22),
                      std::make_tuple(std::size_t{28}, 0.2125),
                      std::make_tuple(std::size_t{6}, 0.15)));

TEST(Halfband, LongerFiltersAttenuateMore) {
  double prev = 0.0;
  for (std::size_t j : {4, 8, 12, 16}) {
    const HalfbandResult r = design_halfband(j, 0.21);
    EXPECT_GT(r.stopband_atten_db, prev);
    prev = r.stopband_atten_db;
  }
}

TEST(Halfband, PaperLengthReaches90dB) {
  // 111 taps (J=28) at fp = 0.2125: comfortably past 90 dB.
  const HalfbandResult r = design_halfband(28, 0.2125);
  EXPECT_EQ(r.taps.size(), 111u);
  EXPECT_GT(r.stopband_atten_db, 90.0);
}

TEST(Halfband, AttenuationSearchFindsMinimalJ) {
  const HalfbandResult r = design_halfband_for_attenuation(0.20, 70.0);
  EXPECT_GE(r.stopband_atten_db, 70.0);
  if (r.j > 2) {
    const HalfbandResult smaller = design_halfband(r.j - 1, 0.20);
    EXPECT_LT(smaller.stopband_atten_db, 70.0);
  }
  EXPECT_THROW(design_halfband_for_attenuation(0.24, 300.0, 32),
               std::runtime_error);
}

TEST(IsHalfband, DetectsViolations) {
  HalfbandResult r = design_halfband(4, 0.2);
  EXPECT_TRUE(is_halfband(r.taps));
  auto bad = r.taps;
  bad[1] += 0.01;  // even-offset tap becomes nonzero (center is index 7)
  EXPECT_FALSE(is_halfband(bad));
  auto bad2 = r.taps;
  bad2[bad2.size() / 2] = 0.4;  // wrong center
  EXPECT_FALSE(is_halfband(bad2));
  EXPECT_FALSE(is_halfband(std::vector<double>{0.5, 0.5}));  // even length
}

}  // namespace
