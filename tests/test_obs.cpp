// Tests for the src/obs instrumentation layer: metrics registry semantics
// (including exactness under concurrent writers), Chrome trace-event JSON
// well-formedness (round-tripped through the verify JSON parser), the
// leveled logger, and the bench telemetry record format.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/bench_telemetry.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/verify/json.h"

namespace {

using namespace dsadc;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kCompiledOn) GTEST_SKIP() << "instrumentation compiled out";
    obs::set_enabled(true);
    obs::Registry::instance().reset_all();
    obs::clear_trace();
  }
  void TearDown() override {
    if (!obs::kCompiledOn) return;
    obs::set_trace_enabled(false);
    obs::set_log_sink({});
    obs::set_log_level(obs::LogLevel::kWarn);
  }
};

TEST_F(ObsTest, CounterSemantics) {
  auto& c = obs::Registry::instance().counter("test.counter.a");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Find-or-create returns the same instrument.
  EXPECT_EQ(&obs::Registry::instance().counter("test.counter.a"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeSemantics) {
  auto& g = obs::Registry::instance().gauge("test.gauge.a");
  EXPECT_EQ(g.value(), 0.0);
  g.set(-3.25);
  EXPECT_EQ(g.value(), -3.25);
  g.set(1e300);
  EXPECT_EQ(g.value(), 1e300);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST_F(ObsTest, HistogramSemantics) {
  auto& h =
      obs::Registry::instance().histogram("test.hist.a", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (bounds are inclusive upper edges)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  // Re-request ignores new bounds and returns the same instrument.
  EXPECT_EQ(&obs::Registry::instance().histogram("test.hist.a", {7.0}), &h);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
}

TEST_F(ObsTest, CounterTotalSumsByPrefix) {
  auto& reg = obs::Registry::instance();
  reg.counter("fxtest.saturate.site_a").add(3);
  reg.counter("fxtest.saturate.site_b").add(4);
  reg.counter("fxtest.wrap.site_a").add(100);
  EXPECT_EQ(reg.counter_total("fxtest.saturate."), 7u);
  EXPECT_EQ(reg.counter_total("fxtest."), 107u);
  EXPECT_EQ(reg.counter_total("fxtest.nothing."), 0u);
}

TEST_F(ObsTest, ConcurrentCounterIncrementsAreExact) {
  auto& reg = obs::Registry::instance();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Mix pre-looked-up and by-name access: both must be race-free.
      auto& c = reg.counter("test.concurrent.count");
      auto& h = reg.histogram("test.concurrent.hist", {0.5});
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        reg.counter("test.concurrent.count2").add(2);
        h.observe(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("test.concurrent.count").value(),
            std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(reg.counter("test.concurrent.count2").value(),
            2u * kThreads * kPerThread);
  auto& h = reg.histogram("test.concurrent.hist", {});
  EXPECT_EQ(h.count(), std::uint64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
}

TEST_F(ObsTest, RegistryJsonRoundTrips) {
  auto& reg = obs::Registry::instance();
  reg.counter("test.json.counter").add(7);
  reg.gauge("test.json.gauge").set(-0.125);
  reg.histogram("test.json.hist", {1.0, 2.0}).observe(1.5);
  const verify::Json j = verify::json_parse(reg.to_json(2));
  EXPECT_EQ(j.at("counters").at("test.json.counter").as_int(), 7);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("test.json.gauge").as_double(), -0.125);
  const verify::Json& h = j.at("histograms").at("test.json.hist");
  EXPECT_EQ(h.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(h.at("sum").as_double(), 1.5);
  ASSERT_EQ(h.at("buckets").size(), 3u);  // two bounds + overflow
  EXPECT_EQ(h.at("buckets").at(1).as_int(), 1);
}

TEST_F(ObsTest, DisabledSwitchGatesCounting) {
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  DSADC_OBS_COUNT("test.disabled.count");
  obs::set_enabled(true);
  DSADC_OBS_COUNT("test.disabled.count");
  EXPECT_EQ(obs::Registry::instance().counter("test.disabled.count").value(),
            1u);
}

TEST_F(ObsTest, TraceJsonRoundTrips) {
  obs::set_trace_enabled(true);
  {
    obs::Span outer("outer_phase", "design");
    obs::Span inner("inner \"quoted\"\\phase", "verify");
  }
  EXPECT_EQ(obs::trace_event_count(), 2u);
  const verify::Json j = verify::json_parse(obs::trace_json());
  EXPECT_EQ(j.at("displayTimeUnit").as_string(), "ms");
  const verify::Json& events = j.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  // Spans record on destruction: inner closes first.
  EXPECT_EQ(events.at(0).at("name").as_string(), "inner \"quoted\"\\phase");
  EXPECT_EQ(events.at(0).at("cat").as_string(), "verify");
  EXPECT_EQ(events.at(1).at("name").as_string(), "outer_phase");
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events.at(i).at("ph").as_string(), "X");
    EXPECT_GE(events.at(i).at("dur").as_int(), 0);
    EXPECT_GE(events.at(i).at("ts").as_int(), 0);
  }
}

TEST_F(ObsTest, TraceDisabledRecordsNothing) {
  obs::set_trace_enabled(false);
  { DSADC_TRACE_SPAN("invisible", "test"); }
  EXPECT_EQ(obs::trace_event_count(), 0u);
  // Valid (empty) document even with no events.
  const verify::Json j = verify::json_parse(obs::trace_json());
  EXPECT_EQ(j.at("traceEvents").size(), 0u);
}

TEST_F(ObsTest, TraceBufferCapDropsAndCounts) {
  obs::set_trace_enabled(true);
  const std::size_t old_cap = obs::trace_max_events();
  obs::set_trace_max_events(3);
  for (int i = 0; i < 5; ++i) {
    obs::trace_record("capped", "test", i, 1);
  }
  EXPECT_EQ(obs::trace_event_count(), 3u);
  EXPECT_EQ(obs::trace_dropped_count(), 2u);
  // The dropped tally resets with the buffer.
  obs::clear_trace();
  EXPECT_EQ(obs::trace_dropped_count(), 0u);
  obs::set_trace_max_events(old_cap);
}

TEST_F(ObsTest, LiteralSpanRecordsWithoutCopy) {
  obs::set_trace_enabled(true);
  { DSADC_TRACE_SPAN("literal_span", "test"); }
  ASSERT_EQ(obs::trace_event_count(), 1u);
  const verify::Json j = verify::json_parse(obs::trace_json());
  EXPECT_EQ(j.at("traceEvents").at(0).at("name").as_string(), "literal_span");
  EXPECT_EQ(j.at("traceEvents").at(0).at("cat").as_string(), "test");
}

TEST_F(ObsTest, WriteTraceProducesParsableFile) {
  obs::set_trace_enabled(true);
  { obs::Span s("file_span", "test"); }
  const std::string path =
      ::testing::TempDir() + "/dsadc_test_trace.json";
  ASSERT_TRUE(obs::write_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const verify::Json j = verify::json_parse(ss.str());
  EXPECT_EQ(j.at("traceEvents").at(0).at("name").as_string(), "file_span");
  std::remove(path.c_str());
}

TEST_F(ObsTest, LoggerLevelFilteringAndSink) {
  std::vector<std::string> lines;
  obs::set_log_sink([&lines](obs::LogLevel level, const char* component,
                             const std::string& msg) {
    lines.push_back(std::string(obs::log_level_name(level)) + "|" +
                    component + "|" + msg);
  });
  obs::set_log_level(obs::LogLevel::kWarn);
  DSADC_LOG_DEBUG("remez", "hidden %d", 1);
  DSADC_LOG_WARN("remez", "visible %d", 2);
  obs::set_log_level(obs::LogLevel::kDebug);
  DSADC_LOG_DEBUG("remez", "now visible %.1f", 0.5);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "warn|remez|visible 2");
  EXPECT_EQ(lines[1], "debug|remez|now visible 0.5");
}

TEST_F(ObsTest, LogLevelNamesRoundTrip) {
  EXPECT_EQ(obs::log_level_from_name("error"), obs::LogLevel::kError);
  EXPECT_EQ(obs::log_level_from_name("trace"), obs::LogLevel::kTrace);
  // Unknown names fall back to the default threshold.
  EXPECT_EQ(obs::log_level_from_name("bogus"), obs::LogLevel::kWarn);
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kInfo), "info");
}

TEST_F(ObsTest, BenchReportWritesValidRecord) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("DSADC_BENCH_OUT", dir.c_str(), 1), 0);
  std::string path;
  {
    obs::BenchReport report("obs_selftest");
    path = report.output_path();
    report.set("snr_db", 86.5);
    report.set("config", "paper");
    report.set("stable", true);
    EXPECT_EQ(report.finish(true), 0);
    EXPECT_EQ(report.finish(true), 0);  // idempotent
  }
  unsetenv("DSADC_BENCH_OUT");
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const verify::Json j = verify::json_parse(ss.str());
  EXPECT_EQ(j.at("bench").as_string(), "obs_selftest");
  EXPECT_TRUE(j.at("ok").as_bool());
  EXPECT_GE(j.at("wall_ms").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(j.at("metrics").at("snr_db").as_double(), 86.5);
  EXPECT_EQ(j.at("metrics").at("config").as_string(), "paper");
  EXPECT_TRUE(j.at("metrics").at("stable").as_bool());
  std::remove(path.c_str());
}

TEST_F(ObsTest, BenchReportFailureExitCode) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("DSADC_BENCH_OUT", dir.c_str(), 1), 0);
  obs::BenchReport report("obs_selftest_fail");
  const std::string path = report.output_path();
  EXPECT_EQ(report.finish(false), 1);
  unsetenv("DSADC_BENCH_OUT");
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_FALSE(verify::json_parse(ss.str()).at("ok").as_bool());
  std::remove(path.c_str());
}

}  // namespace
