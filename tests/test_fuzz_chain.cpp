// Randomized robustness sweep: the chain must stay well-behaved (no
// crashes, outputs inside the declared format, deterministic) across
// random configurations and hostile inputs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "src/core/flow.h"
#include "src/decimator/chain.h"

namespace {

using namespace dsadc;

/// RNG seed for the randomized sweeps. Every failure message carries the
/// seed; export DSADC_FUZZ_SEED=<n> to replay a reported failure.
std::uint32_t fuzz_seed(std::uint32_t fallback) {
  if (const char* env = std::getenv("DSADC_FUZZ_SEED")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint32_t>(v);
  }
  return fallback;
}

decim::ChainConfig random_config(std::mt19937& rng) {
  std::uniform_int_distribution<int> order_dist(2, 6);
  std::uniform_int_distribution<int> stages_dist(2, 4);
  std::uniform_int_distribution<int> eq_dist(2, 5);

  decim::ChainConfig cfg;
  cfg.input_rate_hz = 640e6;
  cfg.input_format = fx::Format{4, 0};
  const int n_stages = stages_dist(rng);
  int bits = 4;
  int gain_log2 = 0;
  for (int i = 0; i < n_stages; ++i) {
    design::CicSpec s{order_dist(rng), 2, bits};
    cfg.cic_stages.push_back(s);
    bits = s.register_width();
    gain_log2 += s.order;
  }
  cfg.hbf_in_format = fx::Format{bits, gain_log2};
  cfg.hbf_out_format = cfg.hbf_in_format;
  cfg.hbf = design::design_saramaki_hbf(
      static_cast<std::size_t>(eq_dist(rng) / 2 + 1),
      static_cast<std::size_t>(eq_dist(rng)), 0.21, 24, 0);
  cfg.scale = 0.98 / (0.8 * 7.0 + 0.5);
  // A crude equalizer: short inverse ramp (the point is robustness, not
  // flatness).
  cfg.equalizer_taps.assign(17, 0.0);
  cfg.equalizer_taps[8] = 1.0;
  cfg.equalizer_taps[7] = cfg.equalizer_taps[9] = -0.05;
  return cfg;
}

TEST(ChainFuzz, RandomConfigsStayBounded) {
  const std::uint32_t seed = fuzz_seed(2024);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int32_t> code(-7, 7);
  for (int trial = 0; trial < 8; ++trial) {
    decim::ChainConfig cfg;
    ASSERT_NO_THROW(cfg = random_config(rng))
        << "trial " << trial << " (DSADC_FUZZ_SEED=" << seed << ")";
    if (cfg.hbf_in_format.width > 40) continue;  // beyond int64 guard space
    decim::DecimationChain chain(cfg);
    std::vector<std::int32_t> codes(1 << 12);
    for (auto& c : codes) c = code(rng);
    const auto out = chain.process(codes);
    for (std::int64_t v : out) {
      EXPECT_LE(v, cfg.output_format.raw_max())
          << "trial " << trial << " (DSADC_FUZZ_SEED=" << seed << ")";
      EXPECT_GE(v, cfg.output_format.raw_min())
          << "trial " << trial << " (DSADC_FUZZ_SEED=" << seed << ")";
    }
  }
}

TEST(ChainFuzz, HostileInputsSaturateGracefully) {
  const auto cfg = decim::paper_chain_config();
  decim::DecimationChain chain(cfg);
  // Worst-case patterns: rails, alternating rails, impulse trains.
  std::vector<std::vector<std::int32_t>> patterns;
  patterns.push_back(std::vector<std::int32_t>(4096, 7));
  patterns.push_back(std::vector<std::int32_t>(4096, -7));
  {
    std::vector<std::int32_t> alt(4096);
    for (std::size_t i = 0; i < alt.size(); ++i) alt[i] = (i % 2) ? 7 : -7;
    patterns.push_back(alt);
  }
  {
    std::vector<std::int32_t> imp(4096, 0);
    for (std::size_t i = 0; i < imp.size(); i += 97) imp[i] = 7;
    patterns.push_back(imp);
  }
  for (const auto& p : patterns) {
    chain.reset();
    const auto out = chain.process(p);
    for (std::int64_t v : out) {
      EXPECT_LE(v, cfg.output_format.raw_max());
      EXPECT_GE(v, cfg.output_format.raw_min());
    }
  }
}

TEST(ChainFuzz, OutOfRangeCodesAreWrappedNotFatal) {
  // Codes outside the 4-bit range (a buggy upstream) must not crash; the
  // input format wraps them like the hardware bus would.
  const auto cfg = decim::paper_chain_config();
  decim::DecimationChain chain(cfg);
  std::vector<std::int32_t> codes(2048, 100);
  EXPECT_NO_THROW({
    const auto out = chain.process(codes);
    (void)out;
  });
}

TEST(ChainFuzz, DeterministicAcrossRuns) {
  const std::uint32_t seed = fuzz_seed(7);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int32_t> code(-7, 7);
  std::vector<std::int32_t> codes(1 << 12);
  for (auto& c : codes) c = code(rng);
  const auto cfg = decim::paper_chain_config();
  decim::DecimationChain a(cfg), b(cfg);
  const auto ra = a.process(codes);
  const auto rb = b.process(codes);
  ASSERT_EQ(ra.size(), rb.size()) << "DSADC_FUZZ_SEED=" << seed;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i], rb[i]) << "sample " << i << " (DSADC_FUZZ_SEED=" << seed
                            << ")";
  }
}

}  // namespace
