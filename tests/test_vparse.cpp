// Verilog replay: the emitted text, parsed and re-simulated, must match
// the IR simulation bit for bit - closing the HDL-generation loop.
#include <gtest/gtest.h>

#include <random>

#include "src/decimator/chain.h"
#include "src/rtl/builders.h"
#include "src/rtl/sim.h"
#include "src/rtl/verilog.h"
#include "src/rtl/vparse.h"

namespace {

using namespace dsadc;
using rtl::VerilogModule;

std::vector<std::int64_t> random_samples(std::size_t n, int bits, unsigned s) {
  std::mt19937 rng(s);
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-hi, hi);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Emit, parse, replay, and compare against the IR simulation of `stage`,
/// sampling the replay stream at the output's clock divider.
void expect_replay_matches_ir(const rtl::BuiltStage& stage,
                              const std::vector<std::int64_t>& in) {
  const std::string source = rtl::emit_verilog(stage.module);
  VerilogModule vm = VerilogModule::parse(source);
  ASSERT_EQ(vm.input_ports().size(), 1u);
  ASSERT_EQ(vm.output_ports().size(), 1u);

  rtl::Simulator sim(stage.module);
  const auto ir = sim.run({{stage.in, in}});
  const auto& ir_out = ir.outputs.begin()->second;
  const int out_div = stage.module.node(stage.out).clock_div;

  const auto replay = vm.run({{vm.input_ports()[0], in}}, in.size());
  const auto& replay_full = replay.at(vm.output_ports()[0]);

  // The IR records one sample per output-domain tick; the replay records
  // every base tick - sample it down.
  std::size_t idx = 0;
  for (std::size_t t = 0; t < replay_full.size();
       t += static_cast<std::size_t>(out_div), ++idx) {
    ASSERT_LT(idx, ir_out.size());
    ASSERT_EQ(replay_full[t], ir_out[idx]) << "tick " << t;
  }
}

TEST(VerilogReplay, CicStage) {
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 4});
  expect_replay_matches_ir(stage, random_samples(512, 4, 1));
}

TEST(VerilogReplay, Sinc6Stage) {
  const auto stage = rtl::build_cic(design::CicSpec{6, 2, 12});
  expect_replay_matches_ir(stage, random_samples(512, 12, 2));
}

TEST(VerilogReplay, ScalerStage) {
  const fx::Csd csd = fx::csd_encode_limited(0.1588, 14, 8);
  const auto stage = rtl::build_scaler(csd, 14, fx::Format{18, 14},
                                       fx::Format{18, 15}, 1);
  expect_replay_matches_ir(stage, random_samples(512, 18, 3));
}

TEST(VerilogReplay, EqualizerStage) {
  const auto cfg = decim::paper_chain_config();
  const auto stage = rtl::build_symmetric_fir(
      cfg.equalizer_taps, cfg.equalizer_frac_bits, cfg.scaler_out_format,
      cfg.output_format, 1);
  expect_replay_matches_ir(stage, random_samples(512, 17, 4));
}

TEST(VerilogReplay, HalfbandStage) {
  const auto d = design::design_saramaki_hbf(3, 6, 0.2125, 24, 0);
  const auto stage = rtl::build_saramaki_hbf(d, fx::Format{18, 14},
                                             fx::Format{18, 14}, 24, 6, 1);
  expect_replay_matches_ir(stage, random_samples(1024, 17, 5));
}

TEST(VerilogReplay, PortsAndClocksReported) {
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 4});
  const VerilogModule vm =
      VerilogModule::parse(rtl::emit_verilog(stage.module));
  EXPECT_EQ(vm.name(), "sinc4_decim2");
  EXPECT_EQ(vm.input_ports(), std::vector<std::string>{"in"});
  EXPECT_EQ(vm.output_ports(), std::vector<std::string>{"out"});
  const auto clocks = vm.clock_dividers();
  EXPECT_EQ(clocks.size(), 2u);  // clk_div1, clk_div2
}

TEST(VerilogReplay, FullChainParsesAndSimulates) {
  // The complete chain (5 clock domains, ~1000 nodes) must stay inside
  // the emitted subset; run a short replay to confirm it executes.
  const auto cfg = decim::paper_chain_config();
  const auto built = rtl::build_chain(cfg);
  const std::string source = rtl::emit_verilog(built.full);
  VerilogModule vm = VerilogModule::parse(source);
  EXPECT_EQ(vm.name(), "decimation_chain");
  EXPECT_EQ(vm.input_ports(), std::vector<std::string>{"codes"});
  EXPECT_EQ(vm.output_ports(), std::vector<std::string>{"data_out"});
  EXPECT_EQ(vm.clock_dividers().size(), 5u);  // div 1, 2, 4, 8, 16
  const auto in = random_samples(256, 4, 9);
  const auto out = vm.run({{"codes", in}}, in.size());
  ASSERT_EQ(out.at("data_out").size(), in.size());
}

TEST(VerilogReplay, RejectsUnsupportedText) {
  EXPECT_THROW(VerilogModule::parse("module m (\n  input  wire a,\n);\n"
                                    "  initial begin end\nendmodule\n"),
               std::runtime_error);
}

}  // namespace
