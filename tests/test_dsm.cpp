// Delta-sigma modulator simulation: quantizer semantics, stability, SQNR
// against prediction, NTF-exactness of the error-feedback model, and MSA.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/spectrum.h"
#include "src/modulator/dsm.h"

namespace {

using namespace dsadc;
using namespace dsadc::mod;

TEST(Quantizer, MidTreadProperties) {
  const Quantizer q(4);
  EXPECT_EQ(q.code_of(0.0), 0);
  EXPECT_NEAR(q.level_of(0), 0.0, 1e-15);
  EXPECT_EQ(q.code_of(1.0), 7);
  EXPECT_EQ(q.code_of(-1.0), -7);
  EXPECT_EQ(q.code_of(10.0), 7);    // clamps
  EXPECT_EQ(q.code_of(-10.0), -7);
  EXPECT_NEAR(q.level_of(7), 1.0, 1e-15);
  EXPECT_NEAR(q.step(), 1.0 / 7.0, 1e-15);
}

TEST(Quantizer, MonotoneAndSymmetric) {
  const Quantizer q(4);
  std::int32_t prev = -100;
  for (double y = -1.2; y <= 1.2; y += 0.001) {
    const auto c = q.code_of(y);
    EXPECT_GE(c, prev);
    prev = c;
  }
  for (double y = 0.03; y < 1.0; y += 0.07) {
    EXPECT_EQ(q.code_of(y), -q.code_of(-y));
  }
}

TEST(Quantizer, ErrorBoundedByHalfStep) {
  const Quantizer q(5);
  for (double y = -0.99; y <= 0.99; y += 0.013) {
    const double v = q.level_of(q.code_of(y));
    EXPECT_LE(std::abs(v - y), q.step() / 2.0 + 1e-12);
  }
}

TEST(Quantizer, RejectsBadBits) {
  EXPECT_THROW(Quantizer(1), std::invalid_argument);
  EXPECT_THROW(Quantizer(17), std::invalid_argument);
}

TEST(CoherentSine, OddCycleSnapping) {
  double f = 0.0;
  const auto x = coherent_sine(4096, 5e6, 640e6, 0.5, &f);
  EXPECT_EQ(x.size(), 4096u);
  const double cycles = f / 640e6 * 4096.0;
  EXPECT_NEAR(cycles, std::nearbyint(cycles), 1e-9);
  EXPECT_EQ(static_cast<long long>(std::nearbyint(cycles)) % 2, 1);
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 0.5, 0.01);
}

class PaperModulator : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ntf_ = new Ntf(synthesize_ntf(5, 16.0, 3.0, true));
    coeffs_ = new CiffCoeffs(realize_ciff(*ntf_));
  }
  static void TearDownTestSuite() {
    delete ntf_;
    delete coeffs_;
  }
  static Ntf* ntf_;
  static CiffCoeffs* coeffs_;
};

Ntf* PaperModulator::ntf_ = nullptr;
CiffCoeffs* PaperModulator::coeffs_ = nullptr;

TEST_F(PaperModulator, StableAtMsaWithHighSqnr) {
  CiffModulator m(*coeffs_, 4);
  const std::size_t n = 1 << 15;
  const auto u = coherent_sine(n, 5e6, 640e6, 0.81, nullptr);
  const DsmOutput out = m.run(u);
  ASSERT_TRUE(out.stable);
  EXPECT_LT(out.max_state, 5.0);
  const auto snr = dsp::measure_tone_snr(out.levels, 640e6, 20e6);
  // Short run: allow a few dB below the converged figure (~108 dB).
  EXPECT_GT(snr.snr_db, 95.0);
}

TEST_F(PaperModulator, CodesMatchLevels) {
  CiffModulator m(*coeffs_, 4);
  const auto u = coherent_sine(4096, 5e6, 640e6, 0.5, nullptr);
  const DsmOutput out = m.run(u);
  const Quantizer q(4);
  for (std::size_t i = 0; i < out.codes.size(); ++i) {
    EXPECT_NEAR(out.levels[i], q.level_of(out.codes[i]), 1e-15);
    EXPECT_GE(out.codes[i], -7);
    EXPECT_LE(out.codes[i], 7);
  }
}

TEST_F(PaperModulator, UnstableAboveFullScale) {
  CiffModulator m(*coeffs_, 4);
  const auto u = coherent_sine(1 << 15, 5e6, 640e6, 1.15, nullptr);
  const DsmOutput out = m.run(u);
  EXPECT_FALSE(out.stable);
}

TEST_F(PaperModulator, ResetRestoresDeterminism) {
  CiffModulator m(*coeffs_, 4);
  const auto u = coherent_sine(2048, 5e6, 640e6, 0.5, nullptr);
  const DsmOutput a = m.run(u);
  m.reset();
  const DsmOutput b = m.run(u);
  ASSERT_EQ(a.codes.size(), b.codes.size());
  for (std::size_t i = 0; i < a.codes.size(); ++i) {
    EXPECT_EQ(a.codes[i], b.codes[i]);
  }
}

TEST_F(PaperModulator, ErrorFeedbackMatchesStructuralSqnr) {
  const std::size_t n = 1 << 15;
  const auto u = coherent_sine(n, 5e6, 640e6, 0.7, nullptr);
  CiffModulator m(*coeffs_, 4);
  const DsmOutput s = m.run(u);
  const DsmOutput e = simulate_error_feedback(*ntf_, u, 4);
  const double snr_s = dsp::measure_tone_snr(s.levels, 640e6, 20e6).snr_db;
  const double snr_e = dsp::measure_tone_snr(e.levels, 640e6, 20e6).snr_db;
  EXPECT_NEAR(snr_s, snr_e, 6.0);  // same noise shaping, different dither
}

TEST_F(PaperModulator, NoiseIsShapedHighPass) {
  CiffModulator m(*coeffs_, 4);
  const std::size_t n = 1 << 15;
  const auto u = coherent_sine(n, 5e6, 640e6, 0.5, nullptr);
  const DsmOutput out = m.run(u);
  const auto p = dsp::periodogram(out.levels, 640e6);
  // Noise density near Nyquist must exceed in-band density by >> 40 dB.
  const double inband = dsp::band_power(p, 8e6, 18e6);
  const double outband = dsp::band_power(p, 250e6, 310e6);
  EXPECT_GT(10.0 * std::log10(outband / inband), 40.0);
}

TEST_F(PaperModulator, MsaNearPaperValue) {
  const double msa = find_msa(*coeffs_, 4, 16.0, 1 << 13, 0.01);
  // The paper's CT design quotes 0.81; the DT equivalent is somewhat more
  // tolerant. Accept a broad but meaningful window.
  EXPECT_GT(msa, 0.70);
  EXPECT_LE(msa, 1.0);
}

TEST(ErrorFeedback, LowOrderKnownBehaviour) {
  // 2nd-order NTF, DC input at 0.4: mean of output levels tracks input.
  const Ntf ntf = synthesize_ntf(2, 16.0, 2.0, true);
  std::vector<double> u(1 << 13, 0.4);
  const DsmOutput out = simulate_error_feedback(ntf, u, 4);
  double mean = 0.0;
  for (double v : out.levels) mean += v;
  mean /= static_cast<double>(out.levels.size());
  EXPECT_NEAR(mean, 0.4, 0.01);
}

}  // namespace
