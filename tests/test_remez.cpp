// Parks-McClellan exchange: spec attainment, equiripple behaviour,
// weighting, Type II handling, and arbitrary desired functions.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/freqz.h"
#include "src/filterdesign/remez.h"

namespace {

using namespace dsadc;
using namespace dsadc::design;

TEST(Remez, RejectsMalformedProblems) {
  EXPECT_THROW(remez(2, std::vector<Band>{const_band(0.0, 0.2, 1.0)}),
               std::invalid_argument);
  EXPECT_THROW(remez(21, std::vector<Band>{}), std::invalid_argument);
  EXPECT_THROW(remez(21, std::vector<Band>{const_band(0.3, 0.2, 1.0)}),
               std::invalid_argument);
  EXPECT_THROW(remez(21, std::vector<Band>{const_band(0.0, 0.6, 1.0)}),
               std::invalid_argument);
  Band no_fn;
  no_fn.f0 = 0.0;
  no_fn.f1 = 0.2;
  EXPECT_THROW(remez(21, std::vector<Band>{no_fn}), std::invalid_argument);
}

TEST(Remez, LowpassMeetsTextbookNumbers) {
  // 47 taps, transition 0.10 -> 0.15, stopband weight 10.
  const auto r = remez_lowpass(47, 0.10, 0.15, 1.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(dsp::is_symmetric(r.taps, 1e-9));
  EXPECT_GT(dsp::min_attenuation_db(r.taps, 0.15, 0.5), 50.0);
  EXPECT_LT(dsp::passband_ripple_db(r.taps, 0.0, 0.10), 0.5);
}

TEST(Remez, WeightTradesPassbandForStopband) {
  const auto flat = remez_lowpass(39, 0.10, 0.16, 1.0, 1.0);
  const auto heavy = remez_lowpass(39, 0.10, 0.16, 1.0, 50.0);
  EXPECT_GT(dsp::min_attenuation_db(heavy.taps, 0.16, 0.5),
            dsp::min_attenuation_db(flat.taps, 0.16, 0.5) + 10.0);
  EXPECT_GT(dsp::passband_ripple_db(heavy.taps, 0.0, 0.10),
            dsp::passband_ripple_db(flat.taps, 0.0, 0.10));
}

TEST(Remez, MoreTapsMoreAttenuation) {
  double prev = 0.0;
  for (std::size_t taps : {23, 39, 55, 71}) {
    const auto r = remez_lowpass(taps, 0.10, 0.16);
    const double att = dsp::min_attenuation_db(r.taps, 0.16, 0.5);
    EXPECT_GT(att, prev);
    prev = att;
  }
}

TEST(Remez, EquirippleAlternation) {
  // The optimal error must touch +-delta many times: count passband and
  // stopband extrema of the realized response.
  const auto r = remez_lowpass(31, 0.10, 0.18);
  const double dc = std::abs(dsp::fir_response_at(r.taps, 0.0));
  int touches = 0;
  double prev_err = 0.0;
  bool prev_set = false;
  const double dev = r.delta * 0.5;  // half-deviation threshold crossings
  for (double f = 0.0; f <= 0.10; f += 0.0005) {
    const double err = std::abs(dsp::fir_response_at(r.taps, f)) - dc;
    if (prev_set && (err - dev) * (prev_err - dev) < 0.0) ++touches;
    prev_err = err;
    prev_set = true;
  }
  // Stopband: count ripple lobes via threshold crossings of |H|.
  for (double f = 0.18; f <= 0.5; f += 0.0005) {
    const double err = std::abs(dsp::fir_response_at(r.taps, f));
    if (prev_set && (err - dev) * (prev_err - dev) < 0.0) ++touches;
    prev_err = err;
  }
  EXPECT_GE(touches, 8);  // many equiripple lobes across both bands
}

TEST(Remez, TypeTwoHasNyquistZero) {
  const auto r = remez_lowpass(48, 0.10, 0.18);
  EXPECT_EQ(r.taps.size(), 48u);
  EXPECT_TRUE(dsp::is_symmetric(r.taps, 1e-9));
  EXPECT_LT(std::abs(dsp::fir_response_at(r.taps, 0.5)), 1e-9);
  EXPECT_GT(dsp::min_attenuation_db(r.taps, 0.18, 0.49), 40.0);
}

TEST(Remez, SingleBandArbitraryDesired) {
  // Approximate a linear-in-f gain ramp; check pointwise accuracy.
  Band b;
  b.f0 = 0.0;
  b.f1 = 0.4;
  b.desired = [](double f) { return 1.0 + 2.0 * f; };
  b.weight = [](double) { return 1.0; };
  const auto r = remez(41, std::vector<Band>{b});
  for (double f = 0.02; f <= 0.38; f += 0.04) {
    EXPECT_NEAR(std::abs(dsp::fir_response_at(r.taps, f)), 1.0 + 2.0 * f,
                0.01);
  }
}

TEST(Remez, BandpassDesign) {
  const Band bands[] = {const_band(0.0, 0.08, 0.0, 1.0),
                        const_band(0.16, 0.30, 1.0, 1.0),
                        const_band(0.38, 0.5, 0.0, 1.0)};
  const auto r = remez(55, bands);
  EXPECT_TRUE(r.converged);
  // Band gains.
  EXPECT_NEAR(std::abs(dsp::fir_response_at(r.taps, 0.23)), 1.0, 0.05);
  EXPECT_LT(std::abs(dsp::fir_response_at(r.taps, 0.03)), 0.05);
  EXPECT_LT(std::abs(dsp::fir_response_at(r.taps, 0.45)), 0.05);
}

TEST(RemezOrderEstimate, TracksKaiserFormula) {
  const auto n = remez_order_estimate(0.1, 60.0, 0.05);
  EXPECT_GT(n, 30u);
  EXPECT_LT(n, 120u);
  EXPECT_GT(remez_order_estimate(0.1, 80.0, 0.05), n);
  EXPECT_GT(remez_order_estimate(0.1, 60.0, 0.025), n);
}

TEST(Remez, DeliveredDeltaMatchesMeasuredRipple) {
  const auto r = remez_lowpass(37, 0.12, 0.20, 1.0, 1.0);
  // Weighted delta equals both passband deviation and stopband deviation.
  const double stop_dev =
      std::pow(10.0, -dsp::min_attenuation_db(r.taps, 0.20, 0.5) / 20.0);
  EXPECT_NEAR(stop_dev, r.delta, 0.15 * r.delta);
}

}  // namespace
