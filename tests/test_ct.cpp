// Continuous-time loop-filter mapping (Figs. 2-3): impulse invariance,
// resonator placement, and CT-vs-DT modulator agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "src/dsp/spectrum.h"
#include "src/modulator/ct.h"
#include "src/modulator/ntf.h"

namespace {

using namespace dsadc;
using namespace dsadc::mod;

class CtMapping : public ::testing::TestWithParam<int> {
 protected:
  static Ntf make_ntf(int order) {
    return synthesize_ntf(order, 16.0, order >= 5 ? 3.0 : 2.0, true);
  }
};

TEST_P(CtMapping, PulseResponseMatchesDtImpulseResponse) {
  const int order = GetParam();
  const CiffCoeffs dt = realize_ciff(make_ntf(order));
  const CtCiffCoeffs ct = map_ciff_to_ct(dt);
  ASSERT_EQ(ct.order(), order);
  const auto want = ciff_loop_impulse_response(dt, 32);
  const auto got = ct_loop_pulse_response(ct, 32);
  for (std::size_t n = 0; n < want.size(); ++n) {
    EXPECT_NEAR(got[n], want[n], 1e-6 * (1.0 + std::abs(want[n])))
        << "order " << order << " sample " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, CtMapping, ::testing::Values(2, 3, 4, 5, 6));

TEST(CtMapping, ResonatorFrequencies) {
  const CiffCoeffs dt = realize_ciff(synthesize_ntf(5, 16.0, 3.0, true));
  const CtCiffCoeffs ct = map_ciff_to_ct(dt);
  ASSERT_EQ(ct.g_ct.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    // CT resonance sqrt(g_ct) rad/period must sample onto the DT zero
    // angle theta with g_dt = 2 - 2 cos(theta).
    const double theta = std::sqrt(ct.g_ct[j]);
    EXPECT_NEAR(2.0 - 2.0 * std::cos(theta), dt.g[j], 1e-12);
  }
  // Small-angle: g_ct slightly above g_dt.
  EXPECT_GT(ct.g_ct[0], dt.g[0]);
  EXPECT_NEAR(ct.g_ct[0], dt.g[0], 0.01 * dt.g[0]);
}

TEST(CtMapping, FeedForwardGainsPositiveDecreasing) {
  const CiffCoeffs dt = realize_ciff(synthesize_ntf(5, 16.0, 3.0, true));
  const CtCiffCoeffs ct = map_ciff_to_ct(dt);
  for (std::size_t i = 0; i + 1 < ct.k.size(); ++i) {
    EXPECT_GT(ct.k[i], 0.0);
    EXPECT_GT(ct.k[i], ct.k[i + 1]);
  }
}

class CtModulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto ntf = synthesize_ntf(5, 16.0, 3.0, true);
    dt_ = new CiffCoeffs(realize_ciff(ntf));
    ct_ = new CtCiffCoeffs(map_ciff_to_ct(*dt_));
  }
  static void TearDownTestSuite() {
    delete dt_;
    delete ct_;
  }
  static CiffCoeffs* dt_;
  static CtCiffCoeffs* ct_;
};

CiffCoeffs* CtModulatorTest::dt_ = nullptr;
CtCiffCoeffs* CtModulatorTest::ct_ = nullptr;

TEST_F(CtModulatorTest, StableAtMsaWithDtClassSqnr) {
  CtCiffModulator m(*ct_, 4);
  const auto u = coherent_sine(1 << 15, 5e6, 640e6, 0.81, nullptr);
  const auto out = m.run(u);
  ASSERT_TRUE(out.stable);
  const auto snr = dsp::measure_tone_snr(out.levels, 640e6, 20e6,
                                         dsp::WindowKind::kKaiser, 8, 8, 22.0);
  EXPECT_GT(snr.snr_db, 100.0);  // paper: 102 dB for the CT design
}

TEST_F(CtModulatorTest, AgreesWithDtWithinFewDb) {
  const auto u = coherent_sine(1 << 15, 5e6, 640e6, 0.7, nullptr);
  CtCiffModulator ct_mod(*ct_, 4);
  CiffModulator dt_mod(*dt_, 4);
  const auto snr_ct = dsp::measure_tone_snr(ct_mod.run(u).levels, 640e6, 20e6);
  const auto snr_dt = dsp::measure_tone_snr(dt_mod.run(u).levels, 640e6, 20e6);
  EXPECT_NEAR(snr_ct.snr_db, snr_dt.snr_db, 6.0);
}

TEST_F(CtModulatorTest, SubstepConvergence) {
  // Coarser integration must not change the behaviour materially (the
  // inter-sample dynamics are smooth).
  const auto u = coherent_sine(1 << 13, 5e6, 640e6, 0.6, nullptr);
  CtCiffModulator coarse(*ct_, 4, 8);
  CtCiffModulator fine(*ct_, 4, 64);
  const auto a = dsp::measure_tone_snr(coarse.run(u).levels, 640e6, 20e6);
  const auto b = dsp::measure_tone_snr(fine.run(u).levels, 640e6, 20e6);
  EXPECT_NEAR(a.snr_db, b.snr_db, 6.0);
}

TEST_F(CtModulatorTest, UnstableAboveFullScale) {
  CtCiffModulator m(*ct_, 4);
  const auto u = coherent_sine(1 << 15, 5e6, 640e6, 1.15, nullptr);
  EXPECT_FALSE(m.run(u).stable);
}

TEST(CtModulatorErrors, RejectsTooFewSubsteps) {
  CtCiffCoeffs c;
  c.k = {1.0, 0.5};
  c.g_ct = {0.01};
  EXPECT_THROW(CtCiffModulator(c, 4, 2), std::invalid_argument);
}

}  // namespace
