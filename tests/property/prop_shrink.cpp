// Fault-injection checks for the shrinker and the repro pipeline: a
// deliberately planted register-width bug must be (a) caught by the
// bounded reference comparison, (b) shrunk to a tiny reproducer, and (c)
// survivable through a repro-file round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/verify/diff.h"
#include "src/verify/harness.h"
#include "src/verify/repro.h"
#include "src/verify/shrink.h"

namespace {

using namespace dsadc::verify;

// The injected bug: a Sinc^4 decimate-by-8 stage whose Hogenauer registers
// were sized for a 6-bit input (Bmax+1 = 4*3 + 6 = 18 bits) while the
// datapath actually carries 10-bit samples. Full-scale 10-bit input
// overflows the too-narrow accumulators, which modular arithmetic cannot
// absorb because the *output* no longer fits either.
StageCase register_width_bug_case() {
  StageCase c;
  c.kind = StageKind::kCic;
  c.seed = UINT64_C(0xB06);
  c.stim_class = StimulusClass::kStep;
  c.cic = dsadc::design::CicSpec{4, 8, 6};  // registers sized for 6-bit input
  c.stimulus.assign(512, 511);       // but it is driven at 10-bit full scale
  c.length = c.stimulus.size();
  return c;
}

TEST(PropertyShrink, InjectedRegisterWidthBugIsCaught) {
  const StageCase c = register_width_bug_case();
  const DiffOutcome out = run_case(c);
  ASSERT_FALSE(out.ok) << "the under-sized registers should wrap visibly";
  EXPECT_EQ(out.leg, "ref-vs-fixed")
      << "RTL inherits the same narrow widths, so only the golden "
         "reference can expose the wrap; got: "
      << out.detail;
}

TEST(PropertyShrink, BugShrinksToTinyReproducer) {
  const StageCase c = register_width_bug_case();
  ASSERT_FALSE(run_case(c).ok);

  auto fails = [&c](const std::vector<std::int64_t>& stim) {
    StageCase probe = c;
    probe.stimulus = stim;
    probe.length = stim.size();
    return !run_case(probe).ok;
  };
  ShrinkOptions opt;
  opt.length_multiple = c.cic.decimation;
  const auto minimal = shrink_stimulus(c.stimulus, fails, opt);

  EXPECT_TRUE(fails(minimal)) << "shrinker must preserve the failure";
  EXPECT_LE(minimal.size(), 64u)
      << "a wraparound triggered by a step should not need more than a "
         "few output periods";
  EXPECT_EQ(minimal.size() % static_cast<std::size_t>(c.cic.decimation), 0u);
}

TEST(PropertyShrink, ShrunkBugRoundTripsThroughReproFile) {
  StageCase c = register_width_bug_case();
  auto fails = [&c](const std::vector<std::int64_t>& stim) {
    StageCase probe = c;
    probe.stimulus = stim;
    probe.length = stim.size();
    return !run_case(probe).ok;
  };
  ShrinkOptions opt;
  opt.length_multiple = c.cic.decimation;
  c.stimulus = shrink_stimulus(c.stimulus, fails, opt);
  c.length = c.stimulus.size();

  const std::string path = emit_repro(c, ::testing::TempDir());
  const StageCase loaded = load_repro(path);
  EXPECT_EQ(loaded.kind, c.kind);
  EXPECT_EQ(loaded.stimulus, c.stimulus);
  EXPECT_EQ(loaded.cic.order, c.cic.order);
  EXPECT_EQ(loaded.cic.decimation, c.cic.decimation);
  EXPECT_EQ(loaded.cic.input_bits, c.cic.input_bits);

  const DiffOutcome replayed = replay(loaded);
  EXPECT_FALSE(replayed.ok) << "replaying the repro must still fail";
  EXPECT_EQ(replayed.leg, "ref-vs-fixed");
}

TEST(PropertyShrink, HealthyCaseDoesNotShrink) {
  // Sanity: the shrinker refuses to "shrink" a passing stimulus -- the
  // caller's predicate never fires, so the input comes back untouched.
  const StageCase c = random_case(StageKind::kCic, UINT64_C(0x5EED));
  ASSERT_TRUE(run_case(c).ok);
  auto fails = [](const std::vector<std::int64_t>&) { return false; };
  const auto kept = shrink_stimulus(c.stimulus, fails);
  EXPECT_EQ(kept, c.stimulus);
}

}  // namespace
