// Property suite: full decimation chain (CIC cascade -> HBF -> scaler ->
// equalizer) against the chain netlist and the golden chain reference.
#include "tests/property/prop_common.h"

namespace {

using dsadc::verify::StageKind;
using dsadc::verify::proptest::run_stage_class;

TEST(PropertyChain, EndToEndThreeWay) {
  run_stage_class(StageKind::kChain, UINT64_C(0x77000000));
}

}  // namespace
