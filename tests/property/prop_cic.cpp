// Property suite: CIC family (Hogenauer, polyphase, sharpened).
#include "tests/property/prop_common.h"

namespace {

using dsadc::verify::StageKind;
using dsadc::verify::proptest::run_stage_class;

TEST(PropertyCic, HogenauerThreeWay) {
  run_stage_class(StageKind::kCic, UINT64_C(0x11000000));
}

TEST(PropertyCic, PolyphaseThreeWay) {
  run_stage_class(StageKind::kPolyphaseCic, UINT64_C(0x22000000));
}

TEST(PropertyCic, SharpenedThreeWay) {
  run_stage_class(StageKind::kSharpenedCic, UINT64_C(0x33000000));
}

}  // namespace
