// Shared driver for the property-based differential tests.
//
// Each stage-class test runs a batch of randomized (config, stimulus)
// cases through the three-way harness. On the first failure the stimulus
// is shrunk to a minimal reproducer, persisted as a repro file (replayable
// with tools/repro_runner), and the GTest failure message carries the
// seed, the failing leg, and the repro path.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "src/verify/diff.h"
#include "src/verify/harness.h"
#include "src/verify/parallel.h"
#include "src/verify/repro.h"
#include "src/verify/shrink.h"

namespace dsadc::verify::proptest {

/// Cases per stage class. Overridable with DSADC_PROP_CASES for quick
/// local iteration; the default meets the >=200 acceptance floor.
inline int case_count() {
  if (const char* env = std::getenv("DSADC_PROP_CASES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

/// Overall decimation of the stage a case drives; used as the shrinker's
/// length granularity so truncation preserves polyphase alignment.
inline int case_decimation(const StageCase& c) {
  switch (c.kind) {
    case StageKind::kCic:
    case StageKind::kPolyphaseCic:
    case StageKind::kSharpenedCic:
      return c.cic.decimation;
    case StageKind::kHbf:
      return 2;
    case StageKind::kScaler:
    case StageKind::kFir:
      return 1;
    case StageKind::kChain: {
      int m = 2;  // trailing halfband
      for (const auto& s : c.chain.cic_stages) m *= s.decimation;
      return m;
    }
  }
  return 1;
}

/// Shrink the failing case's stimulus, emit a repro file, and FAIL with a
/// replayable message.
inline void report_failure(const StageCase& c, const DiffOutcome& out) {
  auto fails = [&c](const std::vector<std::int64_t>& stim) {
    StageCase probe = c;
    probe.stimulus = stim;
    probe.length = stim.size();
    return !run_case(probe).ok;
  };
  ShrinkOptions opt;
  opt.length_multiple = case_decimation(c);
  StageCase shrunk = c;
  shrunk.stimulus = shrink_stimulus(c.stimulus, fails, opt);
  shrunk.length = shrunk.stimulus.size();
  std::string repro_path = "<write failed>";
  try {
    repro_path = emit_repro(shrunk);
  } catch (const std::exception& e) {
    repro_path = std::string("<write failed: ") + e.what() + ">";
  }
  FAIL() << stage_kind_name(c.kind) << " case failed: " << describe_case(c)
         << "\n  seed=" << c.seed << "  (set DSADC_FUZZ_SEED-style replay via"
         << " random_case(" << stage_kind_name(c.kind) << ", " << c.seed
         << "))"
         << "\n  leg=" << out.leg << "\n  " << out.detail << "\n  shrunk to "
         << shrunk.stimulus.size() << " samples; repro: " << repro_path
         << "\n  replay: build/tools/repro_runner " << repro_path;
}

/// Run `case_count()` randomized cases of one stage class; every case must
/// pass both legs (bit-exact RTL-vs-fixed, bounded ref-vs-fixed).
///
/// Cases fan out over verify_thread_count() workers (DSADC_VERIFY_THREADS
/// to override). Each case's stimulus is derived solely from seed_base + i,
/// so results are identical for any worker count; the lowest failing index
/// is reported, and worst_margin is an order-independent max, so the
/// output matches the old serial loop exactly.
inline void run_stage_class(StageKind kind, std::uint64_t seed_base) {
  const int n = case_count();
  std::vector<DiffOutcome> outcomes(static_cast<std::size_t>(n));
  parallel_for_index(static_cast<std::size_t>(n), [&](std::size_t i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    outcomes[i] = run_case(random_case(kind, seed));
  });

  double worst_margin = 0.0;  // max over cases of max_ref_error / bound
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const DiffOutcome& out = outcomes[i];
    if (out.error_bound > 0.0) {
      worst_margin = std::max(worst_margin, out.max_ref_error / out.error_bound);
    }
    if (!out.ok) {
      // Re-derive the failing case from its index (shrinking reruns the
      // harness serially, so it stays off the worker pool).
      const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
      report_failure(random_case(kind, seed), out);
      return;  // report_failure already FAILed; stop at first failure
    }
  }
  std::cout << "[          ] " << stage_kind_name(kind) << ": " << n
            << " cases, worst error/bound ratio " << worst_margin << "\n";
}

}  // namespace dsadc::verify::proptest
