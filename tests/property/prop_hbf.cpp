// Property suite: Saramaki half-band decimator.
#include "tests/property/prop_common.h"

namespace {

using dsadc::verify::StageKind;
using dsadc::verify::proptest::run_stage_class;

TEST(PropertyHbf, SaramakiThreeWay) {
  run_stage_class(StageKind::kHbf, UINT64_C(0x44000000));
}

}  // namespace
