// Repro-file round trips: every stage kind's case must serialize to JSON,
// survive dump -> parse, and replay to the same verdict.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/verify/diff.h"
#include "src/verify/harness.h"
#include "src/verify/json.h"
#include "src/verify/repro.h"

namespace {

using namespace dsadc::verify;

class PropertyRepro : public ::testing::TestWithParam<StageKind> {};

TEST_P(PropertyRepro, JsonRoundTripPreservesCase) {
  const StageCase c = random_case(GetParam(), UINT64_C(0x5EED0));
  const Json j = case_to_json(c);
  const StageCase back = case_from_json(json_parse(j.dump(2)));

  EXPECT_EQ(back.kind, c.kind);
  EXPECT_EQ(back.seed, c.seed);
  EXPECT_EQ(back.stim_class, c.stim_class);
  EXPECT_EQ(back.stimulus, c.stimulus);
  EXPECT_EQ(case_input_format(back).width, case_input_format(c).width);
  EXPECT_EQ(case_input_format(back).frac, case_input_format(c).frac);
}

TEST_P(PropertyRepro, FileRoundTripReplaysToSameVerdict) {
  const StageCase c = random_case(GetParam(), UINT64_C(0x5EED1));
  const DiffOutcome direct = run_case(c);

  const std::string path = emit_repro(c, ::testing::TempDir());
  const StageCase loaded = load_repro(path);
  const DiffOutcome replayed = replay(loaded);

  EXPECT_EQ(replayed.ok, direct.ok);
  EXPECT_EQ(replayed.leg, direct.leg);
  EXPECT_DOUBLE_EQ(replayed.max_ref_error, direct.max_ref_error);
  EXPECT_DOUBLE_EQ(replayed.error_bound, direct.error_bound);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PropertyRepro,
    ::testing::Values(StageKind::kCic, StageKind::kPolyphaseCic,
                      StageKind::kSharpenedCic, StageKind::kHbf,
                      StageKind::kScaler, StageKind::kFir, StageKind::kChain),
    [](const ::testing::TestParamInfo<StageKind>& info) {
      return std::string(stage_kind_name(info.param));
    });

}  // namespace
