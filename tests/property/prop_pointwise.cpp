// Property suite: CSD scaler and symmetric FIR equalizer.
#include "tests/property/prop_common.h"

namespace {

using dsadc::verify::StageKind;
using dsadc::verify::proptest::run_stage_class;

TEST(PropertyScaler, CsdThreeWay) {
  run_stage_class(StageKind::kScaler, UINT64_C(0x55000000));
}

TEST(PropertyFir, EqualizerThreeWay) {
  run_stage_class(StageKind::kFir, UINT64_C(0x66000000));
}

}  // namespace
