// Tests for the columnar trace store (src/obs/store): writer/reader
// round-trips, exactness under concurrent emitters, crash-safety of the
// block format (footer-less and truncated files), transaction tracking
// (parent/child links, ambient context, fx budgeting), the query engine,
// and Chrome export well-formedness.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/decimator/chain.h"
#include "src/obs/obs.h"
#include "src/obs/store/query.h"
#include "src/obs/store/reader.h"
#include "src/obs/store/store.h"
#include "src/obs/store/tracker.h"
#include "src/obs/store/writer.h"
#include "src/verify/json.h"

namespace {

namespace fs = std::filesystem;
using namespace dsadc;
using namespace dsadc::obs::store;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kCompiledOn) GTEST_SKIP() << "instrumentation compiled out";
    static std::atomic<int> seq{0};
    dir_ = (fs::temp_directory_path() /
            ("dsadc_store_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(seq.fetch_add(1))))
               .string();
    close();  // in case a previous test left a store open
  }
  void TearDown() override {
    if (!obs::kCompiledOn) return;
    close();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_;
};

Event make_event(Category c, std::uint32_t name, std::int64_t ts) {
  Event e;
  e.category = c;
  e.name = name;
  e.ts_us = ts;
  return e;
}

TEST_F(StoreTest, DisabledByDefaultAndEmitIsNoOp) {
  EXPECT_FALSE(enabled());
  emit(make_event(Category::kFlow, 0, 1));  // must not crash or open files
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(StoreTest, RoundTripAllColumns) {
  ASSERT_TRUE(open(dir_));
  EXPECT_TRUE(enabled());
  EXPECT_FALSE(open(dir_));  // second open refused while one is live

  const std::uint32_t name = intern("roundtrip.event");
  Event e = make_event(Category::kService, name, 123456);
  e.dur_us = 789;
  e.txn = 42;
  e.value = -7;
  e.aux = 99;
  e.channel = 3;
  e.stage = 2;
  emit(e);
  close();
  EXPECT_FALSE(enabled());

  StoreReader reader(dir_);
  ASSERT_TRUE(reader.ok()) << reader.error();
  ASSERT_TRUE(reader.has_category(Category::kService));
  EXPECT_FALSE(reader.recovered(Category::kService));
  EXPECT_EQ(reader.total_events(Category::kService), 1u);
  std::vector<Event> got;
  reader.visit(Category::kService, [&](const Event& ev) { got.push_back(ev); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].ts_us, 123456);
  EXPECT_EQ(got[0].dur_us, 789);
  EXPECT_EQ(got[0].txn, 42u);
  EXPECT_EQ(got[0].value, -7);
  EXPECT_EQ(got[0].aux, 99u);
  EXPECT_EQ(got[0].name, name);
  EXPECT_EQ(got[0].channel, 3u);
  EXPECT_EQ(got[0].stage, 2u);
  EXPECT_GT(got[0].tid, 0u);
  EXPECT_EQ(got[0].category, Category::kService);
  EXPECT_EQ(reader.name(name), "roundtrip.event");
}

TEST_F(StoreTest, MultiBlockAndTimeRangePruning) {
  ASSERT_TRUE(open(dir_));
  const std::uint32_t name = intern("multiblock");
  constexpr int kN = 10000;  // > 2 full blocks of 4096
  for (int i = 0; i < kN; ++i) {
    emit(make_event(Category::kStage, name, i + 1));
  }
  close();

  StoreReader reader(dir_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.total_events(Category::kStage),
            static_cast<std::uint64_t>(kN));
  const auto [lo, hi] = reader.time_range(Category::kStage);
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, kN);

  // Exact time-range filter across a block boundary.
  std::uint64_t n = 0;
  reader.visit(Category::kStage, 4000, 4500, [&](const Event& ev) {
    EXPECT_GE(ev.ts_us, 4000);
    EXPECT_LE(ev.ts_us, 4500);
    ++n;
  });
  EXPECT_EQ(n, 501u);
}

TEST_F(StoreTest, ConcurrentWritersExactCounts) {
  ASSERT_TRUE(open(dir_));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const std::uint32_t name =
          intern("writer." + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        Event e = make_event(Category::kRuntime, name, 0);  // stamp now
        e.value = i;
        e.channel = static_cast<std::uint32_t>(t);
        emit(e);
      }
    });
  }
  for (auto& t : threads) t.join();
  close();

  StoreReader reader(dir_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.total_events(Category::kRuntime),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Exact per-channel counts and per-channel value sums survived the
  // concurrent staging/hand-off path.
  std::vector<std::uint64_t> counts(kThreads, 0);
  std::vector<std::int64_t> sums(kThreads, 0);
  reader.visit(Category::kRuntime, [&](const Event& ev) {
    ASSERT_LT(ev.channel, static_cast<std::uint32_t>(kThreads));
    ++counts[ev.channel];
    sums[ev.channel] += ev.value;
  });
  constexpr std::int64_t kWant =
      std::int64_t{kPerThread} * (kPerThread - 1) / 2;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counts[t], static_cast<std::uint64_t>(kPerThread)) << t;
    EXPECT_EQ(sums[t], kWant) << t;
  }
}

TEST_F(StoreTest, ReaderRecoversFooterlessFile) {
  // A writer torn down without finalize() leaves blocks but no footer --
  // the crashed-process case.
  {
    StoreWriter writer(dir_);
    ASSERT_TRUE(writer.ok());
    std::vector<Event> batch;
    for (int i = 0; i < 5000; ++i) {
      batch.push_back(make_event(Category::kFx, 1, i + 1));
    }
    writer.append(batch);
    // 4096 flushed as a full block; 904 staged events are lost (never
    // flushed), exactly like a crash mid-staging.
  }
  StoreReader reader(dir_);
  ASSERT_TRUE(reader.ok()) << reader.error();
  EXPECT_TRUE(reader.recovered(Category::kFx));
  EXPECT_EQ(reader.total_events(Category::kFx), 4096u);
  // No strings file was ever written: names degrade, reads still work.
  EXPECT_EQ(reader.name(1), "#1");
}

TEST_F(StoreTest, ReaderToleratesTruncatedFile) {
  ASSERT_TRUE(open(dir_));
  for (int i = 0; i < 5000; ++i) {
    emit(make_event(Category::kFlow, intern("trunc"), i + 1));
  }
  emit(make_event(Category::kService, intern("survivor"), 1));
  close();
  const std::string path = dir_ + "/" + category_file_name(Category::kFlow);
  const auto size = fs::file_size(path);

  // Chop the trailer: the footer index is unusable, the recovery scan
  // still sees every block (4096 + 904).
  fs::resize_file(path, size - 16);
  {
    StoreReader reader(dir_);
    ASSERT_TRUE(reader.ok());
    EXPECT_TRUE(reader.recovered(Category::kFlow));
    EXPECT_EQ(reader.total_events(Category::kFlow), 5000u);
  }
  // Chop into the middle of the second block: only the first survives.
  fs::resize_file(path, 16 + 8 + 4096 * kEventDiskBytes + 100);
  {
    StoreReader reader(dir_);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.total_events(Category::kFlow), 4096u);
  }
  // Chop to below the header: the category is unreadable, the reader
  // still opens the rest of the store.
  fs::resize_file(path, 8);
  {
    StoreReader reader(dir_);
    ASSERT_TRUE(reader.ok());  // the service category still parses
    EXPECT_FALSE(reader.has_category(Category::kFlow));
    EXPECT_EQ(reader.total_events(Category::kService), 1u);
  }
}

TEST_F(StoreTest, TrackerParentChildAndAmbientContext) {
  ASSERT_TRUE(open(dir_));
  const std::uint32_t outer_name = intern("txn.outer");
  const std::uint32_t inner_name = intern("txn.inner");
  const std::uint32_t fx_name = intern("fx.test.site");
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    TxnScope outer(outer_name, /*channel=*/7);
    ASSERT_TRUE(outer.active());
    outer_id = outer.id();
    outer.set_value(111);
    {
      TxnScope inner(inner_name);  // channel inherited from outer
      inner_id = inner.id();
      EXPECT_NE(inner_id, outer_id);
      note_fx(fx_name, 42);
      Event plain = make_event(Category::kService, intern("plain"), 0);
      emit(plain);  // inherits txn/channel ambiently
    }
  }
  note_fx(fx_name, 1);  // outside any transaction: not recorded
  close();

  StoreReader reader(dir_);
  ASSERT_TRUE(reader.ok());

  std::vector<Event> txns;
  reader.visit(Category::kTxn, [&](const Event& e) { txns.push_back(e); });
  ASSERT_EQ(txns.size(), 2u);
  // Inner closes first, so it is written first.
  EXPECT_EQ(txns[0].txn, inner_id);
  EXPECT_EQ(txns[0].aux, outer_id);    // parent link
  EXPECT_EQ(txns[0].channel, 7u);      // inherited
  EXPECT_EQ(txns[1].txn, outer_id);
  EXPECT_EQ(txns[1].aux, 0u);
  EXPECT_EQ(txns[1].value, 111);
  EXPECT_GE(txns[1].dur_us, txns[0].dur_us);

  std::vector<Event> fx;
  reader.visit(Category::kFx, [&](const Event& e) { fx.push_back(e); });
  ASSERT_EQ(fx.size(), 1u);  // the out-of-transaction hit was dropped
  EXPECT_EQ(fx[0].txn, inner_id);
  EXPECT_EQ(fx[0].channel, 7u);
  EXPECT_EQ(fx[0].value, 42);

  std::vector<Event> service;
  reader.visit(Category::kService,
               [&](const Event& e) { service.push_back(e); });
  ASSERT_EQ(service.size(), 1u);
  EXPECT_EQ(service[0].txn, inner_id);
  EXPECT_EQ(service[0].channel, 7u);
}

TEST_F(StoreTest, FxBudgetSuppressesButTallies) {
  ASSERT_TRUE(open(dir_));
  const std::uint32_t fx_name = intern("fx.budget.site");
  {
    TxnScope txn(intern("txn.budget"), 1);
    for (int i = 0; i < 100; ++i) note_fx(fx_name, i);
  }
  close();

  StoreReader reader(dir_);
  ASSERT_TRUE(reader.ok());
  std::uint64_t raw = 0;
  std::int64_t suppressed = -1;
  reader.visit(Category::kFx, [&](const Event& e) {
    if (reader.name(e.name) == "fx.suppressed") {
      suppressed = e.value;
    } else {
      ++raw;
    }
  });
  EXPECT_EQ(raw, kFxEventBudget);
  EXPECT_EQ(suppressed, 100 - static_cast<std::int64_t>(kFxEventBudget));
}

TEST_F(StoreTest, ChainEmitsStageEventsUnderTransaction) {
  ASSERT_TRUE(open(dir_));
  decim::DecimationChain chain(decim::paper_chain_config());
  const std::vector<std::int32_t> codes(512, 1);
  std::uint64_t txn_id = 0;
  {
    TxnScope txn(intern("session.data"), /*channel=*/5);
    txn_id = txn.id();
    chain.process(codes);
  }
  close();

  StoreReader reader(dir_);
  ASSERT_TRUE(reader.ok());
  std::vector<Event> stages;
  reader.visit(Category::kStage, [&](const Event& e) { stages.push_back(e); });
  // input + 3 CIC + halfband + scaler + equalizer = 7 boundaries.
  ASSERT_EQ(stages.size(), 7u);
  for (std::size_t i = 0; i < stages.size(); ++i) {
    EXPECT_EQ(stages[i].stage, static_cast<std::uint32_t>(i));
    EXPECT_EQ(stages[i].txn, txn_id);
    EXPECT_EQ(stages[i].channel, 5u);
  }
  EXPECT_EQ(reader.name(stages[0].name), "stage.input");
  EXPECT_EQ(reader.name(stages[4].name), "stage.halfband");
  EXPECT_EQ(stages[0].aux, codes.size());  // aux carries the sample count
  EXPECT_EQ(stages[6].aux, codes.size() / 16);
}

TEST_F(StoreTest, QueryPredicatesAndAggregation) {
  ASSERT_TRUE(open(dir_));
  const std::uint32_t fast = intern("op.fast");
  const std::uint32_t slow = intern("op.slow");
  for (int i = 0; i < 100; ++i) {
    Event e = make_event(Category::kTxn, i % 2 == 0 ? fast : slow, i + 1);
    e.dur_us = i % 2 == 0 ? 10 : 1000;
    e.channel = static_cast<std::uint32_t>(i % 4);
    e.stage = 1;
    emit(e);
  }
  close();

  StoreReader reader(dir_);
  ASSERT_TRUE(reader.ok());

  Query q;
  q.categories = {Category::kTxn};
  q.has_channel = true;
  q.channel = 2;
  EXPECT_EQ(run_query(reader, q, nullptr), 25u);

  q.name_substr = "op.fast";
  EXPECT_EQ(run_query(reader, q, nullptr), 25u);  // channel 2 is all-even
  q.name_substr = "op.slow";
  EXPECT_EQ(run_query(reader, q, nullptr), 0u);

  // Time range + limit.
  Query tr;
  tr.ts_min = 11;
  tr.ts_max = 20;
  std::vector<Event> out;
  EXPECT_EQ(run_query(reader, tr, &out, 3), 3u);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(run_query(reader, tr, nullptr), 10u);

  // p50/p99 over the bimodal duration split, grouped by name.
  Query all;
  const auto rows = aggregate(reader, all, AggField::kDur, GroupKey::kName);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) {
    EXPECT_EQ(r.count, 50u);
    if (r.key == "op.fast") {
      EXPECT_DOUBLE_EQ(r.p50, 10.0);
      EXPECT_DOUBLE_EQ(r.p99, 10.0);
      EXPECT_DOUBLE_EQ(r.sum, 500.0);
    } else {
      EXPECT_EQ(r.key, "op.slow");
      EXPECT_DOUBLE_EQ(r.p50, 1000.0);
      EXPECT_DOUBLE_EQ(r.max, 1000.0);
    }
  }
  // min-dur filter isolates the slow mode.
  Query slow_q;
  slow_q.min_dur_us = 500;
  EXPECT_EQ(run_query(reader, slow_q, nullptr), 50u);
}

TEST_F(StoreTest, ChromeExportParsesAndCounts) {
  ASSERT_TRUE(open(dir_));
  for (int i = 0; i < 10; ++i) {
    Event e = make_event(Category::kTxn, intern("chrome \"quoted\""), i + 1);
    e.dur_us = i;  // i == 0 exercises the instant-event path
    e.channel = 1;
    emit(e);
  }
  close();

  StoreReader reader(dir_);
  ASSERT_TRUE(reader.ok());
  const std::string path = dir_ + "/chrome.json";
  Query q;
  ASSERT_TRUE(export_chrome(reader, q, path));

  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  const verify::Json j = verify::json_parse(ss.str());
  EXPECT_EQ(j.at("traceEvents").size(), 10u);
  EXPECT_EQ(j.at("traceEvents").at(3).at("name").as_string(),
            "chrome \"quoted\"");
}

TEST_F(StoreTest, ReopenStartsAFreshStore) {
  ASSERT_TRUE(open(dir_));
  emit(make_event(Category::kFlow, intern("first"), 1));
  close();
  const std::string dir2 = dir_ + "_second";
  ASSERT_TRUE(open(dir2));
  emit(make_event(Category::kFlow, intern("second"), 2));
  close();

  StoreReader r1(dir_);
  StoreReader r2(dir2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.total_events(Category::kFlow), 1u);
  EXPECT_EQ(r2.total_events(Category::kFlow), 1u);
  // Interned ids are process-wide: the second store's string table still
  // resolves names interned before it opened.
  EXPECT_EQ(r2.name(intern("first")), "first");
  std::error_code ec;
  fs::remove_all(dir2, ec);
}

}  // namespace
