// Frequency-response helpers: closed-form checks and cascade identities.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/dsp/freqz.h"

namespace {

using namespace dsadc::dsp;

TEST(FirResponse, MovingAverageClosedForm) {
  // 4-tap boxcar: |H(f)| = |sin(4 pi f) / (4 sin(pi f))| * 4 (unnormalized).
  const std::vector<double> h{1.0, 1.0, 1.0, 1.0};
  for (double f = 0.01; f < 0.5; f += 0.03) {
    const double expect =
        std::abs(std::sin(4.0 * std::numbers::pi * f) /
                 std::sin(std::numbers::pi * f));
    EXPECT_NEAR(std::abs(fir_response_at(h, f)), expect, 1e-10);
  }
  EXPECT_NEAR(std::abs(fir_response_at(h, 0.0)), 4.0, 1e-12);
}

TEST(FirResponse, LinearPhaseOfSymmetricFilter) {
  const std::vector<double> h{0.25, 0.5, 0.25};
  // Zero-phase part is real after removing the group delay e^{-j2pi f}.
  for (double f = 0.0; f <= 0.5; f += 0.05) {
    const auto resp = fir_response_at(h, f);
    const double w = 2.0 * std::numbers::pi * f;
    const std::complex<double> rot(std::cos(w), std::sin(w));
    EXPECT_NEAR((resp * rot).imag(), 0.0, 1e-12);
  }
}

TEST(RationalResponse, OnePoleMagnitude) {
  const std::vector<double> b{1.0};
  const std::vector<double> a{1.0, -0.9};
  const double m0 = std::abs(rational_response_at(b, a, 0.0));
  EXPECT_NEAR(m0, 10.0, 1e-9);  // 1/(1-0.9)
  const double mhalf = std::abs(rational_response_at(b, a, 0.5));
  EXPECT_NEAR(mhalf, 1.0 / 1.9, 1e-9);
}

TEST(Convolve, MatchesPolynomialProduct) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{-1.0, 1.0};
  const auto c = convolve(a, b);
  const std::vector<double> expect{-1.0, -1.0, -1.0, 3.0};
  ASSERT_EQ(c.size(), expect.size());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], expect[i], 1e-14);
}

TEST(Convolve, CascadeResponseMultiplies) {
  const std::vector<double> a{0.5, 0.5};
  const std::vector<double> b{0.25, 0.5, 0.25};
  const auto c = convolve(a, b);
  for (double f = 0.0; f <= 0.5; f += 0.07) {
    const auto ra = fir_response_at(a, f);
    const auto rb = fir_response_at(b, f);
    const auto rc = fir_response_at(c, f);
    EXPECT_NEAR(std::abs(rc - ra * rb), 0.0, 1e-12);
  }
}

TEST(UpsampleTaps, FrequencyScalingIdentity) {
  // h(z^M) response at f equals h response at M f.
  const std::vector<double> h{0.2, 0.6, 0.2};
  const auto up = upsample_taps(h, 4);
  ASSERT_EQ(up.size(), 9u);
  for (double f = 0.0; f <= 0.124; f += 0.01) {
    EXPECT_NEAR(std::abs(fir_response_at(up, f)),
                std::abs(fir_response_at(h, 4.0 * f)), 1e-12);
  }
}

TEST(UpsampleTaps, EdgeCases) {
  EXPECT_THROW(upsample_taps(std::vector<double>{1.0}, 0), std::invalid_argument);
  const auto same = upsample_taps(std::vector<double>{1.0, 2.0}, 1);
  EXPECT_EQ(same.size(), 2u);
}

TEST(RippleAndAttenuation, FlatFilterIsZeroRipple) {
  const std::vector<double> h{1.0};
  EXPECT_NEAR(passband_ripple_db(h, 0.0, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(min_attenuation_db(h, 0.25, 0.5), 0.0, 1e-12);
}

TEST(RippleAndAttenuation, AveragerNumbers) {
  const std::vector<double> h{0.5, 0.5};  // |H| = cos(pi f)
  // At f = 1/3, attenuation relative to DC = -20 log10(cos(pi/3)) = 6.02.
  const double att = min_attenuation_db(h, 1.0 / 3.0, 1.0 / 3.0 + 1e-6, 8);
  EXPECT_NEAR(att, 6.02, 0.02);
}

TEST(IsSymmetric, DetectsBothCases) {
  EXPECT_TRUE(is_symmetric(std::vector<double>{1.0, 2.0, 1.0}));
  EXPECT_TRUE(is_symmetric(std::vector<double>{1.0, 2.0, 2.0, 1.0}));
  EXPECT_FALSE(is_symmetric(std::vector<double>{1.0, 2.0, 1.5}));
  EXPECT_TRUE(is_symmetric(std::vector<double>{}));
}

}  // namespace
