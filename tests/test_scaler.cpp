// Scaling stage (CSD Horner shift-add): exactness against the encoded
// constant, formats, and the MSA-derived scale helper.
#include <gtest/gtest.h>

#include <cmath>

#include "src/decimator/scaler.h"

namespace {

using namespace dsadc;
using decim::ScalingStage;
using decim::scale_for_msa;

TEST(Scaler, MatchesCsdConstantExactly) {
  const fx::Format in{16, 12}, out{20, 15};  // +-16 range fits 8 * 1.2345
  const ScalingStage s(1.2345, in, out, 12, 8);
  const double k = s.effective_scale();
  for (std::int64_t x : {-20000, -1234, -1, 0, 1, 999, 20000}) {
    const std::int64_t y = s.push(x);
    const double expect = fx::to_double(x, in) * k;
    EXPECT_NEAR(fx::to_double(y, out), expect, out.lsb() * 0.75) << x;
  }
}

TEST(Scaler, CsdDigitBudgetControlsAccuracy) {
  const fx::Format f{16, 12};
  const ScalingStage coarse(1.0825, f, f, 12, 2);
  const ScalingStage fine(1.0825, f, f, 12, 8);
  EXPECT_LE(std::abs(fine.effective_scale() - 1.0825),
            std::abs(coarse.effective_scale() - 1.0825) + 1e-12);
  EXPECT_LE(coarse.csd().nonzero_count(), 2u);
}

TEST(Scaler, AdderCountIsDigitsMinusOne) {
  const fx::Format f{16, 12};
  const ScalingStage s(1.0825, f, f, 12, 6);
  EXPECT_EQ(s.adder_count(), s.csd().nonzero_count() - 1);
}

TEST(Scaler, SaturatesOutput) {
  const fx::Format in{16, 12}, out{14, 13};
  const ScalingStage s(4.0, in, out, 12, 4);
  const std::int64_t y = s.push(in.raw_max());
  EXPECT_EQ(y, out.raw_max());
  EXPECT_EQ(s.push(in.raw_min()), out.raw_min());
}

TEST(Scaler, ProcessMatchesPush) {
  const fx::Format f{16, 12};
  const ScalingStage s(0.7, f, f, 12, 6);
  const std::vector<std::int64_t> in{1, -5, 100, -3000};
  const auto out = s.process(in);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], s.push(in[i]));
}

TEST(Scaler, RejectsNonPositiveScale) {
  const fx::Format f{16, 12};
  EXPECT_THROW(ScalingStage(0.0, f, f), std::invalid_argument);
  EXPECT_THROW(ScalingStage(-1.0, f, f), std::invalid_argument);
}

TEST(ScaleForMsa, PaperBallpark) {
  // 1/0.81 with a little headroom: ~1.21.
  EXPECT_NEAR(scale_for_msa(0.81), 0.98 / 0.81, 1e-12);
  EXPECT_THROW(scale_for_msa(0.0), std::invalid_argument);
  EXPECT_THROW(scale_for_msa(1.5), std::invalid_argument);
}

TEST(Scaler, HornerNetworkHandlesNegativeDigits) {
  // 0.875 = 1 - 0.125: one negative digit; exact.
  const fx::Format f{16, 8};
  const ScalingStage s(0.875, f, f, 8, 4);
  EXPECT_NEAR(s.effective_scale(), 0.875, 1e-12);
  EXPECT_EQ(s.push(256), 224);  // 1.0 -> 0.875
}

}  // namespace
