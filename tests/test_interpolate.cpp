// Interpolation duals: exactness against zero-stuff + convolution, image
// rejection, and decimate(interpolate(x)) round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "src/decimator/cic.h"
#include "src/decimator/fir.h"
#include "src/decimator/interpolate.h"
#include "src/dsp/spectrum.h"
#include "src/filterdesign/halfband.h"

namespace {

using namespace dsadc;
using decim::CicInterpolator;
using decim::FixedTaps;
using decim::HalfbandInterpolator;

std::vector<std::int64_t> random_samples(std::size_t n, int bits, unsigned s) {
  std::mt19937 rng(s);
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-hi, hi);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

class CicInterp : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CicInterp, MatchesZeroStuffConvolution) {
  const auto [order, factor] = GetParam();
  const design::CicSpec spec{order, factor, 6};
  CicInterpolator interp(spec);
  const auto in = random_samples(256, 6, 3);
  const auto out = interp.process(in);
  ASSERT_EQ(out.size(), in.size() * static_cast<std::size_t>(factor));

  // Reference: zero-stuff then convolve with the boxcar^K taps.
  std::vector<double> h{1.0};
  const std::vector<double> box(static_cast<std::size_t>(factor), 1.0);
  for (int k = 0; k < order; ++k) {
    std::vector<double> next(h.size() + box.size() - 1, 0.0);
    for (std::size_t i = 0; i < h.size(); ++i) {
      for (std::size_t j = 0; j < box.size(); ++j) next[i + j] += h[i];
    }
    h = std::move(next);
  }
  for (std::size_t n = 0; n < out.size(); ++n) {
    double acc = 0.0;
    for (std::size_t k = 0; k < h.size() && k <= n; ++k) {
      if ((n - k) % static_cast<std::size_t>(factor) != 0) continue;
      acc += h[k] * static_cast<double>(in[(n - k) / factor]);
    }
    ASSERT_EQ(out[n], static_cast<std::int64_t>(acc)) << "sample " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CicInterp,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(3, 2),
                      std::make_tuple(4, 2), std::make_tuple(2, 4)));

TEST(CicInterp, DcGainIsMtoKm1) {
  CicInterpolator interp(design::CicSpec{4, 2, 6});
  EXPECT_EQ(interp.dc_gain(), 8);
  std::vector<std::int64_t> in(256, 5);
  const auto out = interp.process(in);
  EXPECT_EQ(out.back(), 5 * 8);
}

TEST(CicInterp, TransposeOfDecimatorResponse) {
  // interp then decim through matched Sinc stages recovers a (delayed,
  // scaled) copy of a smooth input.
  const design::CicSpec spec{4, 2, 8};
  CicInterpolator up(spec);
  // The decimator sees the interpolator's 2^(K-1)-amplified signal, so its
  // input width must grow by K-1 bits for the Hogenauer sizing to hold.
  decim::CicDecimator down(design::CicSpec{4, 2, 11});
  std::vector<std::int64_t> in(512);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::int64_t>(
        100.0 * std::sin(2.0 * std::numbers::pi * 0.01 * static_cast<double>(i)));
  }
  const auto mid = up.process(in);
  const auto out = down.process(mid);
  // Total gain: 2^(K-1) * 2^K = 2^(2K-1) = 128; the composite delay is a
  // few samples (possibly half-sample offset from the decimation phase),
  // so search the alignment and require a small average error.
  double best = 1e18;
  for (std::size_t lag = 0; lag <= 8; ++lag) {
    double err = 0.0;
    std::size_t cnt = 0;
    for (std::size_t i = 64; i < out.size() && i < in.size() - lag; ++i) {
      err += std::abs(static_cast<double>(out[i]) -
                      128.0 * static_cast<double>(in[i - lag]));
      ++cnt;
    }
    best = std::min(best, err / static_cast<double>(cnt) / 128.0);
  }
  EXPECT_LT(best, 4.0);  // droop + half-sample offset on a 100-LSB tone
}

class HbfInterp : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    taps_ = new FixedTaps(FixedTaps::from_real(
        design::design_halfband(12, 0.21).taps, 16));
  }
  static void TearDownTestSuite() { delete taps_; }
  static FixedTaps* taps_;
};

FixedTaps* HbfInterp::taps_ = nullptr;

TEST_F(HbfInterp, RejectsNonHalfband) {
  FixedTaps bad = *taps_;
  bad.taps[1] = 1234;  // even offset from the center (index 23)
  EXPECT_THROW(HalfbandInterpolator(bad, fx::Format{14, 0}, fx::Format{14, 0}),
               std::invalid_argument);
  EXPECT_THROW(HalfbandInterpolator(FixedTaps{{1, 2}, 2}, fx::Format{14, 0},
                                    fx::Format{14, 0}),
               std::invalid_argument);
}

TEST_F(HbfInterp, ToneKeepsAmplitudeAndImageIsSuppressed) {
  const fx::Format fmt{14, 0};
  HalfbandInterpolator interp(*taps_, fmt, fmt);
  const std::size_t n = 1 << 13;
  std::vector<std::int64_t> in(n);
  const double f = 0.05;
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<std::int64_t>(
        4000.0 * std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i)));
  }
  const auto out = interp.process(in);
  ASSERT_EQ(out.size(), 2 * n);
  std::vector<double> outd(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    outd[i] = static_cast<double>(out[i]);
  }
  const auto p = dsp::periodogram(outd, 1.0);
  // Tone lands at f/2 in the interpolated domain; the image at 0.5 - f/2.
  const double tone = dsp::band_power(p, f / 2.0 - 0.004, f / 2.0 + 0.004);
  const double image =
      dsp::band_power(p, 0.5 - f / 2.0 - 0.004, 0.5 - f / 2.0 + 0.004);
  EXPECT_GT(10.0 * std::log10(tone / image), 60.0);
  // Amplitude preserved (gain-2 interpolator normalization).
  EXPECT_NEAR(std::sqrt(2.0 * tone), 4000.0, 150.0);
}

TEST_F(HbfInterp, RoundTripWithDecimatorIsDelay) {
  const fx::Format fmt{16, 0};
  HalfbandInterpolator up(*taps_, fmt, fmt);
  decim::PolyphaseHalfbandDecimator down(*taps_, fmt, fmt);
  std::vector<std::int64_t> in(2048);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::int64_t>(
        5000.0 * std::sin(2.0 * std::numbers::pi * 0.03 * static_cast<double>(i)));
  }
  const auto mid = up.process(in);
  const auto out = down.process(mid);
  // Find the (integer) delay that aligns the round trip with the input.
  double best = 1e18;
  for (std::size_t lag = 0; lag < 64; ++lag) {
    double err = 0.0;
    std::size_t cnt = 0;
    for (std::size_t i = 128; i + lag < out.size() && i < in.size(); ++i) {
      err += std::abs(static_cast<double>(out[i + 0] ) - static_cast<double>(in[i >= lag ? i - lag : 0]));
      ++cnt;
      if (cnt > 512) break;
    }
    best = std::min(best, err / static_cast<double>(cnt));
  }
  EXPECT_LT(best / 5000.0, 0.02);  // within 2% of full scale on average
}

TEST_F(HbfInterp, ResetDeterminism) {
  const fx::Format fmt{14, 0};
  HalfbandInterpolator interp(*taps_, fmt, fmt);
  const auto in = random_samples(512, 12, 7);
  const auto a = interp.process(in);
  interp.reset();
  const auto b = interp.process(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

class TxChain : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new decim::ChainConfig(decim::paper_chain_config());
  }
  static void TearDownTestSuite() { delete cfg_; }
  static decim::ChainConfig* cfg_;
};

decim::ChainConfig* TxChain::cfg_ = nullptr;

TEST_F(TxChain, RateAndToneThroughTransmitPath) {
  decim::InterpolationChain tx(*cfg_);
  EXPECT_EQ(tx.total_interpolation(), 16u);
  // A 5 MHz baseband tone at 40 MS/s, interpolated to 640 MS/s.
  const std::size_t n = 1 << 12;
  std::vector<std::int64_t> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<std::int64_t>(
        0.8 * 8192.0 *
        std::sin(2.0 * std::numbers::pi * 5.0 / 40.0 * static_cast<double>(i)));
  }
  const auto out = tx.process(in);
  ASSERT_EQ(out.size(), 16 * n);
  std::vector<double> outd;
  for (std::size_t i = 2048; i < out.size(); ++i) {
    outd.push_back(static_cast<double>(out[i]));
  }
  outd.resize(outd.size() / 2 * 2);
  const auto p = dsp::periodogram(outd, 640e6);
  const double tone = dsp::band_power(p, 4.5e6, 5.5e6);
  // Strongest images: around 40 MHz (halfband stopband) and 80 MHz
  // (first Sinc notch region).
  const double img40 = dsp::band_power(p, 34e6, 36e6);
  const double img75 = dsp::band_power(p, 74e6, 76e6);
  EXPECT_GT(10.0 * std::log10(tone / img40), 50.0);
  EXPECT_GT(10.0 * std::log10(tone / img75), 35.0);
}

TEST_F(TxChain, DcPreservedThroughNormalization) {
  decim::InterpolationChain tx(*cfg_);
  std::vector<std::int64_t> in(512, 4000);
  const auto out = tx.process(in);
  // CIC interpolator gains are normalized back out; DC survives at the
  // input scale (within the shift-rounding).
  EXPECT_NEAR(static_cast<double>(out.back()), 4000.0, 8.0);
}

TEST_F(TxChain, ResetDeterminism) {
  decim::InterpolationChain tx(*cfg_);
  std::vector<std::int64_t> in(256);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::int64_t>((i * 131) % 4096) - 2048;
  }
  const auto a = tx.process(in);
  tx.reset();
  const auto b = tx.process(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
