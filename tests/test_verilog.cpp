// Verilog emission: structural checks on the generated sources (ports,
// clock domains, sequential blocks, saturation logic) and the testbench.
#include <gtest/gtest.h>

#include <string>

#include "src/decimator/chain.h"
#include "src/rtl/builders.h"
#include "src/rtl/verilog.h"

namespace {

using namespace dsadc;

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

std::size_t count_occurrences(const std::string& hay, const std::string& n) {
  std::size_t count = 0, pos = 0;
  while ((pos = hay.find(n, pos)) != std::string::npos) {
    ++count;
    pos += n.size();
  }
  return count;
}

TEST(Verilog, CicModuleStructure) {
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 4});
  const std::string v = rtl::emit_verilog(stage.module);
  EXPECT_TRUE(contains(v, "module sinc4_decim2"));
  EXPECT_TRUE(contains(v, "input  wire clk_div1"));
  EXPECT_TRUE(contains(v, "input  wire clk_div2"));
  EXPECT_TRUE(contains(v, "input  wire signed [3:0] in"));
  EXPECT_TRUE(contains(v, "output wire signed [7:0] out"));
  EXPECT_TRUE(contains(v, "endmodule"));
  // 4 integrators (clk_div1) + pipeline + 4 comb registers (clk_div2).
  EXPECT_EQ(count_occurrences(v, "always @(posedge clk_div1)"), 4u);
  EXPECT_EQ(count_occurrences(v, "always @(posedge clk_div2)"), 5u);
}

TEST(Verilog, ScalerHasShiftAddsOnly) {
  const fx::Csd csd = fx::csd_encode_limited(1.0825, 12, 4);
  const auto stage =
      rtl::build_scaler(csd, 12, fx::Format{16, 12}, fx::Format{16, 12}, 1);
  const std::string v = rtl::emit_verilog(stage.module);
  EXPECT_TRUE(contains(v, "<<<"));
  EXPECT_FALSE(contains(v, "*"));  // no multipliers anywhere
}

TEST(Verilog, RequantEmitsSaturation) {
  const auto stage =
      rtl::build_scaler(fx::csd_encode(0.5, 4), 4, fx::Format{16, 12},
                        fx::Format{8, 4}, 1);
  const std::string v = rtl::emit_verilog(stage.module);
  EXPECT_TRUE(contains(v, "? 127"));   // positive clamp of the 8-bit output
  EXPECT_TRUE(contains(v, "-128"));    // negative clamp
  EXPECT_TRUE(contains(v, ">>>"));     // rounding shift
}

TEST(Verilog, FullChainEmitsAllClockDomains) {
  const auto cfg = decim::paper_chain_config();
  const auto built = rtl::build_chain(cfg);
  const std::string v = rtl::emit_verilog(built.full);
  for (const char* clk : {"clk_div1", "clk_div2", "clk_div4", "clk_div8",
                          "clk_div16"}) {
    EXPECT_TRUE(contains(v, clk)) << clk;
  }
  EXPECT_TRUE(contains(v, "module decimation_chain"));
  EXPECT_TRUE(contains(v, "signed [3:0] codes"));
  EXPECT_TRUE(contains(v, "signed [13:0] data_out"));
}

TEST(Verilog, StageSourcesAreSelfContained) {
  const auto cfg = decim::paper_chain_config();
  const auto built = rtl::build_chain(cfg);
  for (std::size_t i = 0; i < built.stages.size(); ++i) {
    const std::string v = rtl::emit_verilog(built.stages[i].module);
    EXPECT_TRUE(contains(v, "module "));
    EXPECT_TRUE(contains(v, "endmodule"));
    EXPECT_TRUE(contains(v, "input  wire"));
    EXPECT_TRUE(contains(v, "output wire"));
  }
}

TEST(Verilog, TestbenchDrivesClocksAndFiles) {
  const auto stage = rtl::build_cic(design::CicSpec{4, 2, 4});
  const std::string tb = rtl::emit_testbench(stage.module);
  EXPECT_TRUE(contains(tb, "module sinc4_decim2_tb"));
  EXPECT_TRUE(contains(tb, "$fopen(\"stimulus.txt\""));
  EXPECT_TRUE(contains(tb, "$fscanf"));
  EXPECT_TRUE(contains(tb, "$fwrite"));
  EXPECT_TRUE(contains(tb, "always #0.78125 clk_div1"));
  EXPECT_TRUE(contains(tb, "$finish"));
}

TEST(Verilog, MuxEmitsConditionalAssign) {
  rtl::Module m("muxmod");
  const auto sel = m.input("sel", 1);
  const auto a = m.input("a", 8);
  const auto b = m.input("b", 8);
  m.output("y", m.mux(sel, a, b, 8));
  const std::string v = rtl::emit_verilog(m);
  EXPECT_TRUE(contains(v, "!= 0) ?"));
  EXPECT_EQ(count_occurrences(v, "?"), 1u);
}

TEST(Verilog, HalfbandUsesNoTrueMultiplier) {
  // "124 adders (no true multiplications)" - Section V.
  const auto d = design::design_saramaki_hbf(3, 6, 0.2125, 24, 0);
  const auto stage = rtl::build_saramaki_hbf(d, fx::Format{18, 14},
                                             fx::Format{18, 14}, 24, 6, 8);
  const std::string v = rtl::emit_verilog(stage.module);
  EXPECT_FALSE(contains(v, " * "));
  EXPECT_TRUE(contains(v, "<<<"));
}

}  // namespace
