// Coefficient word-length selection (the "24-bit coefficients" choice of
// Section V, automated).
#include <gtest/gtest.h>

#include "src/dsp/freqz.h"
#include "src/filterdesign/remez.h"
#include "src/fixedpoint/quantize.h"

namespace {

using namespace dsadc;

TEST(QuantizeTaps, RoundsToGrid) {
  const std::vector<double> taps{0.1234567, -0.7654321};
  const auto q = fx::quantize_taps(taps, 10);
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_NEAR(q[i], taps[i], std::ldexp(0.5, -10) + 1e-15);
    EXPECT_EQ(q[i] * 1024.0, std::nearbyint(q[i] * 1024.0));
  }
}

class WordLength : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    taps_ = new std::vector<double>(
        design::remez_lowpass(63, 0.10, 0.16, 1.0, 30.0).taps);
  }
  static void TearDownTestSuite() {
    delete taps_;
    taps_ = nullptr;
  }
  static std::vector<double>* taps_;
};

std::vector<double>* WordLength::taps_ = nullptr;

TEST_F(WordLength, FindsSmallestMeetingSpec) {
  const double full = dsp::min_attenuation_db(*taps_, 0.16, 0.5);
  ASSERT_GT(full, 60.0);
  const auto r = fx::min_coefficient_bits(*taps_, 0.16, 60.0, 6, 24);
  EXPECT_TRUE(r.met);
  EXPECT_GE(r.achieved_atten_db, 60.0);
  // One bit less must fail the target (minimality).
  if (r.frac_bits > 6) {
    const auto q = fx::quantize_taps(*taps_, r.frac_bits - 1);
    EXPECT_LT(dsp::min_attenuation_db(q, 0.16, 0.5), 60.0);
  }
}

TEST_F(WordLength, UnreachableTargetReported) {
  const auto r = fx::min_coefficient_bits(*taps_, 0.16, 200.0, 6, 20);
  EXPECT_FALSE(r.met);
  EXPECT_EQ(r.frac_bits, 20);
}

TEST_F(WordLength, MoreBitsNeverWorse) {
  double prev = -1e9;
  for (int bits = 8; bits <= 20; bits += 4) {
    const auto q = fx::quantize_taps(*taps_, bits);
    const double att = dsp::min_attenuation_db(q, 0.16, 0.5);
    EXPECT_GE(att, prev - 3.0);  // allow small non-monotonic wiggle
    prev = att;
  }
}

}  // namespace
