// Dense solver and least squares.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/dsp/linalg.h"

namespace {

using dsadc::dsp::Matrix;
using dsadc::dsp::solve_least_squares;
using dsadc::dsp::solve_linear;

TEST(SolveLinear, TwoByTwo) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0; a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 3.0;
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0; a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 0.0;
  const auto x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0; a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0; a.at(1, 1) = 4.0;
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), std::runtime_error);
}

TEST(SolveLinear, DimensionMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), std::invalid_argument);
}

class RandomSystems : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomSystems, ResidualIsTiny) {
  const std::size_t n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = dist(rng);
    a.at(i, i) += 2.0;  // diagonal dominance for conditioning
    b[i] = dist(rng);
  }
  const auto x = solve_linear(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += a.at(i, j) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSystems, ::testing::Values(1, 3, 8, 20, 40));

TEST(LeastSquares, ExactForConsistentSystem) {
  Matrix a(3, 2);
  a.at(0, 0) = 1.0; a.at(0, 1) = 0.0;
  a.at(1, 0) = 0.0; a.at(1, 1) = 1.0;
  a.at(2, 0) = 1.0; a.at(2, 1) = 1.0;
  // b generated from x = (2, -1).
  const auto x = solve_least_squares(a, {2.0, -1.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], -1.0, 1e-10);
}

TEST(LeastSquares, MinimizesResidualOfOverdetermined) {
  // Fit a line y = c0 + c1 t to noisy points; check against the normal
  // equation solution computed by hand.
  const std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.1, 2.9, 5.2, 6.8};
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a.at(i, 0) = 1.0;
    a.at(i, 1) = t[i];
  }
  const auto x = solve_least_squares(a, y);
  // Closed form for simple linear regression.
  const double tbar = 1.5, ybar = 4.0;
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    sxy += (t[i] - tbar) * (y[i] - ybar);
    sxx += (t[i] - tbar) * (t[i] - tbar);
  }
  EXPECT_NEAR(x[1], sxy / sxx, 1e-10);
  EXPECT_NEAR(x[0], ybar - x[1] * tbar, 1e-10);
}

TEST(LeastSquares, TikhonovShrinksSolution) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0; a.at(1, 1) = 1.0;
  const auto x0 = solve_least_squares(a, {1.0, 1.0}, 0.0);
  const auto x1 = solve_least_squares(a, {1.0, 1.0}, 1.0);
  EXPECT_GT(std::abs(x0[0]), std::abs(x1[0]));
}

}  // namespace
