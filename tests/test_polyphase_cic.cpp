// Non-recursive polyphase Sinc^K: bit-identical stream to the Hogenauer
// implementation, plus the hardware-cost accounting the ablation uses.
#include <gtest/gtest.h>

#include <random>

#include "src/decimator/cic.h"
#include "src/decimator/polyphase_cic.h"

namespace {

using namespace dsadc;
using decim::CicDecimator;
using decim::PolyphaseCicDecimator;
using decim::binomial_taps;

std::vector<std::int64_t> random_codes(std::size_t n, int bits, unsigned s) {
  std::mt19937 rng(s);
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-hi, hi);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(BinomialTaps, PascalRows) {
  EXPECT_EQ(binomial_taps(0), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(binomial_taps(1), (std::vector<std::int64_t>{1, 1}));
  EXPECT_EQ(binomial_taps(4), (std::vector<std::int64_t>{1, 4, 6, 4, 1}));
  EXPECT_EQ(binomial_taps(6),
            (std::vector<std::int64_t>{1, 6, 15, 20, 15, 6, 1}));
}

class PolyphaseVsHogenauer
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PolyphaseVsHogenauer, BitIdenticalStreams) {
  const auto [order, bits] = GetParam();
  const design::CicSpec spec{order, 2, bits};
  CicDecimator hog(spec);
  PolyphaseCicDecimator poly(spec);
  const auto in = random_codes(2048, bits, static_cast<unsigned>(order));
  const auto a = hog.process(in);
  const auto b = poly.process(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "output " << i << " (K=" << order << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PolyphaseVsHogenauer,
    ::testing::Values(std::make_tuple(1, 4), std::make_tuple(4, 4),
                      std::make_tuple(4, 8), std::make_tuple(6, 12),
                      std::make_tuple(8, 6)));

TEST(PolyphaseCic, RunsAtOutputRateWithFewRegisters) {
  const design::CicSpec spec{4, 2, 4};
  PolyphaseCicDecimator poly(spec);
  // K+1 = 5 taps: two 3-entry branch lines.
  EXPECT_EQ(poly.register_count(), 6u);
  EXPECT_GT(poly.adder_count(), 0u);
}

TEST(PolyphaseCic, CostComparisonSinc6) {
  // Hogenauer: 2K adders (K at the fast rate); polyphase: more adders but
  // all at the slow rate. Both counts are exposed for the ablation.
  const design::CicSpec spec{6, 2, 12};
  PolyphaseCicDecimator poly(spec);
  EXPECT_GE(poly.adder_count(), 6u);
  EXPECT_LE(poly.adder_count(), 30u);
}

TEST(PolyphaseCic, RejectsNonHalfRate) {
  EXPECT_THROW(PolyphaseCicDecimator(design::CicSpec{4, 4, 4}),
               std::invalid_argument);
}

TEST(PolyphaseCic, ResetDeterminism) {
  PolyphaseCicDecimator poly(design::CicSpec{4, 2, 8});
  const auto in = random_codes(512, 8, 9);
  const auto a = poly.process(in);
  poly.reset();
  const auto b = poly.process(in);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(PolyphaseCic, StreamingSplitInvariance) {
  // Processing in chunks must equal one-shot processing (stateful push).
  PolyphaseCicDecimator a(design::CicSpec{6, 2, 12});
  PolyphaseCicDecimator b(design::CicSpec{6, 2, 12});
  const auto in = random_codes(1000, 12, 13);
  const auto ref = a.process(in);
  std::vector<std::int64_t> got;
  std::size_t pos = 0;
  for (std::size_t chunk : {7, 130, 1, 500, 362}) {
    const auto part = b.process(
        std::span<const std::int64_t>(in.data() + pos, chunk));
    got.insert(got.end(), part.begin(), part.end());
    pos += chunk;
  }
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(got[i], ref[i]);
}

}  // namespace
