// Analytical noise budget vs measured chain SNR.
#include <gtest/gtest.h>

#include "src/core/flow.h"
#include "src/core/noise_budget.h"

namespace {

using namespace dsadc;

class NoiseBudgetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new core::FlowResult(core::DesignFlow::design(
        mod::paper_modulator_spec(), mod::paper_decimator_spec()));
    const double amp =
        result_->msa * 7.0 * result_->chain.scale;  // tone in FS units
    budget_ = new core::NoiseBudget(core::compute_noise_budget(
        result_->chain, result_->modulator_spec, result_->predicted_sqnr_db,
        amp));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete budget_;
  }
  static core::FlowResult* result_;
  static core::NoiseBudget* budget_;
};

core::FlowResult* NoiseBudgetTest::result_ = nullptr;
core::NoiseBudget* NoiseBudgetTest::budget_ = nullptr;

TEST_F(NoiseBudgetTest, RelabelIsLossless) {
  // The paper chain keeps all 14 CIC gain bits, so the first rounding
  // point must report zero.
  ASSERT_FALSE(budget_->contributions.empty());
  EXPECT_NE(budget_->contributions[0].where.find("lossless"),
            std::string::npos);
  EXPECT_EQ(budget_->contributions[0].power, 0.0);
}

TEST_F(NoiseBudgetTest, FinalRoundingDominatesArithmeticNoise) {
  // The 14-bit output rounding is the largest arithmetic contribution -
  // the reason the measured SNR sits at the 14-bit ceiling.
  double final_rounding = 0.0;
  double others = 0.0;
  for (const auto& c : budget_->contributions) {
    if (c.where.find("final") != std::string::npos) {
      final_rounding = c.power;
    } else {
      others += c.power;
    }
  }
  EXPECT_GT(final_rounding, others);
}

TEST_F(NoiseBudgetTest, PredictionMatchesMeasuredSnr) {
  const auto v = core::DesignFlow::verify(*result_, 5e6, 1 << 15);
  // The analytical budget must land within a few dB of the bit-true
  // measurement (it ignores alias residues and window effects).
  EXPECT_NEAR(budget_->predicted_snr_db, v.snr_db, 4.0);
}

TEST_F(NoiseBudgetTest, ReportListsEveryPoint) {
  const std::string rep = core::noise_budget_report(*budget_);
  for (const char* key :
       {"CIC-gain relabel", "HBF product", "HBF block", "scaler output",
        "final output", "modulator shaped", "predicted SNR"}) {
    EXPECT_NE(rep.find(key), std::string::npos) << key;
  }
}

TEST_F(NoiseBudgetTest, WiderOutputImprovesPrediction) {
  auto wide = result_->chain;
  wide.output_format = fx::Format{20, 18};
  wide.scaler_out_format = fx::Format{22, 19};
  const auto wb = core::compute_noise_budget(
      wide, result_->modulator_spec, result_->predicted_sqnr_db,
      budget_->signal_amplitude_fs);
  EXPECT_GT(wb.predicted_snr_db, budget_->predicted_snr_db + 3.0);
}

TEST_F(NoiseBudgetTest, CoefficientGuardKeepsHbfNoiseDown) {
  // Section V: the halfband's internal (product/block) precision keeps
  // its rounding noise far below the modulator noise floor; only its
  // output word-length choice is comparable to the floor.
  double hbf_internal = 0.0;
  for (const auto& c : budget_->contributions) {
    if (c.where.find("HBF product") != std::string::npos ||
        c.where.find("HBF block") != std::string::npos) {
      hbf_internal += c.power;
    }
  }
  EXPECT_LT(hbf_internal, 0.01 * budget_->modulator_inband_power);
}

}  // namespace
