// RTL-vs-behavioral equivalence: the generated netlists must reproduce the
// bit-true software models exactly (up to the fixed pipeline lag and the
// polyphase parity alignment of decimating stages). This is the role the
// paper's auto-generated VCS testbenches play.
#include <gtest/gtest.h>

#include <random>

#include "src/decimator/chain.h"
#include "src/modulator/dsm.h"
#include "src/modulator/ntf.h"
#include "src/modulator/realize.h"
#include "src/rtl/builders.h"
#include "src/rtl/sim.h"

namespace {

using namespace dsadc;

std::vector<std::int64_t> random_samples(std::size_t n, int bits, unsigned s) {
  std::mt19937 rng(s);
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  std::uniform_int_distribution<std::int64_t> dist(-hi, hi);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// True when `rtl` equals `ref` shifted by some fixed lag in [0, max_lag],
/// comparing over the overlap minus a settling prefix.
bool matches_with_lag(const std::vector<std::int64_t>& rtl,
                      const std::vector<std::int64_t>& ref, int max_lag,
                      int* found_lag = nullptr, std::size_t settle = 4) {
  for (int lag = 0; lag <= max_lag; ++lag) {
    bool ok = true;
    std::size_t compared = 0;
    for (std::size_t i = settle; i + lag < rtl.size() && i < ref.size(); ++i) {
      if (rtl[i + lag] != ref[i]) {
        ok = false;
        break;
      }
      ++compared;
    }
    if (ok && compared > 16) {
      if (found_lag != nullptr) *found_lag = lag;
      return true;
    }
  }
  return false;
}

class CicRtlEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CicRtlEquivalence, BitExact) {
  const auto [order, decim_factor, bits] = GetParam();
  const design::CicSpec spec{order, decim_factor, bits};
  const auto in = random_samples(1024, bits, 11);

  decim::CicDecimator beh(spec);
  const auto ref = beh.process(in);

  const rtl::BuiltStage stage = rtl::build_cic(spec);
  rtl::Simulator sim(stage.module);
  const auto res = sim.run({{stage.in, in}});
  const auto& out = res.outputs.begin()->second;
  int lag = -1;
  EXPECT_TRUE(matches_with_lag(out, ref, 4, &lag))
      << "order=" << order << " M=" << decim_factor;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CicRtlEquivalence,
    ::testing::Values(std::make_tuple(4, 2, 4), std::make_tuple(4, 2, 8),
                      std::make_tuple(6, 2, 12), std::make_tuple(3, 4, 4),
                      std::make_tuple(1, 2, 4)));

TEST(HbfRtlEquivalence, BitExactOnEitherParity) {
  const auto design = design::design_saramaki_hbf(3, 6, 0.2125, 24, 0);
  const fx::Format fmt{18, 14};
  const auto in = random_samples(2048, 17, 21);

  decim::SaramakiHbfDecimator beh(design, fmt, fmt);
  const auto ref = beh.process(in);

  const rtl::BuiltStage stage =
      rtl::build_saramaki_hbf(design, fmt, fmt, 24, 6, 1);
  rtl::Simulator sim(stage.module);
  const auto res = sim.run({{stage.in, in}});
  const auto& out = res.outputs.begin()->second;

  // The RTL decimator may land on the other polyphase parity; try the
  // input delayed by one sample as well.
  bool ok = matches_with_lag(out, ref, 60);
  if (!ok) {
    std::vector<std::int64_t> shifted(in.size(), 0);
    for (std::size_t i = 1; i < in.size(); ++i) shifted[i] = in[i - 1];
    decim::SaramakiHbfDecimator beh2(design, fmt, fmt);
    const auto ref2 = beh2.process(shifted);
    ok = matches_with_lag(out, ref2, 60);
  }
  EXPECT_TRUE(ok);
}

TEST(ScalerRtlEquivalence, BitExact) {
  const fx::Format in_fmt{18, 14}, out_fmt{18, 15};
  const double scale = 0.98 / (0.81 * 7.0 + 0.5);
  const fx::Csd csd = fx::csd_encode_limited(scale, 14, 8);
  decim::ScalingStage beh(scale, in_fmt, out_fmt, 14, 8);
  ASSERT_NEAR(beh.effective_scale(), csd.to_double(), 1e-15);

  const rtl::BuiltStage stage = rtl::build_scaler(csd, 14, in_fmt, out_fmt, 1);
  rtl::Simulator sim(stage.module);
  const auto in = random_samples(512, 18, 31);
  const auto res = sim.run({{stage.in, in}});
  const auto& out = res.outputs.begin()->second;
  const auto ref = beh.process(in);
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], ref[i]) << i;
  }
}

TEST(FirRtlEquivalence, EqualizerBitExact) {
  const auto cfg = decim::paper_chain_config();
  const fx::Format in_fmt = cfg.scaler_out_format;
  const fx::Format out_fmt = cfg.output_format;
  decim::FirDecimator beh(
      decim::FixedTaps::from_real(cfg.equalizer_taps, cfg.equalizer_frac_bits),
      1, in_fmt, out_fmt);
  const rtl::BuiltStage stage = rtl::build_symmetric_fir(
      cfg.equalizer_taps, cfg.equalizer_frac_bits, in_fmt, out_fmt, 1);
  rtl::Simulator sim(stage.module);
  const auto in = random_samples(1024, 16, 41);
  const auto res = sim.run({{stage.in, in}});
  const auto& out = res.outputs.begin()->second;
  const auto ref = beh.process(in);
  int lag = -1;
  EXPECT_TRUE(matches_with_lag(out, ref, 2, &lag));
}

TEST(FullChainRtlEquivalence, EndToEndBitExact) {
  const auto cfg = decim::paper_chain_config();
  // Real modulator stimulus, shortened.
  const auto ntf = mod::synthesize_ntf(5, 16.0, 3.0, true);
  const auto coeffs = mod::realize_ciff(ntf);
  mod::CiffModulator m(coeffs, 4);
  const auto u = mod::coherent_sine(1 << 13, 5e6, 640e6, 0.7, nullptr);
  const auto dsm = m.run(u);

  const rtl::BuiltChain built = rtl::build_chain(cfg);
  std::vector<std::int64_t> codes64(dsm.codes.begin(), dsm.codes.end());
  rtl::Simulator sim(built.full);
  const auto res = sim.run({{built.in, codes64}});
  const auto& out = res.outputs.begin()->second;

  // The cascaded rate boundaries give the RTL a fixed input-side delay;
  // because decimators are time-varying this is a *polyphase* offset, not
  // a plain output lag. Try the behavioral chain on small input shifts.
  bool ok = false;
  for (int shift = 0; shift < 16 && !ok; ++shift) {
    std::vector<std::int32_t> shifted(dsm.codes.size(), 0);
    for (std::size_t i = static_cast<std::size_t>(shift); i < shifted.size(); ++i) {
      shifted[i] = dsm.codes[i - shift];
    }
    decim::DecimationChain chain(cfg);
    const auto ref = chain.process(shifted);
    ok = matches_with_lag(out, ref, 8, nullptr, 64);
  }
  EXPECT_TRUE(ok);
}

}  // namespace
